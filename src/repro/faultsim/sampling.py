"""Sampled vector universes: the substrate of the sampled-U backend.

The paper's analysis is defined over the set ``U`` of *all* input
vectors, which the exhaustive engine materializes as ``2**p``-bit
signatures — practical only up to
:data:`~repro.logic.bitops.MAX_EXHAUSTIVE_INPUTS` inputs.  A
:class:`VectorUniverse` generalizes the signature bit-space: it is an
explicit vector-index ↔ bit-index mapping, either the identity over all
of ``U`` (exhaustive) or a seeded random sample of ``K`` vectors.  A
detection signature built over a sampled universe has ``K`` meaningful
bits, bit ``i`` meaning "sampled vector ``vectors[i]`` detects the
fault", and its popcount is (after scaling) an unbiased estimator of the
exact ``N(f)`` / ``M(g, f)`` popcounts.

Estimator notes
---------------
With ``k`` of ``K`` sampled vectors detecting a fault, the estimate of
the exact count over ``|U| = 2**p`` vectors is ``k * 2**p / K``.  Under
without-replacement sampling (the default) this is the standard
finite-population estimate; its normal-approximation confidence interval
carries the finite-population correction ``sqrt((N - K) / (N - 1))``,
which collapses to a zero-width interval at ``K = N`` — the full-sample
draw degenerates to the exact exhaustive universe (and is canonicalized
to it by :func:`draw_universe`).

Replacement draws are *deduplicated*: :func:`draw_universe` tops the
draw up with further i.i.d. vectors until ``K`` distinct ones are
collected (sequential rejection of an i.i.d. uniform stream yields a
uniform ``K``-subset of ``U``, so the estimators above stay unbiased).
Earlier revisions let duplicate draws occupy distinct signature bits,
which silently double-counted those vectors in every popcount-derived
quantity downstream of the table — detection multiplicities, Definition
1/2 counting, and the ``nmin`` sample-space records all treated the
``K`` bits as ``K`` distinct vectors.  The ``replacement`` flag now only
selects the draw mechanism and the *conservative* interval (no
finite-population correction).

Documented edge cases (exercised by ``tests/faultsim/test_sampling_edges``):

* ``K = 1`` universes are valid; intervals are wide but finite.
* ``sample_count = 0`` yields the degenerate-but-informative Wilson
  interval ``[0, high]`` — it never divides by zero.
* ``confidence`` outside the open interval ``(0, 1)`` raises
  :class:`~repro.errors.AnalysisError` (a 100%-confidence normal
  interval would be infinite; a 0%-confidence one is meaningless).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, fields
from statistics import NormalDist

from repro.errors import AnalysisError
from repro.logic.bitops import (
    MAX_EXHAUSTIVE_INPUTS,
    all_ones_mask,
    iter_set_bits,
)


@dataclass(frozen=True)
class VectorUniverse:
    """Bit-index space of detection signatures, with its vector mapping.

    Attributes
    ----------
    num_inputs:
        ``p`` — the circuit's primary-input count; ``U`` has ``2**p``
        vectors.
    vectors:
        ``None`` for the exhaustive universe (bit ``v`` ↔ vector ``v``);
        otherwise the sampled vectors in bit order (bit ``i`` ↔
        ``vectors[i]``).  Without-replacement samples are kept sorted and
        unique, so a full-coverage sample is byte-identical to the
        exhaustive mapping.
    replacement:
        Whether the sample was drawn with replacement (affects the
        confidence intervals; exhaustive universes are always False).
    """

    num_inputs: int
    vectors: tuple[int, ...] | None = None
    replacement: bool = False
    _bit_index: dict[int, int] | None = field(
        init=False, default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.num_inputs < 0:
            raise AnalysisError(
                f"num_inputs must be >= 0, got {self.num_inputs}"
            )
        if self.vectors is None:
            return
        if not self.vectors:
            raise AnalysisError("a sampled universe needs at least 1 vector")
        space = self.space
        prev = -1
        for v in self.vectors:
            if not 0 <= v < space:
                raise AnalysisError(
                    f"sampled vector {v} out of range for "
                    f"{self.num_inputs} inputs"
                )
            if v < prev or (v == prev and not self.replacement):
                raise AnalysisError(
                    "sampled vectors must be sorted and (without "
                    "replacement) unique"
                )
            prev = v

    def __getstate__(self) -> dict:
        """Drop lazily-built caches from the pickle payload.

        Universes ride along in every pool/queue task, so a populated
        ``_bit_index`` (one dict entry per sampled vector) would bloat
        each payload with derived data the receiver rebuilds lazily on
        first :meth:`bit_of` anyway.  Subclass caches marked the same
        way (``init=False`` with a ``None`` default, e.g. the stratified
        universe's stratum masks) are dropped by the same rule.
        """
        state = dict(self.__dict__)
        for f in fields(self):
            if not f.init and f.default is None:
                state[f.name] = None
        return state

    # -- geometry -------------------------------------------------------
    @property
    def space(self) -> int:
        """``|U| = 2**p`` — the exact universe size."""
        return 1 << self.num_inputs

    @property
    def size(self) -> int:
        """Number of signature bits (``K`` when sampled, ``2**p`` else)."""
        return self.space if self.vectors is None else len(self.vectors)

    @property
    def exhaustive(self) -> bool:
        return self.vectors is None

    @property
    def exact(self) -> bool:
        """True when popcounts over this universe are exact, not estimates."""
        return self.vectors is None

    @property
    def scale(self) -> float:
        """Multiplier turning a sample popcount into a ``|U|``-scale estimate."""
        return self.space / self.size

    @property
    def mask(self) -> int:
        """All-ones signature over this universe's bit space."""
        if self.vectors is None:
            return all_ones_mask(self.num_inputs)
        return (1 << len(self.vectors)) - 1

    # -- bit <-> vector mapping ----------------------------------------
    def vector_at(self, bit: int) -> int:
        """Decimal input vector behind signature bit ``bit``."""
        if not 0 <= bit < self.size:
            raise AnalysisError(
                f"bit {bit} out of range for universe of size {self.size}"
            )
        return bit if self.vectors is None else self.vectors[bit]

    def vector_list(self) -> list[int]:
        """Every vector in bit order (materializes ``2**p`` when exhaustive)."""
        if self.vectors is None:
            return list(range(self.space))
        return list(self.vectors)

    def bit_of(self, vector: int) -> int | None:
        """Signature bit holding ``vector`` (None when not sampled)."""
        if not 0 <= vector < self.space:
            raise AnalysisError(
                f"vector {vector} out of range for {self.num_inputs} inputs"
            )
        if self.vectors is None:
            return vector
        index = self._bit_index
        if index is None:
            index = {}
            for i, v in enumerate(self.vectors):
                index.setdefault(v, i)
            object.__setattr__(self, "_bit_index", index)
        return index.get(vector)

    def signature_vectors(self, signature: int) -> list[int]:
        """Decimal vectors behind a signature's set bits (bit order)."""
        if self.vectors is None:
            return list(iter_set_bits(signature))
        return [self.vectors[b] for b in iter_set_bits(signature)]

    # -- estimation dispatch -------------------------------------------
    # Subclasses with non-uniform sampling designs (the stratified
    # universe of ``repro.adaptive``) override these two methods; the
    # detection-table estimate queries route through them so every
    # universe carries its own correct estimator.
    def estimate_signature(self, signature: int) -> float:
        """Unbiased ``|U|``-scale estimate of a signature's exact count."""
        return estimate_count(self, signature.bit_count())

    def interval_for_signature(
        self, signature: int, confidence: float = 0.95
    ) -> "CountEstimate":
        """Confidence interval behind :meth:`estimate_signature`."""
        return count_interval(self, signature.bit_count(), confidence)


def draw_universe(
    num_inputs: int,
    samples: int,
    seed: int = 0,
    replacement: bool = False,
) -> VectorUniverse:
    """Seeded random universe of ``samples`` vectors for a ``p``-input circuit.

    Without replacement (default) the draw is uniform over all
    ``samples``-subsets of ``U``; the degenerate full draw
    (``samples == 2**p``) canonicalizes to the exhaustive universe, so
    sampled analyses converge *exactly* to the paper's as ``K`` grows.

    With ``replacement`` the draw is an i.i.d. uniform stream *topped up
    to ``samples`` distinct vectors*: duplicates are rejected and the
    stream continues until ``samples`` unique vectors are collected
    (which is itself a uniform ``samples``-subset).  Earlier revisions
    kept the duplicates as distinct signature bits, silently biasing
    every downstream quantity that treats bits as vectors; the flag now
    changes only the draw mechanism and the interval width (no
    finite-population correction is applied).  Consequently a
    replacement draw also cannot exceed ``2**p`` distinct vectors.
    """
    if num_inputs < 0:
        raise AnalysisError(f"num_inputs must be >= 0, got {num_inputs}")
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    space = 1 << num_inputs
    rng = random.Random(seed)
    if samples > space:
        raise AnalysisError(
            f"cannot draw {samples} distinct vectors from a universe of "
            f"{space} (2**{num_inputs}); duplicate draws would occupy "
            f"distinct signature bits and bias the estimators — lower "
            f"--samples"
        )
    if samples == space:
        if num_inputs > MAX_EXHAUSTIVE_INPUTS:
            raise AnalysisError(
                f"a full sample of 2**{num_inputs} vectors is not "
                f"materializable; lower --samples"
            )
        return VectorUniverse(num_inputs)
    if replacement:
        seen: set[int] = set()
        while len(seen) < samples:
            seen.add(rng.randrange(space))
        return VectorUniverse(
            num_inputs, tuple(sorted(seen)), replacement=True
        )
    drawn = sorted(rng.sample(range(space), samples))
    return VectorUniverse(num_inputs, tuple(drawn))


# ----------------------------------------------------------------------
# Estimators
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CountEstimate:
    """Estimate of an exact popcount from a sampled one.

    ``estimate`` is unbiased; ``(low, high)`` is the normal-approximation
    confidence interval (with finite-population correction when sampling
    without replacement).  On exact universes the interval is degenerate:
    ``low == estimate == high``.
    """

    sample_count: int
    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def covers(self, exact: float) -> bool:
        return self.low <= exact <= self.high


def confidence_z(confidence: float) -> float:
    """Two-sided normal quantile for a confidence level in (0, 1)."""
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def estimate_count(universe: VectorUniverse, sample_count: int) -> float:
    """Unbiased ``|U|``-scale estimate of a popcount over ``universe``."""
    if not 0 <= sample_count <= universe.size:
        raise AnalysisError(
            f"sample_count {sample_count} out of range for universe of "
            f"size {universe.size}"
        )
    if universe.exact:
        return float(sample_count)
    return sample_count * universe.scale


def count_interval(
    universe: VectorUniverse,
    sample_count: int,
    confidence: float = 0.95,
) -> CountEstimate:
    """Confidence interval for the exact count behind a sampled popcount.

    Wilson score interval (which stays informative at observed
    proportions of exactly 0 or 1, where the plain Wald interval
    collapses to zero width) over an effective sample size inflated by
    the finite-population correction when sampling without replacement.
    The interval always brackets the unbiased point estimate.

    Edge cases are total: ``sample_count = 0`` (or ``= K``) returns the
    one-sided Wilson interval, a ``K = 1`` universe returns a wide but
    finite interval, an exhausted without-replacement sample returns the
    degenerate exact interval, and ``confidence`` outside ``(0, 1)``
    raises :class:`AnalysisError` via :func:`confidence_z`.
    """
    est = estimate_count(universe, sample_count)
    if universe.exact:
        return CountEstimate(sample_count, est, est, est, confidence)
    k = universe.size
    n = universe.space
    phat = sample_count / k
    # Effective sample size: without replacement, the variance shrinks by
    # the FPC (n - k) / (n - 1), equivalent to observing k / fpc draws.
    k_eff = float(k)
    if not universe.replacement and n > 1:
        fpc = (n - k) / (n - 1)
        if fpc <= 0.0:
            return CountEstimate(sample_count, est, est, est, confidence)
        k_eff = k / fpc
    z = confidence_z(confidence)
    z2 = z * z
    denom = 1.0 + z2 / k_eff
    center = (phat + z2 / (2.0 * k_eff)) / denom
    half = (
        z
        * math.sqrt(phat * (1.0 - phat) / k_eff + z2 / (4.0 * k_eff * k_eff))
        / denom
    )
    low = max(0.0, (center - half) * n)
    high = min(float(n), (center + half) * n)
    return CountEstimate(sample_count, est, low, high, confidence)


def estimate_nmin(
    universe: VectorUniverse, nmin: int | None
) -> float | int | None:
    """``|U|``-scale estimate of a sample-space ``nmin`` value.

    ``nmin(g, f) = N(f) - M(g, f) + 1``; the difference of two popcounts
    scales by ``universe.scale``, the ``+1`` does not.  Exact universes
    return the value unchanged; ``None`` (no guarantee) passes through.
    """
    if nmin is None:
        return None
    if universe.exact or nmin < 1:
        return nmin
    return universe.scale * (nmin - 1) + 1.0
