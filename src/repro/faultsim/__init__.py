"""Fault simulation engines and detection tables.

``detection``
    Exhaustive detection tables: ``T(f)`` for every fault over the whole
    input space, via cone-limited signature re-simulation.
``serial``
    Per-vector serial fault simulation (independent slow path used for
    cross-validation and for simulating explicit test sets).
``threeval_detect``
    3-valued detection checks of partially-specified vectors (the ``tij``
    tests of Definition 2), scalar and batched.
``dictionary``
    Fault dictionaries over explicit test sets: pass/fail diagnosis and
    diagnostic-resolution metrics.
"""

from repro.faultsim.detection import (
    DetectionTable,
    bridging_detection_signature,
    stuck_at_detection_signature,
)
from repro.faultsim.serial import (
    detects_stuck_at,
    detects_bridging,
    test_set_coverage,
)
from repro.faultsim.threeval_detect import (
    cube_detects_stuck_at,
    pair_checks_batch,
)
from repro.faultsim.dictionary import FaultDictionary

__all__ = [
    "DetectionTable",
    "bridging_detection_signature",
    "stuck_at_detection_signature",
    "detects_stuck_at",
    "detects_bridging",
    "test_set_coverage",
    "cube_detects_stuck_at",
    "pair_checks_batch",
    "FaultDictionary",
]
