"""Fault simulation engines and detection tables.

``detection``
    Detection tables: ``T(f)`` for every fault over a vector universe,
    via cone-limited signature re-simulation.
``sampling``
    Vector universes (exhaustive or sampled) with the bit-index ↔
    vector mapping and the Monte-Carlo count estimators.
``backends``
    Pluggable table-construction strategies: ``exhaustive``, ``sampled``
    (breaks the 24-input cap), and ``serial``.
``serial``
    Per-vector serial fault simulation (independent slow path used for
    cross-validation and for simulating explicit test sets).
``threeval_detect``
    3-valued detection checks of partially-specified vectors (the ``tij``
    tests of Definition 2), scalar and batched.
``dictionary``
    Fault dictionaries over explicit test sets: pass/fail diagnosis and
    diagnostic-resolution metrics.
"""

from repro.faultsim.detection import (
    DetectionTable,
    bridging_detection_signature,
    stuck_at_detection_signature,
)
from repro.faultsim.sampling import (
    CountEstimate,
    VectorUniverse,
    count_interval,
    draw_universe,
    estimate_count,
    estimate_nmin,
)
from repro.faultsim.backends import (
    BACKEND_NAMES,
    DetectionBackend,
    ExhaustiveBackend,
    FixedUniverseBackend,
    SampledBackend,
    SerialBackend,
    make_backend,
)
from repro.faultsim.serial import (
    detects_stuck_at,
    detects_bridging,
    test_set_coverage,
)
from repro.faultsim.threeval_detect import (
    cube_detects_stuck_at,
    pair_checks_batch,
)
from repro.faultsim.dictionary import FaultDictionary

__all__ = [
    "DetectionTable",
    "bridging_detection_signature",
    "stuck_at_detection_signature",
    "CountEstimate",
    "VectorUniverse",
    "count_interval",
    "draw_universe",
    "estimate_count",
    "estimate_nmin",
    "BACKEND_NAMES",
    "DetectionBackend",
    "ExhaustiveBackend",
    "FixedUniverseBackend",
    "SampledBackend",
    "SerialBackend",
    "make_backend",
    "detects_stuck_at",
    "detects_bridging",
    "test_set_coverage",
    "cube_detects_stuck_at",
    "pair_checks_batch",
    "FaultDictionary",
]
