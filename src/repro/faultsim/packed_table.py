"""Detection tables backed by a numpy-packed signature matrix.

A :class:`PackedDetectionTable` is a drop-in
:class:`~repro.faultsim.detection.DetectionTable`: it keeps the big-int
signature list (so every existing consumer — set-cover greedy passes,
Procedure 1, the escape analysis — keeps working unchanged) and carries
the same bits as a :class:`~repro.logic.packed.PackedSignatureMatrix`,
which the popcount-heavy queries and the worst-case ``nmin`` scan
dispatch to.  Construction goes through the exact same cone-resimulation
machinery as the plain table; packing is a pure representation change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultError
from repro.faultsim.detection import DetectionTable
from repro.logic.packed import _np, PackedSignatureMatrix, pack_signature


@dataclass
class PackedDetectionTable(DetectionTable):
    """A :class:`DetectionTable` whose signatures are also numpy-packed.

    ``packed`` is derived from ``signatures`` when not supplied;
    supplying both (e.g. after :meth:`PackedSignatureMatrix.take`) must
    keep them bit-identical — the invariant every vectorized query
    relies on.
    """

    packed: PackedSignatureMatrix | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.packed is None:
            self.packed = PackedSignatureMatrix.from_bigints(
                self.signatures, self.universe.size
            )
        else:
            if len(self.packed) != len(self.signatures):
                raise FaultError(
                    "packed matrix and signatures length mismatch"
                )
            if self.packed.size != self.universe.size:
                raise FaultError(
                    "packed matrix and universe disagree on the bit size"
                )

    @classmethod
    def from_table(cls, table: DetectionTable) -> "PackedDetectionTable":
        """Pack an existing table (same faults, signatures, universe)."""
        if isinstance(table, PackedDetectionTable):
            return table
        return cls(
            table.circuit,
            list(table.faults),
            list(table.signatures),
            table.universe,
        )

    # ------------------------------------------------------------------
    # Vectorized overrides of the popcount-heavy queries
    # ------------------------------------------------------------------
    def counts(self) -> list[int]:
        return [int(c) for c in self.packed.popcount_rows()]

    def num_detectable(self) -> int:
        return int((self.packed.popcount_rows() > 0).sum())

    def detectable_indices(self) -> list[int]:
        hits = _np.nonzero(self.packed.popcount_rows() > 0)[0]
        return [int(i) for i in hits]

    def detected_by(self, test_signature: int) -> list[int]:
        row = pack_signature(test_signature, self.universe.size)
        hits = _np.nonzero(self.packed.and_popcount(row) > 0)[0]
        return [int(i) for i in hits]

    def detection_counts(self, test_signature: int) -> list[int]:
        row = pack_signature(test_signature, self.universe.size)
        return [int(c) for c in self.packed.and_popcount(row)]

    def coverage(self, test_signature: int) -> float:
        detectable = self.packed.popcount_rows() > 0
        total = int(detectable.sum())
        if total == 0:
            return 1.0
        row = pack_signature(test_signature, self.universe.size)
        hit = int((detectable & (self.packed.and_popcount(row) > 0)).sum())
        return hit / total
