"""Detection tables backed by a numpy-packed signature matrix.

A :class:`PackedDetectionTable` is a drop-in
:class:`~repro.faultsim.detection.DetectionTable`: it keeps the big-int
signature list (so every existing consumer — set-cover greedy passes,
Procedure 1, the escape analysis — keeps working unchanged) and carries
the same bits as a :class:`~repro.logic.packed.PackedSignatureMatrix`,
which the popcount-heavy queries and the worst-case ``nmin`` scan
dispatch to.  Construction is *born packed*: the
:mod:`repro.simulation.ppsfp` word-parallel kernel produces the packed
matrix directly (the big-int signature list is derived from it in one
cheap pass), so no bigint→packed conversion sits on the build hot path;
when the kernel is disabled (``REPRO_PPSFP=0``) or the universe exceeds
its word cap, construction falls back to the big-int cone-resimulation
machinery and packs its result — either way the bits are identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultError
from repro.faults.bridging import four_way_bridging_faults
from repro.faults.stuck_at import collapsed_stuck_at_faults
from repro.faultsim.detection import DetectionTable
from repro.logic.packed import _np, PackedSignatureMatrix, pack_signature


@dataclass
class PackedDetectionTable(DetectionTable):
    """A :class:`DetectionTable` whose signatures are also numpy-packed.

    ``packed`` is derived from ``signatures`` when not supplied;
    supplying both (e.g. after :meth:`PackedSignatureMatrix.take`) must
    keep them bit-identical — the invariant every vectorized query
    relies on.
    """

    packed: PackedSignatureMatrix | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.packed is None:
            self.packed = PackedSignatureMatrix.from_bigints(
                self.signatures, self.universe.size
            )
        else:
            if len(self.packed) != len(self.signatures):
                raise FaultError(
                    "packed matrix and signatures length mismatch"
                )
            if self.packed.size != self.universe.size:
                raise FaultError(
                    "packed matrix and universe disagree on the bit size"
                )

    # ------------------------------------------------------------------
    # Born-packed construction (the PPSFP kernel path)
    # ------------------------------------------------------------------
    @classmethod
    def _for_kind(
        cls,
        kind: str,
        circuit,
        faults,
        base_signatures,
        drop_undetectable: bool,
        universe,
    ) -> "PackedDetectionTable":
        """Build via the word-parallel kernel when it applies.

        The kernel returns the packed matrix directly — the table is
        *born packed*, skipping the bigint→packed conversion of the
        inherited path (the big-int signature list every existing
        consumer reads is derived from the matrix words in one cheap
        pass).  When the kernel is unavailable (no numpy at call time is
        impossible here — the backend already required it — but
        ``REPRO_PPSFP=0`` or an over-wide universe are not) the
        inherited big-int construction runs and ``__post_init__`` packs
        its result.
        """
        from repro.faultsim.sampling import VectorUniverse
        from repro.simulation import ppsfp

        if universe is None:
            universe = VectorUniverse(circuit.num_inputs)
        if faults is None:
            faults = (
                collapsed_stuck_at_faults(circuit)
                if kind == "stuck_at"
                else four_way_bridging_faults(circuit)
            )
        if not ppsfp.kernel_supports(universe):
            parent = (
                super().for_stuck_at
                if kind == "stuck_at"
                else super().for_bridging
            )
            return parent(
                circuit,
                faults=list(faults),
                base_signatures=base_signatures,
                drop_undetectable=drop_undetectable,
                universe=universe,
            )
        build = (
            ppsfp.stuck_at_matrix
            if kind == "stuck_at"
            else ppsfp.bridging_matrix
        )
        faults = list(faults)
        matrix = build(
            circuit, universe, faults, base_signatures=base_signatures
        )
        signatures = matrix.to_bigints()
        if drop_undetectable:
            kept = [i for i, sig in enumerate(signatures) if sig]
            if len(kept) != len(faults):
                faults = [faults[i] for i in kept]
                signatures = [signatures[i] for i in kept]
                matrix = matrix.take(kept)
        return cls(circuit, faults, signatures, universe, packed=matrix)

    @classmethod
    def for_stuck_at(
        cls,
        circuit,
        faults=None,
        base_signatures=None,
        drop_undetectable: bool = False,
        universe=None,
    ) -> "PackedDetectionTable":
        """Born-packed table for the collapsed stuck-at set ``F``."""
        return cls._for_kind(
            "stuck_at",
            circuit,
            faults,
            base_signatures,
            drop_undetectable,
            universe,
        )

    @classmethod
    def for_bridging(
        cls,
        circuit,
        faults=None,
        base_signatures=None,
        drop_undetectable: bool = True,
        universe=None,
    ) -> "PackedDetectionTable":
        """Born-packed table for the untargeted bridging set ``G``."""
        return cls._for_kind(
            "bridging",
            circuit,
            faults,
            base_signatures,
            drop_undetectable,
            universe,
        )

    @classmethod
    def from_table(cls, table: DetectionTable) -> "PackedDetectionTable":
        """Pack an existing table (same faults, signatures, universe)."""
        if isinstance(table, PackedDetectionTable):
            return table
        return cls(
            table.circuit,
            list(table.faults),
            list(table.signatures),
            table.universe,
        )

    # ------------------------------------------------------------------
    # Vectorized overrides of the popcount-heavy queries
    # ------------------------------------------------------------------
    def counts(self) -> list[int]:
        return [int(c) for c in self.packed.popcount_rows()]

    def num_detectable(self) -> int:
        return int((self.packed.popcount_rows() > 0).sum())

    def detectable_indices(self) -> list[int]:
        hits = _np.nonzero(self.packed.popcount_rows() > 0)[0]
        return [int(i) for i in hits]

    def detected_by(self, test_signature: int) -> list[int]:
        row = pack_signature(test_signature, self.universe.size)
        hits = _np.nonzero(self.packed.and_popcount(row) > 0)[0]
        return [int(i) for i in hits]

    def detection_counts(self, test_signature: int) -> list[int]:
        row = pack_signature(test_signature, self.universe.size)
        return [int(c) for c in self.packed.and_popcount(row)]

    def coverage(self, test_signature: int) -> float:
        detectable = self.packed.popcount_rows() > 0
        total = int(detectable.sum())
        if total == 0:
            return 1.0
        row = pack_signature(test_signature, self.universe.size)
        hit = int((detectable & (self.packed.and_popcount(row) > 0)).sum())
        return hit / total
