"""Fault dictionaries and pass/fail diagnosis.

A *fault dictionary* inverts a detection table: for every test vector it
records which faults fail.  Given the observed pass/fail behaviour of a
device under a test set, :meth:`FaultDictionary.diagnose` returns the
candidate faults consistent with the observation — the classic use of
the very detection data the paper's analysis is built on, and the reason
n-detection sets help diagnosis too (more detections = finer dictionary
resolution).

Resolution metrics (:meth:`equivalence_classes_under`,
:meth:`diagnostic_resolution`) quantify how well a test set tells faults
apart — complementary to the coverage view of the main analysis.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import AnalysisError
from repro.faultsim.detection import DetectionTable


class FaultDictionary:
    """Pass/fail dictionary over a fixed, ordered test set.

    Parameters
    ----------
    table:
        Detection table of the candidate faults (any fault model).
    tests:
        Ordered test vectors the dictionary is built for.

    Each fault's *signature under the test set* is a bitmask over test
    positions (bit ``i`` = ``tests[i]`` fails).  Faults with equal masks
    are indistinguishable by this test set.
    """

    def __init__(self, table: DetectionTable, tests: Sequence[int]):
        limit = 1 << table.circuit.num_inputs
        seen: set[int] = set()
        for t in tests:
            if not 0 <= t < limit:
                raise AnalysisError(f"test vector {t} out of range")
            if t in seen:
                raise AnalysisError(f"duplicate test vector {t}")
            seen.add(t)
        self.table = table
        self.tests = list(tests)
        self.masks: list[int] = []
        for sig in table.signatures:
            mask = 0
            for i, t in enumerate(self.tests):
                if (sig >> t) & 1:
                    mask |= 1 << i
            self.masks.append(mask)

    # ------------------------------------------------------------------
    # Diagnosis
    # ------------------------------------------------------------------
    def diagnose(
        self, failing_positions: Sequence[int], exact: bool = True
    ) -> list[int]:
        """Fault indices consistent with an observed failure pattern.

        ``failing_positions`` are indices into ``tests`` that failed on
        the tester.  ``exact=True`` requires the full dictionary match
        (single-fault assumption, fully observed responses);
        ``exact=False`` returns faults whose signature *covers* the
        observed failures (tolerates masked/untested passes).
        """
        observed = 0
        for pos in failing_positions:
            if not 0 <= pos < len(self.tests):
                raise AnalysisError(f"failing position {pos} out of range")
            observed |= 1 << pos
        if exact:
            return [
                i for i, mask in enumerate(self.masks) if mask == observed
            ]
        return [
            i
            for i, mask in enumerate(self.masks)
            if mask and (observed & mask) == observed
        ]

    # ------------------------------------------------------------------
    # Resolution metrics
    # ------------------------------------------------------------------
    def equivalence_classes_under(self) -> list[list[int]]:
        """Groups of fault indices the test set cannot distinguish.

        Undetected faults (empty mask) form one class together — the
        test set says nothing about them.
        """
        groups: dict[int, list[int]] = {}
        for i, mask in enumerate(self.masks):
            groups.setdefault(mask, []).append(i)
        return [groups[m] for m in sorted(groups)]

    def diagnostic_resolution(self) -> float:
        """Fraction of detected faults uniquely identified by the set."""
        detected = [m for m in self.masks if m]
        if not detected:
            return 1.0
        counts: dict[int, int] = {}
        for m in detected:
            counts[m] = counts.get(m, 0) + 1
        unique = sum(1 for m in detected if counts[m] == 1)
        return unique / len(detected)

    def detected_count(self) -> int:
        """Number of faults the test set detects at all."""
        return sum(1 for m in self.masks if m)
