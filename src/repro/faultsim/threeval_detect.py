"""3-valued detection of stuck-at faults under partial vectors.

Definition 2 asks whether the partial vector ``tij`` (common bits of two
tests) detects a target fault ``f``.  Detection under a partial vector is
the pessimistic fault-simulator notion: simulate the fault-free and the
faulty circuit 3-valued; the fault is detected when some primary output
has a *definite* value in both simulations and the values differ.  (A
definite difference under ``tij`` implies every completion of ``tij``
detects ``f``.)

Two entry points:

* :func:`cube_detects_stuck_at` — scalar check for one cube;
* :func:`pair_checks_batch` — the hot path: many ``(ti, tj)`` pairs for
  the *same* fault are packed into dual-rail lanes and simulated in one
  pass over the circuit (twice: fault-free and faulty).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuit.netlist import Circuit
from repro.faults.stuck_at import StuckAtFault
from repro.logic.cube import Cube, common_cube
from repro.simulation.threeval import simulate_cube, simulate_cubes_dualrail


def cube_detects_stuck_at(
    circuit: Circuit, fault: StuckAtFault, cube: Cube
) -> bool:
    """Scalar 3-valued detection check of one partial vector."""
    good = simulate_cube(circuit, cube)
    faulty = simulate_cube(circuit, cube, forced={fault.lid: fault.value})
    for o in circuit.outputs:
        g, f = good[o], faulty[o]
        if g != f and g != 2 and f != 2:
            return True
    return False


def cubes_detect_stuck_at(
    circuit: Circuit,
    fault: StuckAtFault,
    cubes: Sequence[Cube],
    cone_order: list[int] | None = None,
) -> list[bool]:
    """Batched 3-valued detection: one dual-rail good pass + cone resim.

    The faulty machine differs from the fault-free one only in the fault
    site's fanout cone, so the faulty pass re-evaluates just that cone
    (``cone_order`` may be passed pre-computed by hot callers).
    """
    if not cubes:
        return []
    from repro.simulation.threeval import _eval_lines

    g_ones, g_zeros = simulate_cubes_dualrail(circuit, cubes)
    lane_mask = (1 << len(cubes)) - 1
    f_ones = list(g_ones)
    f_zeros = list(g_zeros)
    if fault.value:
        f_ones[fault.lid], f_zeros[fault.lid] = lane_mask, 0
    else:
        f_ones[fault.lid], f_zeros[fault.lid] = 0, lane_mask
    if cone_order is None:
        cone_order = circuit.fanout_cone_order(fault.lid)
    _eval_lines(circuit, cone_order, f_ones, f_zeros, lane_mask)
    detected = 0
    for o in circuit.outputs:
        detected |= (g_ones[o] & f_zeros[o]) | (g_zeros[o] & f_ones[o])
    return [bool((detected >> lane) & 1) for lane in range(len(cubes))]


def pair_checks_batch(
    circuit: Circuit,
    fault: StuckAtFault,
    pairs: Sequence[tuple[int, int]],
    cone_order: list[int] | None = None,
) -> list[bool]:
    """For each test pair ``(ti, tj)``: does ``tij`` detect the fault?

    ``True`` means the two tests are *similar* for this fault under
    Definition 2 (their common bits suffice to detect it), so they count
    as a single detection.
    """
    cubes = [
        common_cube(ti, tj, circuit.num_inputs) for ti, tj in pairs
    ]
    return cubes_detect_stuck_at(circuit, fault, cubes, cone_order=cone_order)
