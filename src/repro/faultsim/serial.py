"""Serial (per-vector) fault simulation.

A deliberately independent slow path: faults are simulated one vector at
a time with explicit value forcing, sharing *no* code with the exhaustive
signature engine.  The test suite cross-validates the two engines against
each other, which is the main line of defence against systematic bugs in
the detection tables that every analysis depends on.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.circuit.netlist import Circuit
from repro.faults.bridging import BridgingFault
from repro.faults.stuck_at import StuckAtFault
from repro.simulation.twoval import simulate_vector


def detects_stuck_at(
    circuit: Circuit, fault: StuckAtFault, vector: int
) -> bool:
    """True when ``vector`` detects the stuck-at fault (two full sims)."""
    good = simulate_vector(circuit, vector)
    faulty = simulate_vector(circuit, vector, forced={fault.lid: fault.value})
    return any(good[o] != faulty[o] for o in circuit.outputs)


def detects_bridging(
    circuit: Circuit, fault: BridgingFault, vector: int
) -> bool:
    """True when ``vector`` detects the four-way bridging fault.

    The activation condition is evaluated on the fault-free simulation;
    when activated, the victim is forced to the flipped value and the
    circuit re-simulated.
    """
    good = simulate_vector(circuit, vector)
    if good[fault.victim] != fault.victim_value:
        return False
    if good[fault.aggressor] != fault.aggressor_value:
        return False
    flipped = fault.victim_value ^ 1
    faulty = simulate_vector(circuit, vector, forced={fault.victim: flipped})
    return any(good[o] != faulty[o] for o in circuit.outputs)


def detects(circuit: Circuit, fault, vector: int) -> bool:
    """Dispatch on fault type."""
    if isinstance(fault, StuckAtFault):
        return detects_stuck_at(circuit, fault, vector)
    if isinstance(fault, BridgingFault):
        return detects_bridging(circuit, fault, vector)
    raise TypeError(f"unsupported fault type: {type(fault).__name__}")


def detecting_vectors(
    circuit: Circuit, fault, vectors: Iterable[int]
) -> list[int]:
    """Subset of ``vectors`` that detect the fault (serial engine)."""
    return [v for v in vectors if detects(circuit, fault, v)]


def test_set_coverage(
    circuit: Circuit, faults: Sequence, vectors: Sequence[int]
) -> tuple[int, int]:
    """(detected, total) over ``faults`` for an explicit test set."""
    detected = 0
    for fault in faults:
        if any(detects(circuit, fault, v) for v in vectors):
            detected += 1
    return detected, len(faults)
