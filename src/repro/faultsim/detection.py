"""Detection tables: ``T(f)`` for every fault, over a vector universe.

The paper's analysis needs, for every fault ``h`` in ``F ∪ G``, the set
``T(h) ⊆ U`` of input vectors that detect ``h``.  A
:class:`DetectionTable` holds those sets as signatures (one int per
fault) and provides the popcount quantities the worst-case analysis is
built from.  The signature bit space is described by the table's
:class:`~repro.faultsim.sampling.VectorUniverse`: for the default
exhaustive universe bit ``v`` means "vector ``v`` detects the fault";
for a sampled universe bit ``i`` refers to the ``i``-th sampled vector
and popcounts become unbiased estimators of the exact counts.

Detection signatures are computed by forcing the fault site's signature
and re-simulating only the site's fanout cone — the standard
"single-fault propagation" trick lifted to signatures.  The cone
machinery is universe-agnostic: it operates on whatever lane mapping the
base signatures were built with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro import obs
from repro.circuit.netlist import Circuit
from repro.errors import FaultError
from repro.faults.bridging import BridgingFault, four_way_bridging_faults
from repro.faults.stuck_at import StuckAtFault, collapsed_stuck_at_faults
from repro.faultsim.sampling import CountEstimate, VectorUniverse
from repro.logic.bitops import all_ones_mask, set_bits
from repro.simulation.exhaustive import (
    detection_signature,
    line_signatures,
    resimulate_cone,
)

Fault = Union[StuckAtFault, BridgingFault]


def _kernel_matrix(kind, circuit, universe, faults, base_signatures):
    """PPSFP-kernel detection matrix, or None for the big-int path.

    The word-parallel kernel (:mod:`repro.simulation.ppsfp`) builds the
    same detection bits batched over both patterns and faults; it is
    used whenever numpy is available and the universe fits under the
    kernel's word cap (``REPRO_PPSFP=0`` forces the big-int path).  The
    differential suite certifies the two paths bit-identical.
    """
    from repro.simulation import ppsfp

    if not ppsfp.kernel_supports(universe):
        return None
    build = (
        ppsfp.stuck_at_matrix if kind == "stuck_at" else ppsfp.bridging_matrix
    )
    return build(
        circuit, universe, list(faults), base_signatures=base_signatures
    )


def _observe_table_build(kind: str, engine: str, seconds: float) -> None:
    """Always-on build telemetry (one counter bump + one histogram)."""
    registry = obs.metrics()
    registry.counter(
        "repro_table_builds_total",
        help="Detection-table builds, by fault kind and engine",
        kind=kind,
        engine=engine,
    ).inc()
    registry.histogram(
        "repro_table_build_seconds",
        help="Wall time of detection-table builds",
        kind=kind,
    ).observe(seconds)


def universe_line_signatures(
    circuit: Circuit, universe: VectorUniverse
) -> list[int]:
    """Fault-free line signatures over a universe's bit space.

    Exhaustive universes use the closed-form input-signature construction;
    sampled universes pack the listed vectors into lane words (bit ``i`` =
    value under ``universe.vectors[i]``) via the bit-parallel batch
    simulator.
    """
    if universe.exhaustive:
        return line_signatures(circuit)
    from repro.simulation.twoval import simulate_batch

    return simulate_batch(circuit, universe.vectors)


def stuck_at_detection_signature(
    circuit: Circuit,
    base_signatures: list[int],
    fault: StuckAtFault,
    mask: int | None = None,
    cone_order: list[int] | None = None,
) -> int:
    """``T(f)`` for a stuck-at fault (signature over ``U``)."""
    if mask is None:
        mask = all_ones_mask(circuit.num_inputs)
    forced = {fault.lid: mask if fault.value else 0}
    changed = resimulate_cone(
        circuit, base_signatures, forced, mask, cone_order=cone_order
    )
    return detection_signature(circuit, base_signatures, changed)


def bridging_detection_signature(
    circuit: Circuit,
    base_signatures: list[int],
    fault: BridgingFault,
    mask: int | None = None,
    cone_order: list[int] | None = None,
) -> int:
    """``T(g)`` for a four-way bridging fault.

    Activation requires fault-free ``l1 = a1`` and ``l2 = a2``; on the
    activated vectors the victim's value flips (XOR with the activation
    set).  Non-feedback pairs guarantee the aggressor's value is
    unaffected by the flip.
    """
    if mask is None:
        mask = all_ones_mask(circuit.num_inputs)
    s1 = base_signatures[fault.victim]
    s2 = base_signatures[fault.aggressor]
    m1 = s1 if fault.victim_value else ~s1 & mask
    m2 = s2 if fault.aggressor_value else ~s2 & mask
    activated = m1 & m2
    if not activated:
        return 0
    forced = {fault.victim: s1 ^ activated}
    changed = resimulate_cone(
        circuit, base_signatures, forced, mask, cone_order=cone_order
    )
    return detection_signature(circuit, base_signatures, changed)


@dataclass
class DetectionTable:
    """Detection sets ``T(f)`` for an ordered fault list.

    Attributes
    ----------
    circuit:
        The analyzed circuit.
    faults:
        Fault objects, in table order.
    signatures:
        ``signatures[i]`` is ``T(faults[i])`` as a bit-signature over
        the universe; undetectable faults (if kept) have signature 0.
    universe:
        Bit-index ↔ vector mapping of the signatures.  ``None`` (the
        default) means the exhaustive universe of the circuit's input
        space.
    """

    circuit: Circuit
    faults: list[Fault]
    signatures: list[int]
    universe: VectorUniverse | None = None
    _vector_cache: dict[int, list[int]] = field(
        init=False, default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if len(self.faults) != len(self.signatures):
            raise FaultError("faults and signatures length mismatch")
        if self.universe is None:
            self.universe = VectorUniverse(self.circuit.num_inputs)
        elif self.universe.num_inputs != self.circuit.num_inputs:
            raise FaultError(
                "universe and circuit disagree on the input count"
            )

    def __getstate__(self) -> dict:
        """Drop the lazily-built vector cache from the pickle payload.

        ``_vector_cache`` memoises ``vectors_of``; shipping a populated
        cache across the executor boundary bloats shard payloads and
        makes pickles of otherwise-equal tables differ byte-for-byte.
        ``__post_init__`` does not run on unpickle, so the cache is
        restored here as an explicitly fresh dict.
        """
        state = dict(self.__dict__)
        state["_vector_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_stuck_at(
        cls,
        circuit: Circuit,
        faults: list[StuckAtFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = False,
        universe: VectorUniverse | None = None,
    ) -> "DetectionTable":
        """Table for the collapsed stuck-at set (the paper's ``F``).

        The paper keeps undetectable target faults in ``F`` — they simply
        never force any test into the set — so ``drop_undetectable``
        defaults to False.  ``universe`` selects the signature bit space
        (default: exhaustive over the circuit's inputs); when sampled,
        ``base_signatures`` must have been built over the same universe.
        """
        if universe is None:
            universe = VectorUniverse(circuit.num_inputs)
        if faults is None:
            faults = collapsed_stuck_at_faults(circuit)
        clock = obs.system_clock()
        started = clock.monotonic()
        with obs.span(
            "table_build",
            kind="stuck_at",
            circuit=circuit.name,
            faults=len(faults),
            k=universe.size,
        ) as build_span:
            matrix = _kernel_matrix(
                "stuck_at", circuit, universe, faults, base_signatures
            )
            engine = "ppsfp" if matrix is not None else "bigint"
            build_span.set(engine=engine)
            if matrix is not None:
                table = matrix.to_bigints()
            else:
                # `is None`, not truthiness: an explicit (if degenerate)
                # empty signature list must not silently trigger a
                # recompute.
                if base_signatures is None:
                    base_signatures = universe_line_signatures(
                        circuit, universe
                    )
                sigs = base_signatures
                mask = universe.mask
                cone_cache: dict[int, list[int]] = {}
                table = []
                for f in faults:
                    cone = cone_cache.get(f.lid)
                    if cone is None:
                        cone = circuit.fanout_cone_order(f.lid)
                        cone_cache[f.lid] = cone
                    table.append(
                        stuck_at_detection_signature(
                            circuit, sigs, f, mask=mask, cone_order=cone
                        )
                    )
            if drop_undetectable:
                kept = [
                    (f, t) for f, t in zip(faults, table, strict=True) if t
                ]
                faults = [f for f, _ in kept]
                table = [t for _, t in kept]
        _observe_table_build(
            "stuck_at", engine, clock.monotonic() - started
        )
        return cls(circuit, list(faults), table, universe)

    @classmethod
    def for_bridging(
        cls,
        circuit: Circuit,
        faults: list[BridgingFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = True,
        universe: VectorUniverse | None = None,
    ) -> "DetectionTable":
        """Table for four-way bridging faults (the paper's ``G``).

        The paper's ``G`` contains only *detectable* bridging faults, so
        ``drop_undetectable`` defaults to True.  On a sampled universe
        "undetectable" means "not detected by any sampled vector".
        """
        if universe is None:
            universe = VectorUniverse(circuit.num_inputs)
        if faults is None:
            faults = four_way_bridging_faults(circuit)
        clock = obs.system_clock()
        started = clock.monotonic()
        with obs.span(
            "table_build",
            kind="bridging",
            circuit=circuit.name,
            faults=len(faults),
            k=universe.size,
        ) as build_span:
            matrix = _kernel_matrix(
                "bridging", circuit, universe, faults, base_signatures
            )
            engine = "ppsfp" if matrix is not None else "bigint"
            build_span.set(engine=engine)
            if matrix is not None:
                table = matrix.to_bigints()
            else:
                if base_signatures is None:
                    base_signatures = universe_line_signatures(
                        circuit, universe
                    )
                sigs = base_signatures
                mask = universe.mask
                cone_cache: dict[int, list[int]] = {}
                table = []
                for g in faults:
                    cone = cone_cache.get(g.victim)
                    if cone is None:
                        cone = circuit.fanout_cone_order(g.victim)
                        cone_cache[g.victim] = cone
                    table.append(
                        bridging_detection_signature(
                            circuit, sigs, g, mask=mask, cone_order=cone
                        )
                    )
            if drop_undetectable:
                kept = [
                    (g, t) for g, t in zip(faults, table, strict=True) if t
                ]
                faults = [g for g, _ in kept]
                table = [t for _, t in kept]
        _observe_table_build(
            "bridging", engine, clock.monotonic() - started
        )
        return cls(circuit, list(faults), table, universe)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.faults)

    def count(self, index: int) -> int:
        """``N(f)`` — number of vectors detecting fault ``index``."""
        return self.signatures[index].bit_count()

    def counts(self) -> list[int]:
        """``N(f)`` for every fault."""
        return [sig.bit_count() for sig in self.signatures]

    def estimated_count(self, index: int) -> float:
        """``|U|``-scale estimate of ``N(f)`` (equals ``count`` when exact).

        Dispatches through the universe so non-uniform designs (the
        stratified universe of :mod:`repro.adaptive`) apply their own
        unbiased estimator.
        """
        return self.universe.estimate_signature(self.signatures[index])

    def estimated_counts(self) -> list[float]:
        """``|U|``-scale ``N(f)`` estimates for every fault."""
        return [
            self.universe.estimate_signature(sig) for sig in self.signatures
        ]

    def count_estimate(
        self, index: int, confidence: float = 0.95
    ) -> CountEstimate:
        """``N(f)`` estimate with a confidence interval for fault ``index``."""
        return self.universe.interval_for_signature(
            self.signatures[index], confidence
        )

    def vectors(self, index: int) -> list[int]:
        """Sorted list of detecting signature bits (cached).

        On the exhaustive universe these are the detecting decimal
        vectors; on a sampled universe they are sample-bit indices — use
        :meth:`detecting_vectors` for the decimal vectors behind them.
        """
        vecs = self._vector_cache.get(index)
        if vecs is None:
            vecs = set_bits(self.signatures[index])
            self._vector_cache[index] = vecs
        return vecs

    def detecting_vectors(self, index: int) -> list[int]:
        """Decimal input vectors detecting fault ``index`` (bit order)."""
        return [self.universe.vector_at(b) for b in self.vectors(index)]

    def detectable_indices(self) -> list[int]:
        """Indices of faults with at least one detecting vector."""
        return [i for i, sig in enumerate(self.signatures) if sig]

    def num_detectable(self) -> int:
        return sum(1 for sig in self.signatures if sig)

    def detected_by(self, test_signature: int) -> list[int]:
        """Indices of faults detected by a test set (bitset over ``U``)."""
        return [
            i
            for i, sig in enumerate(self.signatures)
            if sig & test_signature
        ]

    def coverage(self, test_signature: int) -> float:
        """Fraction of *detectable* faults detected by the test set."""
        detectable = self.num_detectable()
        if detectable == 0:
            return 1.0
        hit = sum(
            1 for sig in self.signatures if sig and sig & test_signature
        )
        return hit / detectable

    def detection_counts(self, test_signature: int) -> list[int]:
        """Detection multiplicity of every fault under a test set."""
        return [
            (sig & test_signature).bit_count() for sig in self.signatures
        ]

    def fault_name(self, index: int) -> str:
        return self.faults[index].name(self.circuit)
