"""Exhaustive detection tables: ``T(f)`` for every fault, over all of ``U``.

The paper's analysis needs, for every fault ``h`` in ``F ∪ G``, the set
``T(h) ⊆ U`` of input vectors that detect ``h``.  A
:class:`DetectionTable` holds those sets as signatures (one int per
fault, bit ``v`` = "vector ``v`` detects the fault") and provides the
popcount quantities the worst-case analysis is built from.

Detection signatures are computed by forcing the fault site's signature
and re-simulating only the site's fanout cone — the standard
"single-fault propagation" trick lifted to full-space signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.circuit.netlist import Circuit
from repro.errors import FaultError
from repro.faults.bridging import BridgingFault, four_way_bridging_faults
from repro.faults.stuck_at import StuckAtFault, collapsed_stuck_at_faults
from repro.logic.bitops import all_ones_mask, set_bits
from repro.simulation.exhaustive import (
    detection_signature,
    line_signatures,
    resimulate_cone,
)

Fault = Union[StuckAtFault, BridgingFault]


def stuck_at_detection_signature(
    circuit: Circuit,
    base_signatures: list[int],
    fault: StuckAtFault,
    mask: int | None = None,
    cone_order: list[int] | None = None,
) -> int:
    """``T(f)`` for a stuck-at fault (signature over ``U``)."""
    if mask is None:
        mask = all_ones_mask(circuit.num_inputs)
    forced = {fault.lid: mask if fault.value else 0}
    changed = resimulate_cone(
        circuit, base_signatures, forced, mask, cone_order=cone_order
    )
    return detection_signature(circuit, base_signatures, changed)


def bridging_detection_signature(
    circuit: Circuit,
    base_signatures: list[int],
    fault: BridgingFault,
    mask: int | None = None,
    cone_order: list[int] | None = None,
) -> int:
    """``T(g)`` for a four-way bridging fault.

    Activation requires fault-free ``l1 = a1`` and ``l2 = a2``; on the
    activated vectors the victim's value flips (XOR with the activation
    set).  Non-feedback pairs guarantee the aggressor's value is
    unaffected by the flip.
    """
    if mask is None:
        mask = all_ones_mask(circuit.num_inputs)
    s1 = base_signatures[fault.victim]
    s2 = base_signatures[fault.aggressor]
    m1 = s1 if fault.victim_value else ~s1 & mask
    m2 = s2 if fault.aggressor_value else ~s2 & mask
    activated = m1 & m2
    if not activated:
        return 0
    forced = {fault.victim: s1 ^ activated}
    changed = resimulate_cone(
        circuit, base_signatures, forced, mask, cone_order=cone_order
    )
    return detection_signature(circuit, base_signatures, changed)


@dataclass
class DetectionTable:
    """Detection sets ``T(f)`` for an ordered fault list.

    Attributes
    ----------
    circuit:
        The analyzed circuit.
    faults:
        Fault objects, in table order.
    signatures:
        ``signatures[i]`` is ``T(faults[i])`` as a bit-signature over
        ``U``; undetectable faults (if kept) have signature 0.
    """

    circuit: Circuit
    faults: list[Fault]
    signatures: list[int]
    _vector_cache: dict[int, list[int]] = field(
        init=False, default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if len(self.faults) != len(self.signatures):
            raise FaultError("faults and signatures length mismatch")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_stuck_at(
        cls,
        circuit: Circuit,
        faults: list[StuckAtFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = False,
    ) -> "DetectionTable":
        """Table for the collapsed stuck-at set (the paper's ``F``).

        The paper keeps undetectable target faults in ``F`` — they simply
        never force any test into the set — so ``drop_undetectable``
        defaults to False.
        """
        if faults is None:
            faults = collapsed_stuck_at_faults(circuit)
        sigs = base_signatures or line_signatures(circuit)
        mask = all_ones_mask(circuit.num_inputs)
        cone_cache: dict[int, list[int]] = {}
        table = []
        for f in faults:
            cone = cone_cache.get(f.lid)
            if cone is None:
                cone = circuit.fanout_cone_order(f.lid)
                cone_cache[f.lid] = cone
            table.append(
                stuck_at_detection_signature(
                    circuit, sigs, f, mask=mask, cone_order=cone
                )
            )
        if drop_undetectable:
            kept = [(f, t) for f, t in zip(faults, table) if t]
            faults = [f for f, _ in kept]
            table = [t for _, t in kept]
        return cls(circuit, list(faults), table)

    @classmethod
    def for_bridging(
        cls,
        circuit: Circuit,
        faults: list[BridgingFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = True,
    ) -> "DetectionTable":
        """Table for four-way bridging faults (the paper's ``G``).

        The paper's ``G`` contains only *detectable* bridging faults, so
        ``drop_undetectable`` defaults to True.
        """
        if faults is None:
            faults = four_way_bridging_faults(circuit)
        sigs = base_signatures or line_signatures(circuit)
        mask = all_ones_mask(circuit.num_inputs)
        cone_cache: dict[int, list[int]] = {}
        table = []
        for g in faults:
            cone = cone_cache.get(g.victim)
            if cone is None:
                cone = circuit.fanout_cone_order(g.victim)
                cone_cache[g.victim] = cone
            table.append(
                bridging_detection_signature(
                    circuit, sigs, g, mask=mask, cone_order=cone
                )
            )
        if drop_undetectable:
            kept = [(g, t) for g, t in zip(faults, table) if t]
            faults = [g for g, _ in kept]
            table = [t for _, t in kept]
        return cls(circuit, list(faults), table)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.faults)

    def count(self, index: int) -> int:
        """``N(f)`` — number of vectors detecting fault ``index``."""
        return self.signatures[index].bit_count()

    def counts(self) -> list[int]:
        """``N(f)`` for every fault."""
        return [sig.bit_count() for sig in self.signatures]

    def vectors(self, index: int) -> list[int]:
        """Sorted list of detecting vectors (cached)."""
        vecs = self._vector_cache.get(index)
        if vecs is None:
            vecs = set_bits(self.signatures[index])
            self._vector_cache[index] = vecs
        return vecs

    def detectable_indices(self) -> list[int]:
        """Indices of faults with at least one detecting vector."""
        return [i for i, sig in enumerate(self.signatures) if sig]

    def num_detectable(self) -> int:
        return sum(1 for sig in self.signatures if sig)

    def detected_by(self, test_signature: int) -> list[int]:
        """Indices of faults detected by a test set (bitset over ``U``)."""
        return [
            i
            for i, sig in enumerate(self.signatures)
            if sig & test_signature
        ]

    def coverage(self, test_signature: int) -> float:
        """Fraction of *detectable* faults detected by the test set."""
        detectable = self.num_detectable()
        if detectable == 0:
            return 1.0
        hit = sum(
            1 for sig in self.signatures if sig and sig & test_signature
        )
        return hit / detectable

    def detection_counts(self, test_signature: int) -> list[int]:
        """Detection multiplicity of every fault under a test set."""
        return [
            (sig & test_signature).bit_count() for sig in self.signatures
        ]

    def fault_name(self, index: int) -> str:
        return self.faults[index].name(self.circuit)
