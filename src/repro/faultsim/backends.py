"""Pluggable detection-table backends.

Every analysis in this library consumes a
:class:`~repro.faultsim.detection.DetectionTable`; a *backend* is a
strategy for building one.  Three engines are provided:

``exhaustive``
    The paper's analysis substrate: ``2**p``-bit signatures over all of
    ``U`` via the closed-form input signatures and cone re-simulation.
    Exact; capped at :data:`~repro.logic.bitops.MAX_EXHAUSTIVE_INPUTS`
    inputs.
``sampled``
    Monte-Carlo sampled-U engine: ``K`` seeded random vectors packed
    into ``K``-bit signatures (same cone re-simulation machinery, with an
    explicit vector-index ↔ bit-index mapping carried by the table's
    :class:`~repro.faultsim.sampling.VectorUniverse`).  Popcounts become
    unbiased estimators of ``N(f)`` / ``M(g, f)`` with confidence
    intervals; the full-coverage draw (``K == 2**p``, without
    replacement) degenerates to the exact exhaustive result.  This is
    the engine that opens >24-input circuits to the worst-/average-case
    analyses.
``serial``
    Per-vector serial fault simulation — the deliberately independent
    slow path, used by the differential test harness to cross-validate
    the other two.
``packed``
    Numpy-packed engine: the exact same signatures as ``exhaustive``
    (or, with ``--samples``, as ``sampled``), stored additionally as
    ``numpy.uint64`` word blocks
    (:class:`~repro.faultsim.packed_table.PackedDetectionTable`) so the
    worst-case ``nmin`` scan runs as vectorized AND+popcount sweeps
    instead of per-pair big-int operations.  Bit-identical tables,
    hardware-speed popcounts; requires numpy.
``adaptive``
    The :class:`repro.adaptive.AdaptiveBackend` controller: instead of
    a fixed ``K`` it grows the sampled universe round by round until
    the smallest-``N(f)`` confidence intervals meet a target
    half-width, optionally with importance strata over rare bridging
    activation regions (``--stratify bridging``).
``fixed`` (:class:`FixedUniverseBackend`, API only)
    Tables over an explicit vector list — the adaptive controller's
    per-round delta engine; not exposed on the CLI.

Backends are small frozen dataclasses (hashable, so cached layers can
key on them) and share the :class:`DetectionBackend` protocol.  Any of
them can be wrapped by :class:`repro.parallel.ParallelBackend` (CLI:
``--jobs N`` / env ``REPRO_JOBS``), which shards the fault list, reuses
shards from a persistent on-disk cache, and merges a table bit-for-bit
identical to the single-process build — on a pluggable
:class:`repro.parallel.ShardExecutor` substrate (CLI: ``--executor
inline|pool|queue`` / env ``REPRO_EXECUTOR``; the queue executor
distributes shards to ``repro worker`` processes on any host sharing
``REPRO_QUEUE_DIR``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Protocol, runtime_checkable

from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.faults.bridging import BridgingFault, four_way_bridging_faults
from repro.faults.stuck_at import StuckAtFault, collapsed_stuck_at_faults
from repro.faultsim.detection import (
    DetectionTable,
    universe_line_signatures,
)
from repro.faultsim.sampling import VectorUniverse, draw_universe
from repro.logic.bitops import MAX_EXHAUSTIVE_INPUTS

#: Names accepted by :func:`make_backend` (and the CLI ``--backend`` flag).
BACKEND_NAMES: tuple[str, ...] = (
    "exhaustive",
    "sampled",
    "serial",
    "packed",
    "adaptive",
)


@runtime_checkable
class DetectionBackend(Protocol):
    """Strategy for building detection tables over a vector universe.

    ``needs_base_signatures`` tells callers whether the ``build_*``
    methods consume precomputed :meth:`line_signatures` — engines that
    ignore them (serial) advertise False so callers skip the work.
    Engines whose tables are numpy-packed advertise ``builds_packed =
    True`` so wrappers (the parallel merge step) reproduce the right
    table type.
    """

    name: str
    needs_base_signatures: bool

    def universe_for(self, circuit: Circuit) -> VectorUniverse:
        """The signature bit space this backend uses for ``circuit``."""

    def line_signatures(self, circuit: Circuit) -> list[int]:
        """Fault-free line signatures over :meth:`universe_for`'s space."""

    def build_stuck_at(
        self,
        circuit: Circuit,
        faults: list[StuckAtFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = False,
    ) -> DetectionTable:
        """Detection table for the target stuck-at set ``F``."""

    def build_bridging(
        self,
        circuit: Circuit,
        faults: list[BridgingFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = True,
    ) -> DetectionTable:
        """Detection table for the untargeted bridging set ``G``."""


# ----------------------------------------------------------------------
# Exhaustive (the seed engine, now one strategy among three)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExhaustiveBackend:
    """Exact tables over all of ``U`` (bit ``v`` ↔ vector ``v``)."""

    name: str = "exhaustive"
    needs_base_signatures = True

    def universe_for(self, circuit: Circuit) -> VectorUniverse:
        return VectorUniverse(circuit.num_inputs)

    def line_signatures(self, circuit: Circuit) -> list[int]:
        return universe_line_signatures(circuit, self.universe_for(circuit))

    def build_stuck_at(
        self,
        circuit: Circuit,
        faults: list[StuckAtFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = False,
    ) -> DetectionTable:
        return DetectionTable.for_stuck_at(
            circuit,
            faults=faults,
            base_signatures=base_signatures,
            drop_undetectable=drop_undetectable,
        )

    def build_bridging(
        self,
        circuit: Circuit,
        faults: list[BridgingFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = True,
    ) -> DetectionTable:
        return DetectionTable.for_bridging(
            circuit,
            faults=faults,
            base_signatures=base_signatures,
            drop_undetectable=drop_undetectable,
        )


# ----------------------------------------------------------------------
# Sampled-U (Monte-Carlo estimation; breaks the 24-input cap)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SampledBackend:
    """Estimated tables over ``K`` seeded random vectors.

    Parameters
    ----------
    samples:
        ``K`` — number of vectors to draw.
    seed:
        RNG seed; equal seeds reproduce the universe (and therefore the
        tables) exactly.
    replacement:
        Draw with replacement (default False: uniform ``K``-subset of
        ``U``, which tightens the confidence intervals via the
        finite-population correction and degenerates to the exhaustive
        result at ``K == 2**p``).
    """

    samples: int
    seed: int = 0
    replacement: bool = False
    name: str = "sampled"
    needs_base_signatures = True

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise AnalysisError(
                f"samples must be >= 1, got {self.samples}"
            )

    def universe_for(self, circuit: Circuit) -> VectorUniverse:
        # Memoized: one FaultUniverse calls this for line signatures and
        # both table builds, and a large draw (sample + sort of K ints)
        # is too expensive to repeat three times.
        return _drawn_universe(
            circuit.num_inputs, self.samples, self.seed, self.replacement
        )

    def line_signatures(self, circuit: Circuit) -> list[int]:
        return universe_line_signatures(circuit, self.universe_for(circuit))

    def build_stuck_at(
        self,
        circuit: Circuit,
        faults: list[StuckAtFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = False,
    ) -> DetectionTable:
        return DetectionTable.for_stuck_at(
            circuit,
            faults=faults,
            base_signatures=base_signatures,
            drop_undetectable=drop_undetectable,
            universe=self.universe_for(circuit),
        )

    def build_bridging(
        self,
        circuit: Circuit,
        faults: list[BridgingFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = True,
    ) -> DetectionTable:
        return DetectionTable.for_bridging(
            circuit,
            faults=faults,
            base_signatures=base_signatures,
            drop_undetectable=drop_undetectable,
            universe=self.universe_for(circuit),
        )


# ----------------------------------------------------------------------
# Packed (numpy uint64 blocks; vectorized popcounts for the nmin scan)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PackedBackend:
    """Exact-or-sampled tables stored as numpy-packed signature blocks.

    Without ``samples`` the universe is the exhaustive one (same cap as
    the exhaustive engine); with ``samples`` it is the same seeded draw
    the sampled engine uses.  Either way the tables are bit-identical to
    the corresponding big-int engine's — only the storage (and the speed
    of every popcount-heavy query) changes.
    """

    samples: int | None = None
    seed: int = 0
    replacement: bool = False
    name: str = "packed"
    needs_base_signatures = True
    builds_packed = True

    def __post_init__(self) -> None:
        from repro.logic.packed import require_numpy

        require_numpy()
        if self.samples is None:
            # Exhaustive universe: seed/replacement are meaningless.
            # Canonicalize them so equivalent backends share one cache
            # key in the experiment layer (tables weigh hundreds of MB).
            object.__setattr__(self, "seed", 0)
            object.__setattr__(self, "replacement", False)
        elif self.samples < 1:
            raise AnalysisError(
                f"samples must be >= 1, got {self.samples}"
            )

    def universe_for(self, circuit: Circuit) -> VectorUniverse:
        if self.samples is None:
            if circuit.num_inputs > MAX_EXHAUSTIVE_INPUTS:
                raise AnalysisError(
                    f"the packed backend without --samples is exhaustive "
                    f"and capped at {MAX_EXHAUSTIVE_INPUTS} inputs "
                    f"(circuit {circuit.name!r} has {circuit.num_inputs}); "
                    f"pass --samples K to sample the universe"
                )
            return VectorUniverse(circuit.num_inputs)
        return _drawn_universe(
            circuit.num_inputs, self.samples, self.seed, self.replacement
        )

    def line_signatures(self, circuit: Circuit) -> list[int]:
        return universe_line_signatures(circuit, self.universe_for(circuit))

    def build_stuck_at(
        self,
        circuit: Circuit,
        faults: list[StuckAtFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = False,
    ) -> DetectionTable:
        from repro.faultsim.packed_table import PackedDetectionTable

        return PackedDetectionTable.for_stuck_at(
            circuit,
            faults=faults,
            base_signatures=base_signatures,
            drop_undetectable=drop_undetectable,
            universe=self.universe_for(circuit),
        )

    def build_bridging(
        self,
        circuit: Circuit,
        faults: list[BridgingFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = True,
    ) -> DetectionTable:
        from repro.faultsim.packed_table import PackedDetectionTable

        return PackedDetectionTable.for_bridging(
            circuit,
            faults=faults,
            base_signatures=base_signatures,
            drop_undetectable=drop_undetectable,
            universe=self.universe_for(circuit),
        )


# ----------------------------------------------------------------------
# Fixed-universe (explicit vector list; the adaptive controller's
# per-round delta engine)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FixedUniverseBackend:
    """Tables over an *explicit* list of vectors, not a seeded draw.

    The adaptive sampling controller grows its universe round by round;
    each round builds signatures for only the freshly drawn vectors.
    This backend is that delta engine: it fixes the universe to the
    given (sorted, distinct) vectors and builds through the exact same
    table machinery as the sampled engine — so it composes unchanged
    with :class:`repro.parallel.ParallelBackend` (sharded builds, shard
    cache) and, with ``packed=True``, produces numpy-packed tables.

    It is a frozen, picklable dataclass like every other engine; the
    vectors tuple participates in equality/hashing, so cache layers key
    on the exact universe.
    """

    num_inputs: int
    vectors: tuple[int, ...]
    packed: bool = False
    name: str = "fixed"
    needs_base_signatures = True

    def __post_init__(self) -> None:
        if not self.vectors:
            raise AnalysisError(
                "a fixed-universe backend needs at least 1 vector"
            )
        if self.packed:
            from repro.logic.packed import require_numpy

            require_numpy()
        # Validate sortedness/range once, eagerly (VectorUniverse would
        # only catch it at build time, far from the mistake).
        self.universe

    @property
    def builds_packed(self) -> bool:
        return self.packed

    @property
    def universe(self) -> VectorUniverse:
        return VectorUniverse(self.num_inputs, self.vectors)

    def universe_for(self, circuit: Circuit) -> VectorUniverse:
        if circuit.num_inputs != self.num_inputs:
            raise AnalysisError(
                f"fixed universe is over {self.num_inputs} inputs but "
                f"circuit {circuit.name!r} has {circuit.num_inputs}"
            )
        return self.universe

    def line_signatures(self, circuit: Circuit) -> list[int]:
        return universe_line_signatures(circuit, self.universe_for(circuit))

    def _table_cls(self):
        if self.packed:
            from repro.faultsim.packed_table import PackedDetectionTable

            return PackedDetectionTable
        return DetectionTable

    def build_stuck_at(
        self,
        circuit: Circuit,
        faults: list[StuckAtFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = False,
    ) -> DetectionTable:
        return self._table_cls().for_stuck_at(
            circuit,
            faults=faults,
            base_signatures=base_signatures,
            drop_undetectable=drop_undetectable,
            universe=self.universe_for(circuit),
        )

    def build_bridging(
        self,
        circuit: Circuit,
        faults: list[BridgingFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = True,
    ) -> DetectionTable:
        return self._table_cls().for_bridging(
            circuit,
            faults=faults,
            base_signatures=base_signatures,
            drop_undetectable=drop_undetectable,
            universe=self.universe_for(circuit),
        )


@lru_cache(maxsize=32)
def _drawn_universe(
    num_inputs: int, samples: int, seed: int, replacement: bool
) -> VectorUniverse:
    """Deterministic draw, shared across a backend's table builds."""
    return draw_universe(
        num_inputs, samples, seed=seed, replacement=replacement
    )


# ----------------------------------------------------------------------
# Serial (independent per-vector slow path, for cross-validation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SerialBackend:
    """Exact tables via the per-vector serial engine.

    Shares *no* signature machinery with the exhaustive engine (every
    table bit is two full per-vector simulations), which is what makes it
    useful as the differential-testing reference.  Far too slow beyond
    toy circuits; capped accordingly.
    """

    name: str = "serial"
    max_inputs: int = 16
    needs_base_signatures = False

    def universe_for(self, circuit: Circuit) -> VectorUniverse:
        self._check(circuit)
        return VectorUniverse(circuit.num_inputs)

    def _check(self, circuit: Circuit) -> None:
        if circuit.num_inputs > self.max_inputs:
            raise AnalysisError(
                f"serial backend is capped at {self.max_inputs} inputs "
                f"(circuit {circuit.name!r} has {circuit.num_inputs}); "
                f"use --backend sampled"
            )

    def line_signatures(self, circuit: Circuit) -> list[int]:
        from repro.simulation.twoval import simulate_vector

        self._check(circuit)
        sigs = [0] * len(circuit.lines)
        for v in range(1 << circuit.num_inputs):
            values = simulate_vector(circuit, v)
            for lid, val in enumerate(values):
                if val:
                    sigs[lid] |= 1 << v
        return sigs

    def _build(
        self,
        circuit: Circuit,
        faults: list,
        drop_undetectable: bool,
    ) -> DetectionTable:
        from repro.faultsim.serial import detects

        self._check(circuit)
        space = 1 << circuit.num_inputs
        table = []
        for fault in faults:
            sig = 0
            for v in range(space):
                if detects(circuit, fault, v):
                    sig |= 1 << v
            table.append(sig)
        if drop_undetectable:
            kept = [(f, t) for f, t in zip(faults, table, strict=True) if t]
            faults = [f for f, _ in kept]
            table = [t for _, t in kept]
        return DetectionTable(circuit, list(faults), table)

    def build_stuck_at(
        self,
        circuit: Circuit,
        faults: list[StuckAtFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = False,
    ) -> DetectionTable:
        if faults is None:
            faults = collapsed_stuck_at_faults(circuit)
        return self._build(circuit, list(faults), drop_undetectable)

    def build_bridging(
        self,
        circuit: Circuit,
        faults: list[BridgingFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = True,
    ) -> DetectionTable:
        if faults is None:
            faults = four_way_bridging_faults(circuit)
        return self._build(circuit, list(faults), drop_undetectable)


def make_backend(
    name: str,
    samples: int | None = None,
    seed: int = 0,
    replacement: bool = False,
    jobs: int | None = None,
    *,
    executor: "str | object | None" = None,
    queue_dir: str | None = None,
    broker: str | None = None,
    target_halfwidth: float | None = None,
    confidence: float | None = None,
    max_samples: int | None = None,
    initial_samples: int | None = None,
    stratify: str | None = None,
) -> DetectionBackend:
    """Backend factory behind the CLI / env configuration.

    ``samples`` is required for ``sampled``, optional for ``packed``
    (which is exhaustive without it), and meaningless elsewhere.
    ``jobs > 1`` wraps the engine in a
    :class:`repro.parallel.ParallelBackend` (sharded build with the
    persistent shard cache); ``jobs=1``/``None`` stays single-process.
    ``executor`` selects the shard execution substrate explicitly — an
    :class:`repro.parallel.ShardExecutor` instance or one of the names
    ``inline``/``pool``/``queue``/``tcp`` (``queue_dir`` locates the
    work-queue directory for ``queue``; ``broker`` the ``HOST:PORT``
    for ``tcp``) — and overrides the ``jobs`` sugar.  The
    remaining keyword-only parameters configure the ``adaptive`` engine
    (:class:`repro.adaptive.AdaptiveBackend`): target CI half-width,
    confidence, sample budget, initial draw, and the stratification
    scheme (``None``/``"none"`` or ``"bridging"``); for adaptive,
    ``jobs``/``executor`` are threaded *into* the controller's sharded
    round builds instead of wrapping the backend.
    """
    adaptive_flags = {
        "--target-halfwidth": target_halfwidth,
        "--max-samples": max_samples,
        "--initial-samples": initial_samples,
        "--stratify": None if stratify in (None, "none") else stratify,
    }
    if name != "adaptive":
        bad = [flag for flag, value in adaptive_flags.items()
               if value is not None]
        if bad:
            raise AnalysisError(
                f"{', '.join(bad)} only appl"
                f"{'y' if len(bad) > 1 else 'ies'} to --backend adaptive "
                f"(got --backend {name})"
            )
    if name == "exhaustive":
        backend: DetectionBackend = ExhaustiveBackend()
    elif name == "serial":
        backend = SerialBackend()
    elif name == "packed":
        backend = PackedBackend(
            samples=samples, seed=seed, replacement=replacement
        )
    elif name == "sampled":
        if samples is None:
            raise AnalysisError(
                "--backend sampled requires --samples K (the number of "
                "random vectors to draw)"
            )
        backend = SampledBackend(samples, seed=seed, replacement=replacement)
    elif name == "adaptive":
        if samples is not None:
            raise AnalysisError(
                "--backend adaptive sizes its own draw round by round; "
                "use --max-samples (budget) and --initial-samples "
                "instead of --samples"
            )
        if replacement:
            raise AnalysisError(
                "--backend adaptive always samples without replacement "
                "(rounds extend one growing distinct-vector universe)"
            )
        from repro.adaptive import AdaptiveBackend, DEFAULT_RULE

        backend = AdaptiveBackend(
            target_halfwidth=(
                DEFAULT_RULE.target_halfwidth
                if target_halfwidth is None
                else target_halfwidth
            ),
            confidence=(
                DEFAULT_RULE.confidence if confidence is None else confidence
            ),
            initial_samples=(
                DEFAULT_RULE.initial_samples
                if initial_samples is None
                else initial_samples
            ),
            max_samples=(
                DEFAULT_RULE.max_samples
                if max_samples is None
                else max_samples
            ),
            seed=seed,
            stratify=adaptive_flags["--stratify"],
        )
    else:
        raise AnalysisError(
            f"unknown backend {name!r}; choose from "
            f"{', '.join(BACKEND_NAMES)}"
        )
    exec_obj = executor
    if isinstance(executor, str):
        from repro.parallel import make_executor

        exec_obj = make_executor(
            executor, jobs=jobs, queue_dir=queue_dir, broker=broker
        )
    else:
        if queue_dir is not None:
            raise AnalysisError(
                "queue_dir only applies with executor='queue'"
            )
        if broker is not None:
            raise AnalysisError(
                "broker only applies with executor='tcp'"
            )
    if exec_obj is not None or (jobs is not None and jobs != 1):
        from repro.parallel import maybe_parallel, resolve_jobs

        backend = maybe_parallel(
            backend, resolve_jobs(jobs), executor=exec_obj
        )
    return backend


def table_identity(
    backend: DetectionBackend | None,
) -> DetectionBackend | None:
    """Canonical key for "which tables does this backend produce?".

    Two canonicalizations: the default and explicit exhaustive collide
    (both map to ``None``), and a parallel wrapper collides with its
    base (the sharded build is bit-for-bit identical — only
    construction speed differs).  Keys are therefore executor-
    normalized too: a queue-distributed build, a local pool build, and
    an inline build of the same engine share one cache entry.  The
    adaptive backend needs no special case here: its ``jobs`` /
    ``executor`` fields are excluded from equality, so differently-
    executed adaptive runs already share one key.  Both the experiment
    LRUs and the serve hot tier key on this.
    """
    if backend is None:
        return None
    from repro.parallel.backend import ParallelBackend

    if isinstance(backend, ParallelBackend):
        backend = backend.base
    if backend == ExhaustiveBackend():
        return None
    return backend


def default_backend_for(circuit: Circuit, samples: int = 1 << 14,
                        seed: int = 0) -> DetectionBackend:
    """Exhaustive when the circuit fits under the cap, else sampled."""
    if circuit.num_inputs <= MAX_EXHAUSTIVE_INPUTS:
        return ExhaustiveBackend()
    return SampledBackend(min(samples, 1 << MAX_EXHAUSTIVE_INPUTS), seed=seed)
