"""Size-bounded LRU caching shared across layers.

The experiment harness has always memoized built universes and
worst-case analyses in a small backend-identity-keyed LRU (detection
tables of the largest suite circuits weigh tens of megabytes, so an
unbounded cache is not an option).  The analysis service
(:mod:`repro.serve`) needs the exact same structure as its in-memory
*hot tier* above the persistent content-addressed shard cache — so the
implementation lives here, once, and both layers share it.

Capacity comes from ``REPRO_TABLE_LRU`` (default
:data:`DEFAULT_TABLE_LRU`, preserving the historical experiment-layer
size); hit/miss/eviction counters are first-class because the service
exports them through ``/stats``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.errors import AnalysisError

__all__ = [
    "DEFAULT_TABLE_LRU",
    "LRUCache",
    "table_lru_capacity",
]

#: Historical experiment-layer capacity: holds the whole 35-circuit
#: suite (suite-wide tables revisit every circuit, and rebuilding the
#: biggest detection tables costs ~10 s each) while the total footprint
#: stays within a few GB (the two largest tables are ~400 MB each).
DEFAULT_TABLE_LRU = 40

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


def table_lru_capacity(default: int = DEFAULT_TABLE_LRU) -> int:
    """Hot-tier capacity: ``REPRO_TABLE_LRU`` or ``default``."""
    raw = os.environ.get("REPRO_TABLE_LRU")
    if raw is None or raw == "":
        return default
    try:
        capacity = int(raw)
    except ValueError as exc:
        raise AnalysisError(
            f"REPRO_TABLE_LRU must be an integer, got {raw!r}"
        ) from exc
    if capacity < 1:
        raise AnalysisError(
            f"REPRO_TABLE_LRU must be >= 1, got {capacity}"
        )
    return capacity


class LRUCache(Generic[K, V]):
    """Move-to-end LRU with a hard size bound and usage counters.

    Semantics match the experiment layer's historical OrderedDict pair:
    ``get`` refreshes recency and returns ``None`` on a miss (values are
    never ``None``); ``put`` inserts/refreshes and evicts the least
    recently used entries beyond ``capacity``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise AnalysisError(
                f"LRU capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K) -> V | None:
        """Value for ``key`` (refreshing recency), or ``None``."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def peek(self, key: K) -> V | None:
        """Like :meth:`get` but without touching recency or counters."""
        return self._entries.get(key)

    def put(self, key: K, value: V) -> None:
        """Insert/refresh ``key`` and evict beyond ``capacity``."""
        if value is None:
            raise AnalysisError("LRUCache values must not be None")
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> int:
        """Drop every entry (counters keep accumulating); returns count."""
        removed = len(self._entries)
        self._entries.clear()
        return removed

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, int | float]:
        """Counter snapshot (the service exports this via ``/stats``)."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
