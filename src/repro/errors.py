"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class.  The
subclasses partition failures by subsystem: circuit construction, file
parsing, simulation, fault handling, and analysis configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Structural problem in a circuit (bad connectivity, duplicate names...)."""


class CircuitCycleError(CircuitError):
    """The combinational netlist contains a cycle."""

    def __init__(self, cycle_lines: list[str]):
        self.cycle_lines = list(cycle_lines)
        super().__init__(
            "combinational cycle through lines: " + " -> ".join(self.cycle_lines)
        )


class ParseError(ReproError):
    """A netlist / FSM file could not be parsed."""

    def __init__(self, message: str, line_no: int | None = None):
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """Invalid simulation request (wrong vector width, unknown line...)."""


class FaultError(ReproError):
    """Invalid fault specification (unknown line, bad stuck value...)."""


class AnalysisError(ReproError):
    """Invalid analysis configuration (e.g. nmax < 1, empty fault set)."""


class AtpgError(ReproError):
    """ATPG engine failure (undetectable target treated as detectable...)."""
