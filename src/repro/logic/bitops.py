"""Signature (bit-vector over the full input space) helpers.

A *signature* for a ``p``-input circuit is an arbitrary-precision integer
with ``2**p`` meaningful bits; bit ``v`` holds a line's logic value under
the input vector whose decimal encoding is ``v``.  The decimal encoding
follows the paper's convention: **input 1 is the most significant bit**,
so for the 4-input example circuit, vector 6 = ``0110`` assigns
input1=0, input2=1, input3=1, input4=0.

Python's big integers make the full-space simulation of every vector a
single bitwise expression per gate, and ``int.bit_count()`` gives the
popcounts needed by the worst-case analysis (``N(f)`` and ``M(g, f)``).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator

_MASK_CACHE: dict[int, int] = {}
_INPUT_SIG_CACHE: dict[tuple[int, int], int] = {}

MAX_EXHAUSTIVE_INPUTS = 24
"""Hard cap on ``p`` for exhaustive signatures (2**24 bits = 2 MiB each)."""


def all_ones_mask(num_inputs: int) -> int:
    """Mask with ``2**num_inputs`` one-bits — the signature of constant 1."""
    if not 0 <= num_inputs <= MAX_EXHAUSTIVE_INPUTS:
        raise ValueError(
            f"num_inputs must be in [0, {MAX_EXHAUSTIVE_INPUTS}], got {num_inputs}"
        )
    mask = _MASK_CACHE.get(num_inputs)
    if mask is None:
        mask = (1 << (1 << num_inputs)) - 1
        _MASK_CACHE[num_inputs] = mask
    return mask


def input_signature(input_index: int, num_inputs: int) -> int:
    """Signature of primary input ``input_index`` (0-based, 0 = MSB).

    Bit ``v`` of the result is ``(v >> (num_inputs - 1 - input_index)) & 1``.
    """
    if not 0 <= input_index < num_inputs:
        raise ValueError(
            f"input_index {input_index} out of range for {num_inputs} inputs"
        )
    key = (input_index, num_inputs)
    sig = _INPUT_SIG_CACHE.get(key)
    if sig is not None:
        return sig
    # Position of this input's bit counted from the vector LSB.
    lsb_pos = num_inputs - 1 - input_index
    half = 1 << lsb_pos                      # run length of equal values
    period = half << 1                       # 2 * half
    total = 1 << num_inputs                  # number of vectors
    # One period looks like: `half` zeros then `half` ones (LSB first).
    unit = ((1 << half) - 1) << half
    # Replicate the period across the whole signature.
    repetitions = total // period
    replicator = ((1 << (period * repetitions)) - 1) // ((1 << period) - 1)
    sig = unit * replicator
    _INPUT_SIG_CACHE[key] = sig
    return sig


def popcount(signature: int) -> int:
    """Number of set bits (``N(f)`` when applied to a detection set)."""
    return signature.bit_count()


def iter_set_bits(signature: int) -> Iterator[int]:
    """Yield the indices of set bits in increasing order."""
    while signature:
        low = signature & -signature
        yield low.bit_length() - 1
        signature ^= low


def set_bits(signature: int) -> list[int]:
    """List of set-bit indices in increasing order."""
    return list(iter_set_bits(signature))


def signature_from_vectors(vectors: Iterable[int], num_inputs: int) -> int:
    """Build a signature with exactly the given vector indices set."""
    limit = 1 << num_inputs
    sig = 0
    for v in vectors:
        if not 0 <= v < limit:
            raise ValueError(f"vector {v} out of range for {num_inputs} inputs")
        sig |= 1 << v
    return sig


def vectors_from_signature(signature: int) -> list[int]:
    """Inverse of :func:`signature_from_vectors` (sorted vector list)."""
    return set_bits(signature)


_SELECT_LEAF_BITS = 256
"""Width below which rank selection walks bits directly."""


def select_kth_set_bit(signature: int, k: int) -> int:
    """Index of the ``k``-th (0-based, ascending) set bit.

    Binary-splits the signature by popcount of the low half, halving the
    width each step, so selection costs O(width) bit operations total
    (the geometric shift series) — never materializing the set-bit list.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k >= signature.bit_count():
        raise ValueError("k is not smaller than the number of set bits")
    base = 0
    width = signature.bit_length()
    while width > _SELECT_LEAF_BITS:
        half = width >> 1
        low = signature & ((1 << half) - 1)
        ones = low.bit_count()
        if k < ones:
            signature = low
        else:
            k -= ones
            signature >>= half
            base += half
        width = signature.bit_length()
    for idx in iter_set_bits(signature):
        if k == 0:
            return base + idx
        k -= 1
    raise AssertionError("unreachable: k was validated against popcount")


def random_set_bit(signature: int, rng: random.Random) -> int:
    """Uniformly random index of a set bit.

    Uses rejection sampling over the bit range first (cheap when the
    signature is dense) and falls back to rank selection — picking a
    uniform rank and locating that set bit with
    :func:`select_kth_set_bit`'s binary split.  The fallback is O(width)
    bit operations with no list materialization, so even a huge dense
    signature that survives every rejection try stays cheap.
    """
    if signature == 0:
        raise ValueError("signature has no set bits")
    width = signature.bit_length()
    # Rejection sampling: expected tries = width / popcount.  Only worth it
    # when the signature is reasonably dense.
    if signature.bit_count() * 8 >= width:
        for _ in range(32):
            idx = rng.randrange(width)
            if (signature >> idx) & 1:
                return idx
    return select_kth_set_bit(
        signature, rng.randrange(signature.bit_count())
    )
