"""Partially-specified input vectors (cubes).

Definition 2 of the paper compares two fully-specified tests ``ti`` and
``tj`` through the partial vector ``tij`` that is *specified in the bits
where ti and tj agree and unspecified elsewhere*.  A :class:`Cube`
represents such a vector: a care-mask selects the specified inputs and a
value word holds their values.

Bit convention matches the rest of the library: input 1 (paper numbering)
is the most significant bit of the ``num_inputs``-wide words.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.values import ONE, X, ZERO


@dataclass(frozen=True, slots=True)
class Cube:
    """A partially-specified assignment to ``num_inputs`` primary inputs.

    Attributes
    ----------
    num_inputs:
        Number of primary inputs ``p``.
    care:
        ``p``-bit mask; bit set = input is specified.
    value:
        ``p``-bit word with the values of the specified inputs.  Bits
        outside ``care`` must be zero (normalized in ``__post_init__``).
    """

    num_inputs: int
    care: int
    value: int

    def __post_init__(self) -> None:
        mask = (1 << self.num_inputs) - 1
        if self.care & ~mask:
            raise ValueError("care mask wider than num_inputs")
        if self.value & ~self.care:
            object.__setattr__(self, "value", self.value & self.care)

    @classmethod
    def full(cls, vector: int, num_inputs: int) -> "Cube":
        """Fully-specified cube for a decimal input vector."""
        mask = (1 << num_inputs) - 1
        if not 0 <= vector <= mask:
            raise ValueError(f"vector {vector} out of range for {num_inputs} inputs")
        return cls(num_inputs, mask, vector)

    @classmethod
    def empty(cls, num_inputs: int) -> "Cube":
        """Completely unspecified cube (all inputs X)."""
        return cls(num_inputs, 0, 0)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse e.g. ``"01x1"`` (input 1 first, ``x``/``-`` = unspecified)."""
        care = 0
        value = 0
        for ch in text:
            care <<= 1
            value <<= 1
            if ch in "01":
                care |= 1
                value |= int(ch)
            elif ch in "xX-":
                pass
            else:
                raise ValueError(f"bad cube character {ch!r} in {text!r}")
        return cls(len(text), care, value)

    # ------------------------------------------------------------------
    # Per-input access
    # ------------------------------------------------------------------
    def _bit(self, input_index: int) -> int:
        if not 0 <= input_index < self.num_inputs:
            raise IndexError(f"input index {input_index} out of range")
        return self.num_inputs - 1 - input_index

    def get(self, input_index: int) -> int:
        """3-valued value of input ``input_index`` (0-based, 0 = input 1)."""
        bit = self._bit(input_index)
        if not (self.care >> bit) & 1:
            return X
        return ONE if (self.value >> bit) & 1 else ZERO

    def with_input(self, input_index: int, value3: int) -> "Cube":
        """Return a copy with one input set to a 3-valued value."""
        bit = self._bit(input_index)
        mask = 1 << bit
        if value3 == X:
            return Cube(self.num_inputs, self.care & ~mask, self.value & ~mask)
        if value3 == ONE:
            return Cube(self.num_inputs, self.care | mask, self.value | mask)
        if value3 == ZERO:
            return Cube(self.num_inputs, self.care | mask, self.value & ~mask)
        raise ValueError(f"bad 3-valued value: {value3!r}")

    # ------------------------------------------------------------------
    # Cube algebra
    # ------------------------------------------------------------------
    @property
    def num_specified(self) -> int:
        """Number of specified inputs."""
        return self.care.bit_count()

    @property
    def is_fully_specified(self) -> bool:
        return self.care == (1 << self.num_inputs) - 1

    @property
    def num_completions(self) -> int:
        """Number of fully-specified vectors consistent with the cube."""
        return 1 << (self.num_inputs - self.num_specified)

    def contains_vector(self, vector: int) -> bool:
        """True when the fully-specified ``vector`` is a completion."""
        return (vector & self.care) == self.value

    def completions(self) -> list[int]:
        """All fully-specified vectors consistent with the cube (sorted)."""
        free_bits = [
            b for b in range(self.num_inputs) if not (self.care >> b) & 1
        ]
        out = []
        for combo in range(1 << len(free_bits)):
            v = self.value
            for i, b in enumerate(free_bits):
                if (combo >> i) & 1:
                    v |= 1 << b
            out.append(v)
        out.sort()
        return out

    def completion_signature(self) -> int:
        """Signature (bitset over ``U``) of all completions."""
        sig = 0
        for v in self.completions():
            sig |= 1 << v
        return sig

    def intersects(self, other: "Cube") -> bool:
        """True when the two cubes share at least one completion."""
        self._check_compatible(other)
        both = self.care & other.care
        return (self.value & both) == (other.value & both)

    def intersection(self, other: "Cube") -> "Cube | None":
        """Most general cube consistent with both, or None when disjoint."""
        if not self.intersects(other):
            return None
        care = self.care | other.care
        value = self.value | other.value
        return Cube(self.num_inputs, care, value)

    def _check_compatible(self, other: "Cube") -> None:
        if self.num_inputs != other.num_inputs:
            raise ValueError(
                f"cube width mismatch: {self.num_inputs} vs {other.num_inputs}"
            )

    def __str__(self) -> str:
        chars = []
        for idx in range(self.num_inputs):
            v = self.get(idx)
            chars.append("x" if v == X else str(v))
        return "".join(chars)


def common_cube(ti: int, tj: int, num_inputs: int) -> Cube:
    """The paper's ``tij``: specified where ``ti`` and ``tj`` agree.

    ``ti`` and ``tj`` are decimal input vectors.  The result is specified
    (to the common value) in every bit position where the two vectors
    carry the same value, and unspecified elsewhere.
    """
    mask = (1 << num_inputs) - 1
    if not 0 <= ti <= mask or not 0 <= tj <= mask:
        raise ValueError("test vectors out of range")
    agree = ~(ti ^ tj) & mask
    return Cube(num_inputs, agree, ti & agree)
