"""Numpy-packed signatures: ``uint64`` word blocks behind the hot paths.

The big-int signature representation (:mod:`repro.logic.bitops`) makes
whole-space simulation a one-expression-per-gate affair, but the
worst-case analysis then burns its time in millions of
``(sig_f & sig_g).bit_count()`` evaluations over fault pairs — pure
popcount work that the Python object layer serializes.  A
:class:`PackedSignatureMatrix` stores the same signatures as a dense
``numpy.uint64`` array (one row per fault, ``ceil(size / 64)`` words per
row) so the AND + popcount of one fault against *every* other fault is a
single vectorized pass.

The packing is exact and bit-order preserving: bit ``i`` of the big-int
signature lives in word ``i // 64`` at in-word position ``i % 64``
(little-endian words), so round-tripping through
:meth:`PackedSignatureMatrix.from_bigints` /
:meth:`PackedSignatureMatrix.to_bigints` is the identity and popcounts
agree bit for bit with ``int.bit_count()``.

numpy is an optional dependency of this module alone: importing it
without numpy succeeds, and every entry point raises
:class:`~repro.errors.AnalysisError` with an actionable message instead
of an ``ImportError``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.errors import AnalysisError

if TYPE_CHECKING:
    import numpy as np
    from numpy.typing import NDArray

    #: A block of packed signature words (any shape, ``uint64`` lanes).
    U64Array = NDArray[np.uint64]
    #: Per-word/per-byte popcounts — counts, not lanes.
    U8Array = NDArray[np.uint8]
    I64Array = NDArray[np.int64]

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

WORD_BITS = 64
_WORD_BYTES = WORD_BITS // 8


def have_numpy() -> bool:
    """Whether the packed substrate is usable in this interpreter."""
    return _np is not None


def require_numpy() -> None:
    """Raise :class:`AnalysisError` when numpy is unavailable."""
    if _np is None:
        raise AnalysisError(
            "packed signatures require numpy, which is not installed; "
            "install numpy or choose another backend"
        )


def words_for(size: int) -> int:
    """Number of ``uint64`` words holding a ``size``-bit signature."""
    if size < 0:
        raise AnalysisError(f"signature size must be >= 0, got {size}")
    return max(1, (size + WORD_BITS - 1) // WORD_BITS)


if _np is not None and hasattr(_np, "bitwise_count"):

    def popcount_words(words: U64Array) -> U8Array:
        """Per-word popcounts of a ``uint64`` array (any shape)."""
        return _np.bitwise_count(words)

else:  # numpy < 2.0: byte-LUT fallback

    _BYTE_POPCOUNT: U8Array | None = (
        _np.array([bin(b).count("1") for b in range(256)], dtype=_np.uint8)
        if _np is not None
        else None
    )

    def popcount_words(words: U64Array) -> U8Array:
        """Per-word popcounts of a ``uint64`` array (any shape)."""
        assert _BYTE_POPCOUNT is not None  # require_numpy() guards callers
        as_bytes = _np.ascontiguousarray(words).view(_np.uint8)
        per_byte = _BYTE_POPCOUNT[as_bytes]
        return per_byte.reshape(*words.shape, _WORD_BYTES).sum(
            axis=-1, dtype=_np.uint8
        )


def pack_signature(signature: int, size: int) -> U64Array:
    """One big-int signature as a ``(words_for(size),)`` ``uint64`` row."""
    require_numpy()
    if signature < 0:
        raise AnalysisError("signatures are non-negative bitsets")
    if signature >> size:
        raise AnalysisError(
            f"signature has bits beyond the {size}-bit universe"
        )
    words = words_for(size)
    raw = signature.to_bytes(words * _WORD_BYTES, "little")
    return _np.frombuffer(raw, dtype="<u8").astype(_np.uint64, copy=False)


def unpack_signature(row: U64Array) -> int:
    """Inverse of :func:`pack_signature`."""
    require_numpy()
    raw = _np.ascontiguousarray(row, dtype="<u8").tobytes()
    return int.from_bytes(raw, "little")


class PackedSignatureMatrix:
    """Dense ``uint64`` block of detection signatures, one row per fault.

    Attributes
    ----------
    words:
        ``(num_rows, words_for(size))`` ``numpy.uint64`` array; bit ``i``
        of row ``r`` is bit ``i`` of fault ``r``'s big-int signature.
    size:
        Number of meaningful bits per row (the universe size); bits at
        positions ``>= size`` are zero by construction.
    """

    __slots__ = ("words", "size")

    words: U64Array
    size: int

    def __init__(self, words: U64Array, size: int) -> None:
        require_numpy()
        if words.ndim != 2:
            raise AnalysisError(
                f"packed matrix must be 2-D, got {words.ndim}-D"
            )
        if words.shape[1] != words_for(size):
            raise AnalysisError(
                f"packed matrix has {words.shape[1]} words per row; "
                f"a {size}-bit universe needs {words_for(size)}"
            )
        self.words = _np.ascontiguousarray(words, dtype=_np.uint64)
        self.size = size

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_bigints(
        cls, signatures: Sequence[int], size: int
    ) -> "PackedSignatureMatrix":
        """Pack big-int signatures (bit-order preserving, exact)."""
        require_numpy()
        num_words = words_for(size)
        row_bytes = num_words * _WORD_BYTES
        chunks = []
        for sig in signatures:
            if sig < 0:
                raise AnalysisError("signatures are non-negative bitsets")
            if sig >> size:
                raise AnalysisError(
                    f"signature has bits beyond the {size}-bit universe"
                )
            chunks.append(sig.to_bytes(row_bytes, "little"))
        raw = b"".join(chunks)
        words = _np.frombuffer(raw, dtype="<u8").astype(
            _np.uint64, copy=False
        )
        return cls(words.reshape(len(signatures), num_words), size)

    def to_bigints(self) -> list[int]:
        """Rows back as big-int signatures (inverse of :meth:`from_bigints`)."""
        row_bytes = self.words.shape[1] * _WORD_BYTES
        raw = self.words.astype("<u8", copy=False).tobytes()
        return [
            int.from_bytes(raw[i : i + row_bytes], "little")
            for i in range(0, len(raw), row_bytes)
        ]

    def row(self, index: int) -> U64Array:
        """One packed row (a ``uint64`` vector), by fault index."""
        return self.words[index]

    def row_bigint(self, index: int) -> int:
        """One row as a big-int signature."""
        return unpack_signature(self.words[index])

    # ------------------------------------------------------------------
    # Vectorized popcount kernels (the nmin hot path)
    # ------------------------------------------------------------------
    def popcount_rows(self) -> I64Array:
        """``N(f)`` for every row, as an ``int64`` vector."""
        return popcount_words(self.words).sum(axis=1, dtype=_np.int64)

    def and_popcount(self, row: U64Array) -> I64Array:
        """``popcount(row & self[r])`` for every row ``r`` (``int64``).

        ``row`` is a packed ``uint64`` vector over the same universe —
        this is ``M(g, f)`` for one ``g`` against the whole matrix in a
        single vectorized pass.
        """
        if row.shape[-1] != self.words.shape[1]:
            raise AnalysisError(
                "packed row and matrix disagree on the word count; were "
                "they built over the same universe?"
            )
        return popcount_words(self.words & row).sum(
            axis=1, dtype=_np.int64
        )

    def take(self, order: Iterable[int]) -> "PackedSignatureMatrix":
        """Row-reordered copy (e.g. targets sorted by ascending ``N(f)``)."""
        idx = _np.asarray(list(order), dtype=_np.intp)
        return PackedSignatureMatrix(self.words[idx], self.size)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.words.shape[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedSignatureMatrix):
            return NotImplemented
        return self.size == other.size and bool(
            _np.array_equal(self.words, other.words)
        )

    def __hash__(self) -> int:  # mutable array payload
        raise TypeError("PackedSignatureMatrix is unhashable")

    def __repr__(self) -> str:
        return (
            f"PackedSignatureMatrix(rows={self.words.shape[0]}, "
            f"size={self.size})"
        )


def and_popcount(row: U64Array, matrix: PackedSignatureMatrix) -> I64Array:
    """Module-level alias: ``popcount(row & matrix[r])`` for every row."""
    return matrix.and_popcount(row)


# ----------------------------------------------------------------------
# Incremental column surgery (the adaptive controller's packed substrate)
# ----------------------------------------------------------------------
def widen_matrix(
    matrix: PackedSignatureMatrix, new_size: int
) -> PackedSignatureMatrix:
    """Copy of ``matrix`` re-declared over a larger bit universe.

    Existing bits keep their positions; the new high bits are zero.
    This is the growth step of the adaptive sampler: a ``K``-bit
    signature block becomes a ``K + D``-bit block before the round's
    fresh columns are scattered in.
    """
    require_numpy()
    if new_size < matrix.size:
        raise AnalysisError(
            f"cannot shrink a {matrix.size}-bit matrix to {new_size} bits"
        )
    old_words = matrix.words
    num_words = words_for(new_size)
    if num_words == old_words.shape[1]:
        return PackedSignatureMatrix(old_words.copy(), new_size)
    words = _np.zeros((old_words.shape[0], num_words), dtype=_np.uint64)
    words[:, : old_words.shape[1]] = old_words
    return PackedSignatureMatrix(words, new_size)


def scatter_columns(
    matrix: PackedSignatureMatrix,
    delta: PackedSignatureMatrix,
    positions: Iterable[int],
) -> None:
    """OR bit column ``j`` of ``delta`` into bit ``positions[j]`` of ``matrix``.

    Both matrices must have the same row count; ``positions`` maps each
    of ``delta``'s meaningful bit columns to a distinct bit position of
    ``matrix`` (in-place).  This merges one adaptive round's
    freshly-built signature columns into the accumulated block without
    touching — let alone re-simulating — any existing column.
    """
    require_numpy()
    if len(matrix) != len(delta):
        raise AnalysisError(
            "scatter_columns needs matrices with matching row counts"
        )
    positions = list(positions)
    if len(positions) != delta.size:
        raise AnalysisError(
            f"got {len(positions)} positions for {delta.size} delta columns"
        )
    dest = matrix.words
    src = delta.words
    one = _np.uint64(1)
    for j, pos in enumerate(positions):
        if not 0 <= pos < matrix.size:
            raise AnalysisError(
                f"column position {pos} out of range for a "
                f"{matrix.size}-bit matrix"
            )
        bit = (src[:, j // WORD_BITS] >> _np.uint64(j % WORD_BITS)) & one
        dest[:, pos // WORD_BITS] |= bit << _np.uint64(pos % WORD_BITS)


def gather_columns(
    matrix: PackedSignatureMatrix, order: Iterable[int]
) -> PackedSignatureMatrix:
    """Column-permuted copy: bit ``j`` of the result is bit ``order[j]``.

    Used once at the end of an adaptive run to re-order the accumulated
    draw-order columns into sorted-vector order (the invariant of
    :class:`~repro.faultsim.sampling.VectorUniverse`).  Unpacks to a
    little-endian bit plane, gathers, and re-packs — exact for any size.
    """
    require_numpy()
    idx = _np.asarray(list(order), dtype=_np.intp)
    if idx.size and (idx.min() < 0 or idx.max() >= matrix.size):
        raise AnalysisError(
            f"column order references bits outside the {matrix.size}-bit "
            f"universe"
        )
    bits = _np.unpackbits(
        _np.ascontiguousarray(
            matrix.words.astype("<u8", copy=False)
        ).view(_np.uint8),
        axis=1,
        bitorder="little",
    )
    gathered = bits[:, idx]
    new_size = idx.size
    pad = words_for(new_size) * WORD_BITS - new_size
    if pad:
        gathered = _np.concatenate(
            [
                gathered,
                _np.zeros((gathered.shape[0], pad), dtype=_np.uint8),
            ],
            axis=1,
        )
    packed = _np.packbits(gathered, axis=1, bitorder="little")
    words = _np.ascontiguousarray(packed).view("<u8").astype(
        _np.uint64, copy=False
    )
    return PackedSignatureMatrix(words, new_size)
