"""Scalar 2-valued and 3-valued logic values.

The 3-valued algebra (0, 1, X) is the standard pessimistic ternary logic
used by test generation and fault simulation tools: ``X`` means "value not
known / not specified".  It is required by Definition 2 of the paper, which
simulates partially-specified vectors ``tij`` that are specified only in the
bits where two tests agree.

Values are plain ints: ``ZERO == 0``, ``ONE == 1``, ``X == 2``.  Using small
ints (rather than an enum) keeps the scalar simulator loops cheap; the
:class:`V3` enum-like namespace is provided for readable call sites.
"""

from __future__ import annotations

ZERO = 0
ONE = 1
X = 2

_VALID = (ZERO, ONE, X)


class V3:
    """Namespace with the three scalar logic values."""

    ZERO = ZERO
    ONE = ONE
    X = X


def _check(value: int) -> None:
    if value not in _VALID:
        raise ValueError(f"not a 3-valued logic value: {value!r}")


def v3_not(a: int) -> int:
    """3-valued NOT: ``not X`` is ``X``."""
    _check(a)
    if a == X:
        return X
    return ONE - a


def v3_and(a: int, b: int) -> int:
    """3-valued AND: controlled by any 0 input, X otherwise unless both 1."""
    _check(a)
    _check(b)
    if a == ZERO or b == ZERO:
        return ZERO
    if a == ONE and b == ONE:
        return ONE
    return X


def v3_or(a: int, b: int) -> int:
    """3-valued OR: controlled by any 1 input, X otherwise unless both 0."""
    _check(a)
    _check(b)
    if a == ONE or b == ONE:
        return ONE
    if a == ZERO and b == ZERO:
        return ZERO
    return X


def v3_xor(a: int, b: int) -> int:
    """3-valued XOR: X if either input is X."""
    _check(a)
    _check(b)
    if a == X or b == X:
        return X
    return a ^ b


_CHAR_TO_V3 = {"0": ZERO, "1": ONE, "x": X, "X": X, "-": X}
_V3_TO_CHAR = {ZERO: "0", ONE: "1", X: "x"}


def v3_from_char(ch: str) -> int:
    """Parse ``0``, ``1``, ``x``/``X``/``-`` into a 3-valued constant."""
    try:
        return _CHAR_TO_V3[ch]
    except KeyError:
        raise ValueError(f"not a 3-valued logic character: {ch!r}") from None


def v3_to_char(value: int) -> str:
    """Render a 3-valued constant as ``0``, ``1`` or ``x``."""
    _check(value)
    return _V3_TO_CHAR[value]
