"""Logic-value substrate: 2-valued and 3-valued algebra over bit-packed words.

The whole library represents the value of a circuit line *over the complete
input space* ``U`` of a ``p``-input circuit as a single arbitrary-precision
Python integer ("signature"): bit ``v`` of the signature is the line's value
under input vector ``v`` (``0 <= v < 2**p``).  The decimal-vector convention
follows the paper: input 1 is the most significant bit of the vector.

Modules
-------
``values``
    Scalar 2-valued / 3-valued constants and truth tables.
``bitops``
    Signature helpers: masks, input patterns, popcounts, bit iteration.
``cube``
    Partially-specified input vectors (used by Definition 2's ``tij`` tests).
``packed``
    Numpy-packed signature blocks (``uint64`` words) with vectorized
    popcounts — the storage behind the ``packed`` detection backend.
"""

from repro.logic.values import (
    ZERO,
    ONE,
    X,
    V3,
    v3_and,
    v3_or,
    v3_not,
    v3_xor,
    v3_from_char,
    v3_to_char,
)
from repro.logic.bitops import (
    all_ones_mask,
    input_signature,
    iter_set_bits,
    popcount,
    random_set_bit,
    set_bits,
    signature_from_vectors,
    vectors_from_signature,
)
from repro.logic.cube import Cube, common_cube
from repro.logic.packed import (
    PackedSignatureMatrix,
    pack_signature,
    unpack_signature,
)

__all__ = [
    "ZERO",
    "ONE",
    "X",
    "V3",
    "v3_and",
    "v3_or",
    "v3_not",
    "v3_xor",
    "v3_from_char",
    "v3_to_char",
    "all_ones_mask",
    "input_signature",
    "iter_set_bits",
    "popcount",
    "random_set_bit",
    "set_bits",
    "signature_from_vectors",
    "vectors_from_signature",
    "Cube",
    "common_cube",
    "PackedSignatureMatrix",
    "pack_signature",
    "unpack_signature",
]
