"""Deterministic test generation (the substrate the paper's motivation assumes).

``podem``
    A classic PODEM implementation over 5-valued (D-calculus) simulation:
    objective selection, backtrace to a primary input, implication by
    forward simulation, D-frontier tracking, and backtracking with a
    bound.  Used to decide detectability without exhausting the input
    space and to generate compact deterministic tests.
``ndetect``
    n-detection test-set generation: a greedy set-multicover generator
    over exhaustive detection tables (optimal-ish and exact for small
    circuits) and a PODEM-based generator for circuits where exhaustive
    tables are unavailable.
"""

from repro.atpg.podem import PodemResult, generate_test, is_detectable
from repro.atpg.ndetect import (
    greedy_ndetection_set,
    podem_ndetection_set,
)

__all__ = [
    "PodemResult",
    "generate_test",
    "is_detectable",
    "greedy_ndetection_set",
    "podem_ndetection_set",
]
