"""PODEM test generation for single stuck-at faults.

A faithful textbook PODEM: the only decision variables are primary
inputs.  The engine repeatedly

1. picks an *objective* — activate the fault, or advance the D-frontier;
2. *backtraces* the objective to an unassigned primary input through the
   easiest path (level-based controllability);
3. assigns the input and *implies* by 3-valued good/faulty simulation;
4. on conflict (fault unactivatable or empty D-frontier) backtracks —
   flips the last decision, then pops exhausted decisions.

The good and faulty machines are simulated as a pair of 3-valued
simulations (the composite is the classic D-calculus: ``D = (1, 0)``,
``D̄ = (0, 1)``).  With an unbounded backtrack budget the result
``undetectable`` is exact; a bounded run may return ``aborted``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit, LineKind
from repro.errors import AtpgError
from repro.faults.stuck_at import StuckAtFault
from repro.logic.cube import Cube
from repro.logic.values import ONE, X, ZERO
from repro.simulation.threeval import simulate_cube

DETECTED = "detected"
UNDETECTABLE = "undetectable"
ABORTED = "aborted"


@dataclass(frozen=True)
class PodemResult:
    """Outcome of one PODEM run."""

    status: str
    cube: Cube | None

    def vector(self, rng: random.Random | None = None) -> int:
        """A fully-specified test (random completion of the cube)."""
        if self.cube is None:
            raise AtpgError(f"no test cube (status={self.status})")
        completions = None
        if rng is None:
            # Deterministic: zero-fill the unspecified bits.
            return self.cube.value
        completions = self.cube.completions()
        return completions[rng.randrange(len(completions))]


class _Podem:
    def __init__(self, circuit: Circuit, fault: StuckAtFault):
        self.circuit = circuit
        self.fault = fault
        self.num_inputs = circuit.num_inputs
        self.assignment: dict[int, int] = {}  # input position -> 0/1
        self.good: list[int] = []
        self.faulty: list[int] = []
        self._input_pos = {
            lid: pos for pos, lid in enumerate(circuit.inputs)
        }

    # -- implication -----------------------------------------------------
    def _imply(self) -> None:
        cube = Cube.empty(self.num_inputs)
        for pos, val in self.assignment.items():
            cube = cube.with_input(pos, val)
        self.good = simulate_cube(self.circuit, cube)
        self.faulty = simulate_cube(
            self.circuit, cube, forced={self.fault.lid: self.fault.value}
        )

    def _detected(self) -> bool:
        for o in self.circuit.outputs:
            g, f = self.good[o], self.faulty[o]
            if g != X and f != X and g != f:
                return True
        return False

    def _activated(self) -> bool:
        return self.good[self.fault.lid] == (self.fault.value ^ 1)

    def _activation_impossible(self) -> bool:
        return self.good[self.fault.lid] == self.fault.value

    def _d_frontier(self) -> list[int]:
        """Gate lines with a D/D' input and an undetermined output."""
        frontier = []
        for line in self.circuit.lines:
            if line.kind is not LineKind.GATE:
                continue
            if not (self.good[line.lid] == X or self.faulty[line.lid] == X):
                continue
            for src in line.fanin:
                g, f = self.good[src], self.faulty[src]
                if g != X and f != X and g != f:
                    frontier.append(line.lid)
                    break
        return frontier

    # -- backtrace -------------------------------------------------------
    def _easiest_x_input(self, lid: int) -> int | None:
        line = self.circuit.lines[lid]
        best = None
        for src in line.fanin:
            if self.good[src] == X:
                if best is None or self.circuit.level[src] < self.circuit.level[best]:
                    best = src
        return best

    def _hardest_x_input(self, lid: int) -> int | None:
        line = self.circuit.lines[lid]
        best = None
        for src in line.fanin:
            if self.good[src] == X:
                if best is None or self.circuit.level[src] > self.circuit.level[best]:
                    best = src
        return best

    def _backtrace(self, lid: int, value: int) -> tuple[int, int] | None:
        """Map an objective to an unassigned-PI assignment, or None."""
        seen = 0
        while True:
            seen += 1
            if seen > 4 * len(self.circuit.lines):  # pragma: no cover
                raise AtpgError("backtrace loop; circuit is not acyclic?")
            line = self.circuit.lines[lid]
            if line.kind is LineKind.INPUT:
                pos = self._input_pos[lid]
                if pos in self.assignment:
                    return None
                return pos, value
            if line.kind is LineKind.BRANCH:
                lid = line.fanin[0]
                continue
            gt = line.gate_type
            if gt in (GateType.CONST0, GateType.CONST1):
                return None
            if gt in (GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR):
                value ^= 1
            if gt in (GateType.NOT, GateType.BUF):
                lid = line.fanin[0]
                continue
            if gt in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
                controlling = 0 if gt in (GateType.AND, GateType.NAND) else 1
                if value == (controlling ^ 1):
                    # All inputs must be non-controlling: take the hardest.
                    nxt = self._hardest_x_input(lid)
                else:
                    # One controlling input suffices: take the easiest.
                    nxt = self._easiest_x_input(lid)
                if nxt is None:
                    return None
                if value == (controlling ^ 1):
                    lid, value = nxt, controlling ^ 1
                else:
                    lid, value = nxt, controlling
                continue
            # XOR/XNOR: aim the first X input at the parity still needed.
            nxt = self._easiest_x_input(lid)
            if nxt is None:
                return None
            parity = value
            for src in line.fanin:
                if src != nxt and self.good[src] == ONE:
                    parity ^= 1
            lid, value = nxt, parity

    # -- objective -------------------------------------------------------
    def _objective(self) -> tuple[int, int] | None:
        if not self._activated():
            return self.fault.lid, self.fault.value ^ 1
        frontier = self._d_frontier()
        if not frontier:
            return None
        # Try every frontier gate, closest to the outputs first.  An
        # input may be undetermined in the good machine, the faulty
        # machine, or both — any of them is a usable objective (the
        # faulty-only case arises when the fault effect reconverges;
        # missing it made early versions declare spurious conflicts).
        for lid in sorted(
            frontier, key=lambda g: self.circuit.level[g], reverse=True
        ):
            line = self.circuit.lines[lid]
            controlling = line.gate_type.controlling_value
            target: int | None = None
            for src in line.fanin:
                if self.good[src] == X or self.faulty[src] == X:
                    target = src
                    break
            if target is None:
                continue
            if controlling is None:
                return target, ZERO  # XOR: any definite value sensitizes
            return target, controlling ^ 1
        return None

    def _fallback_decision(self) -> tuple[int, int] | None:
        """Any unassigned PI (lowest position), value 0 first.

        Used when the structured objective/backtrace cannot name a PI
        (e.g. the undetermined values sit only in the faulty machine):
        deciding an arbitrary input keeps the search complete — a
        spurious conflict here would wrongly prune live subtrees.
        """
        for pos in range(self.num_inputs):
            if pos not in self.assignment:
                return pos, 0
        return None

    # -- main loop --------------------------------------------------------
    def run(self, backtrack_limit: int) -> PodemResult:
        self._imply()
        if self._detected():  # constant-free circuits cannot be pre-detected
            return PodemResult(DETECTED, self._cube())
        decisions: list[tuple[int, int, bool]] = []  # (pos, value, flipped)
        backtracks = 0
        while True:
            conflict = (
                self._activation_impossible()
                or (self._activated() and not self._d_frontier())
            )
            if not conflict:
                step = None
                objective = self._objective()
                if objective is not None:
                    step = self._backtrace(*objective)
                if step is None:
                    step = self._fallback_decision()
                if step is None:
                    conflict = True  # fully assigned and still undecided
                else:
                    pos, val = step
                    self.assignment[pos] = val
                    decisions.append((pos, val, False))
                    self._imply()
                    if self._detected():
                        return PodemResult(DETECTED, self._cube())
                    continue
            # Backtrack.
            while decisions:
                pos, val, flipped = decisions.pop()
                del self.assignment[pos]
                if not flipped:
                    backtracks += 1
                    if backtrack_limit and backtracks > backtrack_limit:
                        return PodemResult(ABORTED, None)
                    self.assignment[pos] = val ^ 1
                    decisions.append((pos, val ^ 1, True))
                    break
            else:
                return PodemResult(UNDETECTABLE, None)
            self._imply()
            if self._detected():
                return PodemResult(DETECTED, self._cube())

    def _cube(self) -> Cube:
        cube = Cube.empty(self.num_inputs)
        for pos, val in self.assignment.items():
            cube = cube.with_input(pos, val)
        return cube


def generate_test(
    circuit: Circuit,
    fault: StuckAtFault,
    backtrack_limit: int = 10_000,
) -> PodemResult:
    """Run PODEM for one stuck-at fault.

    ``backtrack_limit = 0`` means unbounded (exact undetectability).
    """
    if fault.value not in (0, 1):
        raise AtpgError(f"bad stuck value {fault.value!r}")
    return _Podem(circuit, fault).run(backtrack_limit)


def is_detectable(
    circuit: Circuit, fault: StuckAtFault, backtrack_limit: int = 0
) -> bool:
    """Exact detectability via PODEM (unbounded backtracking by default)."""
    result = generate_test(circuit, fault, backtrack_limit)
    if result.status == ABORTED:
        raise AtpgError("PODEM aborted; raise backtrack_limit")
    return result.status == DETECTED
