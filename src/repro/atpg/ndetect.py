"""Deterministic n-detection test-set generation.

The paper's premise is that "the size of a compact n-detection test set
increases approximately linearly with n"; these generators provide that
substrate and let the benches verify the premise on our circuits.

Two engines:

* :func:`greedy_ndetection_set` — greedy set multicover over an
  exhaustive detection table: repeatedly add the vector that satisfies
  the most outstanding (fault, still-needed-detections) demand.  Near
  optimal, available whenever the table is (small input counts).
* :func:`podem_ndetection_set` — PODEM per fault with random fill of the
  unspecified bits, retrying until each fault has ``n`` distinct tests
  (or its test count is exhausted); works without exhaustive tables.
"""

from __future__ import annotations

import random

from repro.atpg.podem import ABORTED, DETECTED, generate_test
from repro.circuit.netlist import Circuit
from repro.errors import AtpgError
from repro.faults.stuck_at import StuckAtFault
from repro.faultsim.detection import DetectionTable
from repro.faultsim.serial import detects_stuck_at
from repro.logic.bitops import iter_set_bits


def greedy_ndetection_set(
    table: DetectionTable, n: int, rng: random.Random | None = None
) -> list[int]:
    """Greedy compact n-detection test set from a detection table.

    Every detectable fault ends up detected ``min(n, N(f))`` times.
    Ties between equally useful vectors break randomly when ``rng`` is
    given (deterministically toward the smallest vector otherwise).
    """
    if n < 1:
        raise AtpgError(f"n must be >= 1, got {n}")
    remaining = {
        i: min(n, sig.bit_count())
        for i, sig in enumerate(table.signatures)
        if sig
    }
    chosen: list[int] = []
    chosen_sig = 0
    # Vector -> fault coverage map (sparse, built once).
    vector_faults: dict[int, list[int]] = {}
    for i, sig in enumerate(table.signatures):
        for v in iter_set_bits(sig):
            vector_faults.setdefault(v, []).append(i)
    while remaining:
        best_vec = None
        best_gain = 0
        candidates = list(vector_faults.items())
        if rng is not None:
            rng.shuffle(candidates)
        for v, fault_ids in candidates:
            if (chosen_sig >> v) & 1:
                continue
            gain = sum(1 for i in fault_ids if remaining.get(i, 0) > 0)
            if gain > best_gain:
                best_gain = gain
                best_vec = v
        if best_vec is None:
            break  # demands left but no vector helps (cannot happen)
        chosen.append(best_vec)
        chosen_sig |= 1 << best_vec
        for i in vector_faults[best_vec]:
            if i in remaining:
                remaining[i] -= 1
                if remaining[i] == 0:
                    del remaining[i]
    return chosen


def podem_ndetection_set(
    circuit: Circuit,
    faults: list[StuckAtFault],
    n: int,
    seed: int = 0,
    max_attempts_per_fault: int = 64,
    backtrack_limit: int = 10_000,
) -> list[int]:
    """PODEM-based n-detection test set (no exhaustive table needed).

    For each fault, generates up to ``n`` distinct tests: a PODEM cube is
    completed with random values, rejected if already present.  Tests
    added for earlier faults count toward later faults' quotas (checked
    with the serial fault simulator), mirroring how deterministic
    n-detection generators exploit fortuitous detection.
    """
    if n < 1:
        raise AtpgError(f"n must be >= 1, got {n}")
    rng = random.Random(seed)
    tests: list[int] = []
    test_set: set[int] = set()
    for fault in faults:
        have = sum(1 for t in tests if detects_stuck_at(circuit, fault, t))
        if have >= n:
            continue
        result = generate_test(circuit, fault, backtrack_limit)
        if result.status == ABORTED:
            raise AtpgError(
                f"PODEM aborted on {fault.name(circuit)}; "
                "raise backtrack_limit"
            )
        if result.status != DETECTED:
            continue  # undetectable target: nothing to add
        attempts = 0
        while have < n and attempts < max_attempts_per_fault:
            attempts += 1
            t = result.vector(rng)
            if t in test_set:
                # Re-run PODEM occasionally?  The cube's completions may
                # all be taken; try another random completion first.
                continue
            if not detects_stuck_at(circuit, fault, t):  # pragma: no cover
                raise AtpgError("PODEM produced a non-detecting test")
            tests.append(t)
            test_set.add(t)
            have += 1
    return tests
