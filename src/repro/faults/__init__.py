"""Fault models: single stuck-at (targets) and four-way bridging (untargeted).

The paper's target fault set ``F`` is the collapsed single stuck-at fault
set; the untargeted set ``G`` is the set of detectable, non-feedback
four-way bridging faults between outputs of multi-input gates.  Both
universes are generated here; detection sets are computed by
:mod:`repro.faultsim`.
"""

from repro.faults.stuck_at import (
    StuckAtFault,
    all_stuck_at_faults,
    collapsed_stuck_at_faults,
    dominance_collapsed_faults,
    equivalence_classes,
)
from repro.faults.bridging import (
    BridgingFault,
    bridging_pair_sites,
    four_way_bridging_faults,
)
from repro.faults.cell_aware import (
    GateExhaustiveFault,
    gate_exhaustive_faults,
    gate_exhaustive_table,
)
from repro.faults.universe import FaultUniverse

__all__ = [
    "StuckAtFault",
    "all_stuck_at_faults",
    "collapsed_stuck_at_faults",
    "dominance_collapsed_faults",
    "equivalence_classes",
    "BridgingFault",
    "bridging_pair_sites",
    "four_way_bridging_faults",
    "GateExhaustiveFault",
    "gate_exhaustive_faults",
    "gate_exhaustive_table",
    "FaultUniverse",
]
