"""The combined fault universe of one analysis run.

:class:`FaultUniverse` bundles a circuit with the paper's two fault sets
and their detection tables:

* ``F`` — collapsed single stuck-at faults (targets of n-detection test
  generation), undetectable members kept (they never constrain a test
  set, matching the paper);
* ``G`` — detectable non-feedback four-way bridging faults between
  outputs of multi-input gates (the untargeted faults the analysis
  evaluates).

Tables are built by a pluggable
:class:`~repro.faultsim.backends.DetectionBackend` (default: the exact
exhaustive engine; pass a
:class:`~repro.faultsim.backends.SampledBackend` to analyze circuits
beyond the exhaustive input cap, or an
:class:`~repro.adaptive.AdaptiveBackend` to let a stopping rule pick
the sample size — both tables then come from the same adaptive run).
``jobs > 1`` shards both table builds across worker processes via
:class:`repro.parallel.ParallelBackend` — the result is bit-for-bit
identical, only faster (backends that parallelize internally, like the
adaptive engine, receive the worker count instead of being wrapped).
Everything is built lazily and cached, so experiments can share one
universe per circuit.
"""

from __future__ import annotations

from functools import cached_property
from typing import TYPE_CHECKING

from repro.circuit.netlist import Circuit
from repro.faults.bridging import BridgingFault, four_way_bridging_faults
from repro.faults.stuck_at import StuckAtFault, collapsed_stuck_at_faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see below)
    from repro.faultsim.backends import DetectionBackend
    from repro.faultsim.detection import DetectionTable
    from repro.parallel.executors import ShardExecutor

# NOTE: repro.faultsim imports the fault dataclasses from this package,
# so every repro.faultsim import happens lazily inside the cached
# properties to avoid a circular import at package load time.


class FaultUniverse:
    """Targets ``F``, untargeted ``G``, and their detection tables."""

    def __init__(
        self,
        circuit: Circuit,
        backend: "DetectionBackend | None" = None,
        jobs: int | None = None,
        executor: "ShardExecutor | None" = None,
    ) -> None:
        self.circuit = circuit
        self._backend = backend
        self._jobs = jobs
        self._executor = executor

    @cached_property
    def backend(self) -> "DetectionBackend":
        """The table-construction engine (default: exhaustive).

        ``jobs > 1`` wraps the configured engine in a sharded
        :class:`~repro.parallel.ParallelBackend`; ``executor`` selects
        the shard substrate explicitly (inline / pool / queue) and
        overrides the ``jobs`` sugar (already-parallel engines pass
        through unchanged; internally-parallel ones receive the
        configuration instead of being wrapped).
        """
        if self._backend is not None:
            backend = self._backend
        else:
            from repro.faultsim.backends import ExhaustiveBackend

            backend = ExhaustiveBackend()
        if self._jobs is not None or self._executor is not None:
            from repro.parallel import maybe_parallel, resolve_jobs

            backend = maybe_parallel(
                backend, resolve_jobs(self._jobs), executor=self._executor
            )
        return backend

    @cached_property
    def base_signatures(self) -> list[int]:
        """Fault-free line signatures over the backend's vector universe."""
        return self.backend.line_signatures(self.circuit)

    @cached_property
    def target_faults(self) -> list[StuckAtFault]:
        """``F`` — the collapsed stuck-at fault list."""
        return collapsed_stuck_at_faults(self.circuit)

    @cached_property
    def untargeted_faults(self) -> list[BridgingFault]:
        """Raw four-way bridging universe (before detectability filter)."""
        return four_way_bridging_faults(self.circuit)

    @property
    def _shared_signatures(self) -> list[int] | None:
        """Base signatures shared between the two table builds.

        ``None`` for backends that ignore them (the serial engine), so
        their most expensive step isn't computed just to be discarded.
        """
        if not getattr(self.backend, "needs_base_signatures", True):
            return None
        return self.base_signatures

    @cached_property
    def target_table(self) -> "DetectionTable":
        """Detection table for ``F``."""
        return self.backend.build_stuck_at(
            self.circuit,
            faults=self.target_faults,
            base_signatures=self._shared_signatures,
        )

    @cached_property
    def untargeted_table(self) -> "DetectionTable":
        """Detection table for ``G`` (detectable bridging faults only)."""
        return self.backend.build_bridging(
            self.circuit,
            faults=self.untargeted_faults,
            base_signatures=self._shared_signatures,
            drop_undetectable=True,
        )

    def summary(self) -> dict[str, int]:
        """Size summary for reports: circuit stats plus fault counts."""
        info = dict(self.circuit.stats())
        info["target_faults"] = len(self.target_faults)
        info["untargeted_faults"] = len(self.untargeted_table)
        return info
