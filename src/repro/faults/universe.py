"""The combined fault universe of one analysis run.

:class:`FaultUniverse` bundles a circuit with the paper's two fault sets
and their detection tables:

* ``F`` — collapsed single stuck-at faults (targets of n-detection test
  generation), undetectable members kept (they never constrain a test
  set, matching the paper);
* ``G`` — detectable non-feedback four-way bridging faults between
  outputs of multi-input gates (the untargeted faults the analysis
  evaluates).

Everything is built lazily and cached, so experiments can share one
universe per circuit.
"""

from __future__ import annotations

from __future__ import annotations

from functools import cached_property
from typing import TYPE_CHECKING

from repro.circuit.netlist import Circuit
from repro.faults.bridging import BridgingFault, four_way_bridging_faults
from repro.faults.stuck_at import StuckAtFault, collapsed_stuck_at_faults
from repro.simulation.exhaustive import line_signatures

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see below)
    from repro.faultsim.detection import DetectionTable

# NOTE: repro.faultsim.detection imports the fault dataclasses from this
# package, so the DetectionTable import happens lazily inside the cached
# properties to avoid a circular import at package load time.


class FaultUniverse:
    """Targets ``F``, untargeted ``G``, and their detection tables."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit

    @cached_property
    def base_signatures(self) -> list[int]:
        """Fault-free line signatures over the complete input space."""
        return line_signatures(self.circuit)

    @cached_property
    def target_faults(self) -> list[StuckAtFault]:
        """``F`` — the collapsed stuck-at fault list."""
        return collapsed_stuck_at_faults(self.circuit)

    @cached_property
    def untargeted_faults(self) -> list[BridgingFault]:
        """Raw four-way bridging universe (before detectability filter)."""
        return four_way_bridging_faults(self.circuit)

    @cached_property
    def target_table(self) -> "DetectionTable":
        """Detection table for ``F``."""
        from repro.faultsim.detection import DetectionTable

        return DetectionTable.for_stuck_at(
            self.circuit,
            faults=self.target_faults,
            base_signatures=self.base_signatures,
        )

    @cached_property
    def untargeted_table(self) -> "DetectionTable":
        """Detection table for ``G`` (detectable bridging faults only)."""
        from repro.faultsim.detection import DetectionTable

        return DetectionTable.for_bridging(
            self.circuit,
            faults=self.untargeted_faults,
            base_signatures=self.base_signatures,
            drop_undetectable=True,
        )

    def summary(self) -> dict[str, int]:
        """Size summary for reports: circuit stats plus fault counts."""
        info = dict(self.circuit.stats())
        info["target_faults"] = len(self.target_faults)
        info["untargeted_faults"] = len(self.untargeted_table)
        return info
