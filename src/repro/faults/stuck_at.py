"""Single stuck-at faults and structural collapsing.

A stuck-at fault ``l/a`` fixes line ``l`` to value ``a``.  In normal-form
circuits every fault site is a line (gate inputs are fed by dedicated
lines), so the complete universe is ``2 * |lines|`` faults.

*Equivalence collapsing* merges faults that are indistinguishable by any
test (same faulty function):

* AND gate: s-a-0 on any input ≡ s-a-0 on the output (NAND: ≡ output
  s-a-1), and dually for OR/NOR with s-a-1 inputs;
* NOT/BUF (and single-input AND/OR/...): both input faults map to output
  faults through the gate function;
* a fanout branch is equivalent to its stem only when it is the stem's
  single sink.

Each equivalence class is represented by its member closest to the
primary outputs (maximum logic level, ties broken by maximum lid).  With
declaration order following the paper's line numbering, this reproduces
the collapsed fault list of the paper's Table 1 exactly — including the
fault indices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit, LineKind
from repro.errors import FaultError


@dataclass(frozen=True, slots=True, order=True)
class StuckAtFault:
    """Line ``lid`` stuck at ``value`` (paper notation ``l/a``)."""

    lid: int
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise FaultError(f"stuck value must be 0 or 1, got {self.value!r}")

    def name(self, circuit: Circuit) -> str:
        """Paper-style rendering, e.g. ``9/1``."""
        return f"{circuit.lines[self.lid].name}/{self.value}"


def all_stuck_at_faults(circuit: Circuit) -> list[StuckAtFault]:
    """The uncollapsed universe: every line stuck at 0 and at 1."""
    return [
        StuckAtFault(line.lid, v) for line in circuit.lines for v in (0, 1)
    ]


class _UnionFind:
    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def _fault_index(lid: int, value: int) -> int:
    return lid * 2 + value


def _gate_output_for_input(gate_type: GateType, input_value: int) -> int | None:
    """Output value of a 1-input gate when its input is ``input_value``."""
    if gate_type in (GateType.BUF, GateType.AND, GateType.OR, GateType.XOR):
        return input_value
    if gate_type in (GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR):
        return input_value ^ 1
    return None


def _equivalence_unions(circuit: Circuit, uf: _UnionFind) -> None:
    # A gate-input (or stem) fault is only equivalent to the gate-output
    # fault when the input line is observable *solely* through that gate:
    # a line that is also a primary output is detected directly, so its
    # faults must stay separate (found by property-based testing).
    def observable_only_through_sink(lid: int) -> bool:
        return not circuit.lines[lid].is_output

    for line in circuit.lines:
        if line.kind is LineKind.BRANCH:
            stem = circuit.lines[line.fanin[0]]
            if len(stem.fanout) == 1 and observable_only_through_sink(stem.lid):
                for v in (0, 1):
                    uf.union(
                        _fault_index(stem.lid, v), _fault_index(line.lid, v)
                    )
            continue
        if line.kind is not LineKind.GATE:
            continue
        gt = line.gate_type
        if len(line.fanin) == 1:
            out0 = _gate_output_for_input(gt, 0)
            out1 = _gate_output_for_input(gt, 1)
            src = line.fanin[0]
            if not observable_only_through_sink(src):
                continue
            if out0 is not None:
                uf.union(_fault_index(src, 0), _fault_index(line.lid, out0))
            if out1 is not None:
                uf.union(_fault_index(src, 1), _fault_index(line.lid, out1))
            continue
        c = gt.controlling_value
        if c is None:
            continue  # XOR/XNOR and constants: no structural equivalence
        out = gt.controlled_output
        for src in line.fanin:
            if observable_only_through_sink(src):
                uf.union(_fault_index(src, c), _fault_index(line.lid, out))


def _representative(circuit: Circuit, members: list[StuckAtFault]) -> StuckAtFault:
    """Member closest to the outputs: max level, then max lid."""
    return max(members, key=lambda f: (circuit.level[f.lid], f.lid))


def equivalence_classes(circuit: Circuit) -> list[list[StuckAtFault]]:
    """Partition of the full universe into equivalence classes.

    Classes are ordered by their representative fault; members inside a
    class are sorted by ``(lid, value)``.
    """
    uf = _UnionFind(2 * len(circuit.lines))
    _equivalence_unions(circuit, uf)
    groups: dict[int, list[StuckAtFault]] = {}
    for fault in all_stuck_at_faults(circuit):
        root = uf.find(_fault_index(fault.lid, fault.value))
        groups.setdefault(root, []).append(fault)
    classes = []
    for members in groups.values():
        members.sort()
        classes.append(members)
    classes.sort(key=lambda ms: _rep_key(circuit, ms))
    return classes


def _rep_key(circuit: Circuit, members: list[StuckAtFault]) -> tuple[int, int]:
    rep = _representative(circuit, members)
    return (rep.lid, rep.value)


def collapsed_stuck_at_faults(circuit: Circuit) -> list[StuckAtFault]:
    """Equivalence-collapsed fault list, sorted by ``(lid, value)``.

    This is the paper's target fault set ``F``; on the Figure 1 example it
    reproduces the published fault indices (``f0 = 1/1``, ``f1 = 2/0``, …,
    ``f14 = 11/0``).
    """
    reps = [
        _representative(circuit, members)
        for members in equivalence_classes(circuit)
    ]
    reps.sort()
    return reps


def dominance_collapsed_faults(circuit: Circuit) -> list[StuckAtFault]:
    """Equivalence + gate-level dominance collapsing (ablation extension).

    For an AND gate, any test for an input s-a-1 also detects the output
    s-a-1, so the output fault can be dropped (dually for OR/NAND/NOR).
    Dominance collapsing is *not* used by the paper's analysis — dropping
    dominated faults changes ``F`` and therefore ``nmin`` — it exists for
    the ablation bench.
    """
    keep = {(f.lid, f.value) for f in collapsed_stuck_at_faults(circuit)}
    for line in circuit.lines:
        if line.kind is not LineKind.GATE or len(line.fanin) < 2:
            continue
        c = line.gate_type.controlling_value
        if c is None:
            continue
        non_controlled_out = line.gate_type.controlled_output ^ 1
        dominated = (line.lid, non_controlled_out)
        dominators = [(src, c ^ 1) for src in line.fanin]
        if dominated in keep and all(d in keep for d in dominators):
            keep.discard(dominated)
    faults = [StuckAtFault(lid, v) for (lid, v) in keep]
    faults.sort()
    return faults
