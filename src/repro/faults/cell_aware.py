"""Gate-exhaustive (input-pattern) faults — an alternative untargeted model.

The paper's analysis is deliberately model-agnostic: ``G`` can be any set
of untargeted faults with known detection sets.  Besides the four-way
bridging model it evaluates, this module provides the classic
*gate-exhaustive* surrogate for unmodeled defects (in the spirit of
McCluskey's gate-exhaustive testing): for every multi-input gate and
every input pattern, a fault that flips the gate's output exactly when
its inputs carry that pattern.

A :class:`GateExhaustiveFault` ``(gate, pattern)`` is activated on input
vectors where the gate's fanin lines carry ``pattern`` (MSB = first
fanin); on those vectors the gate output is complemented.  Detection
requires the flip to reach a primary output — same propagation machinery
as the bridging model, so the worst-case / average-case analyses run on
it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.circuit.netlist import Circuit
from repro.errors import FaultError

if TYPE_CHECKING:  # import cycle guard: repro.faultsim imports this package
    from repro.faultsim.detection import DetectionTable


@dataclass(frozen=True, slots=True, order=True)
class GateExhaustiveFault:
    """Output of gate ``lid`` flips when its inputs equal ``pattern``."""

    lid: int
    pattern: int

    def __post_init__(self) -> None:
        if self.pattern < 0:
            raise FaultError("pattern must be non-negative")

    def name(self, circuit: Circuit) -> str:
        line = circuit.lines[self.lid]
        bits = format(self.pattern, f"0{len(line.fanin)}b")
        return f"{line.name}[{bits}]"


def gate_exhaustive_faults(
    circuit: Circuit, max_arity: int = 6
) -> list[GateExhaustiveFault]:
    """All input-pattern faults of multi-input gates (2**arity each).

    Gates wider than ``max_arity`` are skipped — their pattern counts
    explode and the model is normally applied after small-fanin mapping.
    """
    faults = []
    for line in circuit.multi_input_gate_lines():
        arity = len(line.fanin)
        if arity > max_arity:
            continue
        for pattern in range(1 << arity):
            faults.append(GateExhaustiveFault(line.lid, pattern))
    return faults


def gate_exhaustive_detection_signature(
    circuit: Circuit,
    base_signatures: list[int],
    fault: GateExhaustiveFault,
    mask: int,
    cone_order: list[int] | None = None,
) -> int:
    """``T(g)`` for a gate-exhaustive fault (signature over ``U``)."""
    from repro.simulation.exhaustive import (
        detection_signature,
        resimulate_cone,
    )

    line = circuit.lines[fault.lid]
    arity = len(line.fanin)
    if fault.pattern >= (1 << arity):
        raise FaultError(
            f"pattern {fault.pattern} too wide for {arity}-input gate"
        )
    activated = mask
    for pos, src in enumerate(line.fanin):
        want = (fault.pattern >> (arity - 1 - pos)) & 1
        sig = base_signatures[src]
        activated &= sig if want else ~sig & mask
        if not activated:
            return 0
    forced = {fault.lid: base_signatures[fault.lid] ^ activated}
    changed = resimulate_cone(
        circuit, base_signatures, forced, mask, cone_order=cone_order
    )
    return detection_signature(circuit, base_signatures, changed)


def gate_exhaustive_table(
    circuit: Circuit,
    base_signatures: list[int] | None = None,
    max_arity: int = 6,
    drop_undetectable: bool = True,
) -> DetectionTable:
    """Detection table over the gate-exhaustive universe.

    Returns a :class:`repro.faultsim.detection.DetectionTable`, so the
    result plugs directly into :class:`repro.core.WorstCaseAnalysis` and
    :class:`repro.core.AverageCaseAnalysis`.
    """
    from repro.faultsim.detection import DetectionTable
    from repro.logic.bitops import all_ones_mask
    from repro.simulation.exhaustive import line_signatures

    sigs = base_signatures or line_signatures(circuit)
    mask = all_ones_mask(circuit.num_inputs)
    faults = gate_exhaustive_faults(circuit, max_arity=max_arity)
    cone_cache: dict[int, list[int]] = {}
    table = []
    for g in faults:
        cone = cone_cache.get(g.lid)
        if cone is None:
            cone = circuit.fanout_cone_order(g.lid)
            cone_cache[g.lid] = cone
        table.append(
            gate_exhaustive_detection_signature(
                circuit, sigs, g, mask, cone_order=cone
            )
        )
    if drop_undetectable:
        kept = [(g, t) for g, t in zip(faults, table, strict=True) if t]
        faults = [g for g, _ in kept]
        table = [t for _, t in kept]
    return DetectionTable(circuit, list(faults), table)
