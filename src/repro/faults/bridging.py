"""Four-way bridging faults (the paper's untargeted fault model ``G``).

A four-way bridging fault is denoted ``(l1, a1, l2, a2)``: it is
*activated* on input vectors where the fault-free circuit produces
``l1 = a1`` and ``l2 = a2``; on those vectors the faulty circuit has
``l1 = ā1`` (the victim flips), while ``l2`` keeps its value.  The four
faults of a bridge between lines ``A`` and ``B`` are::

    (A, 0, B, 1)   # OR-type bridge observed on A
    (A, 1, B, 0)   # AND-type bridge observed on A
    (B, 0, A, 1)   # OR-type bridge observed on B
    (B, 1, A, 0)   # AND-type bridge observed on B

in exactly this enumeration order — which reproduces the paper's example
indices ``g0 = (9, 0, 10, 1)`` and ``g6 = (11, 0, 9, 1)`` with
``T(g6) = {12}``.

Following the paper, the universe is restricted to *non-feedback* bridges
(neither line in the other's transitive fanout) *between outputs of
multi-input gates*; detectability filtering happens in
:mod:`repro.faultsim` where detection sets are available.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.errors import FaultError


@dataclass(frozen=True, slots=True, order=True)
class BridgingFault:
    """Bridge ``(l1, a1, l2, a2)``: ``l1`` flips when ``l1=a1`` and ``l2=a2``."""

    victim: int
    victim_value: int
    aggressor: int
    aggressor_value: int

    def __post_init__(self) -> None:
        if self.victim_value not in (0, 1) or self.aggressor_value not in (0, 1):
            raise FaultError("bridging activation values must be 0 or 1")
        if self.victim == self.aggressor:
            raise FaultError("bridging fault needs two distinct lines")

    def name(self, circuit: Circuit) -> str:
        """Paper-style rendering, e.g. ``(9,0,10,1)``."""
        v = circuit.lines[self.victim].name
        a = circuit.lines[self.aggressor].name
        return f"({v},{self.victim_value},{a},{self.aggressor_value})"


def bridging_pair_sites(circuit: Circuit) -> list[tuple[int, int]]:
    """Non-feedback pairs of multi-input gate output lines, ``lid``-sorted.

    A pair is *feedback* when either line lies in the transitive fanout of
    the other (the bridge would close a loop); those pairs are excluded,
    as in the paper.
    """
    sites = [ln.lid for ln in circuit.multi_input_gate_lines()]
    fanouts = {lid: circuit.transitive_fanout(lid) for lid in sites}
    pairs = []
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            if b in fanouts[a] or a in fanouts[b]:
                continue
            pairs.append((a, b))
    return pairs


def four_way_bridging_faults(circuit: Circuit) -> list[BridgingFault]:
    """All four-way bridging faults over the non-feedback pair sites.

    The result is *not* filtered for detectability — use
    :meth:`repro.faultsim.detection.DetectionTable.for_bridging` (which
    drops undetectable faults by default) to obtain the paper's ``G``.
    """
    faults = []
    for a, b in bridging_pair_sites(circuit):
        faults.append(BridgingFault(a, 0, b, 1))
        faults.append(BridgingFault(a, 1, b, 0))
        faults.append(BridgingFault(b, 0, a, 1))
        faults.append(BridgingFault(b, 1, a, 0))
    return faults
