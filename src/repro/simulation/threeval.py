"""3-valued (0/1/X) simulation of partially-specified vectors.

Definition 2 of the paper judges whether two tests ``ti`` and ``tj`` are
"sufficiently different" for a fault ``f`` by simulating ``f`` under the
partial vector ``tij`` (specified only where the two tests agree).  That
requires a pessimistic 3-valued simulator: a definite fault effect at an
output under ``tij`` means *every* completion of ``tij`` detects ``f``.

Two engines are provided:

* :func:`simulate_cube` — scalar, one cube, readable reference
  implementation;
* :func:`simulate_cubes_dualrail` — batched: ``W`` cubes are packed into
  dual-rail lane words ``(ones, zeros)`` per line, so one pass over the
  circuit simulates all ``W`` cubes.  This is what makes Definition 2
  affordable inside Procedure 1 (thousands of ``tij`` checks per second).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuit.gate import eval_dualrail, eval_scalar3
from repro.circuit.netlist import Circuit, LineKind
from repro.errors import SimulationError
from repro.logic.cube import Cube
from repro.logic.values import ONE, X, ZERO


def simulate_cube(
    circuit: Circuit,
    cube: Cube,
    forced: dict[int, int] | None = None,
) -> list[int]:
    """Scalar 3-valued simulation of one partial vector.

    Parameters
    ----------
    cube:
        Partially-specified input assignment (width must equal the
        circuit's input count).
    forced:
        Optional ``{lid: 0|1}`` stuck-value injections.

    Returns
    -------
    list[int]
        3-valued value (0/1/X) of every line, indexed by lid.
    """
    if cube.num_inputs != circuit.num_inputs:
        raise SimulationError(
            f"cube width {cube.num_inputs} != circuit inputs "
            f"{circuit.num_inputs}"
        )
    values = [X] * len(circuit.lines)
    for pos, lid in enumerate(circuit.inputs):
        values[lid] = cube.get(pos)
    if forced:
        for lid, val in forced.items():
            if circuit.lines[lid].kind is LineKind.INPUT:
                values[lid] = ONE if val else ZERO
    for lid in circuit.topo_order:
        line = circuit.lines[lid]
        if forced and lid in forced:
            values[lid] = ONE if forced[lid] else ZERO
            continue
        if line.kind is LineKind.BRANCH:
            values[lid] = values[line.fanin[0]]
        else:
            values[lid] = eval_scalar3(
                line.gate_type, [values[f] for f in line.fanin]
            )
    return values


def simulate_cubes_dualrail(
    circuit: Circuit,
    cubes: Sequence[Cube],
    forced: dict[int, int] | None = None,
) -> tuple[list[int], list[int]]:
    """Batched 3-valued simulation: one lane per cube.

    Returns ``(ones, zeros)`` lists indexed by lid; bit ``L`` of
    ``ones[lid]`` means line ``lid`` is definitely 1 under ``cubes[L]``,
    bit ``L`` of ``zeros[lid]`` definitely 0; neither bit set means X.
    """
    p = circuit.num_inputs
    lanes = len(cubes)
    lane_mask = (1 << lanes) - 1
    ones = [0] * len(circuit.lines)
    zeros = [0] * len(circuit.lines)
    # Pack input lanes straight from the cubes' care/value words (this
    # packing loop is on the Definition 2 hot path; per-input accessor
    # calls here measurably dominate small batches).
    in_ones = [0] * p
    in_zeros = [0] * p
    for lane, cube in enumerate(cubes):
        if cube.num_inputs != p:
            raise SimulationError(
                f"cube width {cube.num_inputs} != circuit inputs {p}"
            )
        bit = 1 << lane
        care = cube.care
        value = cube.value
        for j in range(p):
            mask = 1 << (p - 1 - j)
            if care & mask:
                if value & mask:
                    in_ones[j] |= bit
                else:
                    in_zeros[j] |= bit
    for pos, lid in enumerate(circuit.inputs):
        ones[lid] = in_ones[pos]
        zeros[lid] = in_zeros[pos]
    if forced:
        for lid, val in forced.items():
            if circuit.lines[lid].kind is LineKind.INPUT:
                ones[lid] = lane_mask if val else 0
                zeros[lid] = 0 if val else lane_mask
    _eval_lines(circuit, circuit.topo_order, ones, zeros, lane_mask, forced)
    return ones, zeros


def _eval_lines(
    circuit: Circuit,
    order: Sequence[int],
    ones: list[int],
    zeros: list[int],
    lane_mask: int,
    forced: dict[int, int] | None = None,
) -> None:
    """Evaluate the given lines in order (dual-rail, in place).

    The 2-input AND/OR/NAND/NOR cases are inlined — they dominate every
    synthesized netlist and the generic path's list building costs more
    than the logic itself (this is the Definition 2 hot loop).
    """
    from repro.circuit.gate import GateType

    lines = circuit.lines
    AND, OR = GateType.AND, GateType.OR
    NAND, NOR = GateType.NAND, GateType.NOR
    BRANCH = LineKind.BRANCH
    for lid in order:
        line = lines[lid]
        if forced and lid in forced:
            if forced[lid]:
                ones[lid], zeros[lid] = lane_mask, 0
            else:
                ones[lid], zeros[lid] = 0, lane_mask
            continue
        if line.kind is BRANCH:
            src = line.fanin[0]
            ones[lid], zeros[lid] = ones[src], zeros[src]
            continue
        fanin = line.fanin
        gt = line.gate_type
        if len(fanin) == 2:
            a, b = fanin
            if gt is AND:
                ones[lid] = ones[a] & ones[b]
                zeros[lid] = zeros[a] | zeros[b]
                continue
            if gt is OR:
                ones[lid] = ones[a] | ones[b]
                zeros[lid] = zeros[a] & zeros[b]
                continue
            if gt is NAND:
                zeros[lid] = ones[a] & ones[b]
                ones[lid] = zeros[a] | zeros[b]
                continue
            if gt is NOR:
                zeros[lid] = ones[a] | ones[b]
                ones[lid] = zeros[a] & zeros[b]
                continue
        ones[lid], zeros[lid] = eval_dualrail(
            gt,
            [ones[f] for f in fanin],
            [zeros[f] for f in fanin],
            lane_mask,
        )
