"""Logic simulation engines.

Three engines, one value representation each:

``twoval``
    Bit-parallel 2-valued simulation of arbitrary vector batches (one
    lane per vector, packed into Python ints).
``exhaustive``
    Full-input-space simulation: one *signature* per line with bit ``v``
    holding the line's value under input vector ``v``.  This is the
    engine behind the paper's exhaustive analysis over ``U``.
``threeval``
    3-valued (0/1/X) simulation of partially-specified vectors, both
    scalar and batched (dual-rail lane words).  Required by Definition 2.
"""

from repro.simulation.twoval import (
    output_values,
    simulate_batch,
    simulate_vector,
)
from repro.simulation.exhaustive import (
    line_signatures,
    output_response_signatures,
)
from repro.simulation.threeval import (
    simulate_cube,
    simulate_cubes_dualrail,
)

__all__ = [
    "output_values",
    "simulate_batch",
    "simulate_vector",
    "line_signatures",
    "output_response_signatures",
    "simulate_cube",
    "simulate_cubes_dualrail",
]
