"""Exhaustive full-input-space simulation (the analysis substrate).

The paper's analysis is "based on the set ``U`` of all the input vectors
of the circuit".  For a ``p``-input circuit, every line gets a *signature*:
an integer with ``2**p`` bits, bit ``v`` holding the line's fault-free
value under input vector ``v``.  One pass over the topological order
computes all signatures with one bitwise expression per gate.

Signatures are the common currency of this library: detection sets
``T(f)`` are signatures, test sets are signatures, and the worst-case
quantities ``N(f)`` / ``M(g, f)`` are popcounts of signatures.
"""

from __future__ import annotations

from repro.circuit.gate import eval_signature
from repro.circuit.netlist import Circuit, LineKind
from repro.errors import SimulationError
from repro.logic.bitops import (
    MAX_EXHAUSTIVE_INPUTS,
    all_ones_mask,
    input_signature,
)


def line_signatures(circuit: Circuit) -> list[int]:
    """Fault-free signature of every line, indexed by lid.

    Raises :class:`SimulationError` when the circuit has more inputs than
    :data:`~repro.logic.bitops.MAX_EXHAUSTIVE_INPUTS` — use
    :func:`repro.circuit.transform.output_partitions` to split such
    circuits first (the paper's Section 4 recommendation).
    """
    p = circuit.num_inputs
    if p > MAX_EXHAUSTIVE_INPUTS:
        raise SimulationError(
            f"circuit {circuit.name!r} has {p} inputs; exhaustive analysis "
            f"is capped at {MAX_EXHAUSTIVE_INPUTS} (partition the circuit)"
        )
    mask = all_ones_mask(p)
    sigs = [0] * len(circuit.lines)
    for pos, lid in enumerate(circuit.inputs):
        sigs[lid] = input_signature(pos, p)
    for lid in circuit.topo_order:
        line = circuit.lines[lid]
        if line.kind is LineKind.BRANCH:
            sigs[lid] = sigs[line.fanin[0]]
        else:
            sigs[lid] = eval_signature(
                line.gate_type, [sigs[f] for f in line.fanin], mask
            )
    return sigs


def output_response_signatures(circuit: Circuit) -> list[int]:
    """Signatures of the primary outputs only (in output order)."""
    sigs = line_signatures(circuit)
    return [sigs[o] for o in circuit.outputs]


def resimulate_cone(
    circuit: Circuit,
    base_signatures: list[int],
    forced: dict[int, int],
    mask: int,
    cone_order: list[int] | None = None,
) -> dict[int, int]:
    """Event-driven re-simulation after forcing line values.

    Parameters
    ----------
    base_signatures:
        Fault-free signatures (from :func:`line_signatures`).
    forced:
        ``{lid: signature}`` — faulty signatures imposed on fault sites
        (full signatures, so bridging faults can force only the activated
        vectors).
    mask:
        All-ones signature for the circuit's input count.
    cone_order:
        Optional pre-computed topological order of the union of the
        forced lines' fanout cones (callers that sweep many faults per
        site should pass it to avoid recomputation).

    Returns
    -------
    dict[int, int]
        Faulty signature per changed line (fault sites included).  Lines
        absent from the dict kept their fault-free signature.
    """
    changed: dict[int, int] = {}
    for lid, sig in forced.items():
        if sig != base_signatures[lid]:
            changed[lid] = sig
    if not changed:
        return {}
    if cone_order is None:
        cone: set[int] = set()
        for lid in forced:
            cone |= circuit.transitive_fanout(lid)
        cone -= set(forced)
        cone_order = [x for x in circuit.topo_order if x in cone]
    for lid in cone_order:
        if lid in forced:
            continue
        line = circuit.lines[lid]
        if line.kind is LineKind.BRANCH:
            src = line.fanin[0]
            if src in changed:
                new_sig = changed[src]
            else:
                continue
        else:
            if not any(f in changed for f in line.fanin):
                continue
            new_sig = eval_signature(
                line.gate_type,
                [changed.get(f, base_signatures[f]) for f in line.fanin],
                mask,
            )
        if new_sig != base_signatures[lid]:
            changed[lid] = new_sig
        elif lid in changed:  # pragma: no cover - defensive
            del changed[lid]
    return changed


def detection_signature(
    circuit: Circuit,
    base_signatures: list[int],
    changed: dict[int, int],
) -> int:
    """Vectors on which any primary output differs from fault-free.

    This is ``T(f)`` for the fault whose re-simulation produced
    ``changed``.
    """
    det = 0
    for o in circuit.outputs:
        if o in changed:
            det |= base_signatures[o] ^ changed[o]
    return det
