"""Bit-parallel 2-valued logic simulation.

A *batch* of vectors is simulated in one pass: every line carries a lane
word (Python int) whose bit ``L`` is the line's value under the ``L``-th
vector of the batch.  Python's arbitrary-precision integers remove any
fixed lane-count limit — a batch of 10 000 vectors is one simulation.

Vector encoding follows the paper: a decimal vector ``v`` assigns input
``j`` (0-based position in ``circuit.inputs``, position 0 = input 1 of the
paper) the bit ``(v >> (p - 1 - j)) & 1``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuit.gate import eval_signature
from repro.circuit.netlist import Circuit, LineKind
from repro.errors import SimulationError


def _input_lane_words(circuit: Circuit, vectors: Sequence[int]) -> list[int]:
    """Lane word per primary input (index into ``circuit.inputs``).

    The bulk path bit-transposes the whole batch in one vectorized
    ``packbits`` pass and assembles each input's lane word from the
    packed little-endian words — O(K·p/64) word work instead of the
    per-bit O(K·p) Python loop, which is the difference between
    milliseconds and seconds on a 10k-vector batch.  Batches numpy
    cannot pack (numpy missing, zero inputs, or vectors wider than one
    ``uint64``) keep the per-bit loop; both paths produce identical
    words.
    """
    p = circuit.num_inputs
    vectors = list(vectors)
    if 0 < p <= 64:
        from repro.logic.packed import _np

        if _np is not None:
            from repro.simulation.ppsfp import input_lane_matrix

            rows = input_lane_matrix(p, vectors)
            return [
                int.from_bytes(
                    row.astype("<u8", copy=False).tobytes(), "little"
                )
                for row in rows
            ]
    limit = 1 << p
    words = [0] * p
    for lane, v in enumerate(vectors):
        if not 0 <= v < limit:
            raise SimulationError(
                f"vector {v} out of range for {p}-input circuit"
            )
        for j in range(p):
            if (v >> (p - 1 - j)) & 1:
                words[j] |= 1 << lane
    return words


def simulate_batch(
    circuit: Circuit,
    vectors: Sequence[int],
    forced: dict[int, int] | None = None,
) -> list[int]:
    """Simulate a batch of decimal vectors; return lane words per line.

    Parameters
    ----------
    circuit:
        Normal-form circuit.
    vectors:
        Decimal input vectors; lane ``L`` of every returned word
        corresponds to ``vectors[L]``.
    forced:
        Optional ``{lid: 0|1}`` overrides applied after each line's normal
        evaluation — the mechanism used to inject stuck-at faults.

    Returns
    -------
    list[int]
        ``values[lid]`` is the lane word of line ``lid``.
    """
    lane_mask = (1 << len(vectors)) - 1
    input_words = _input_lane_words(circuit, vectors)
    values = [0] * len(circuit.lines)
    for pos, lid in enumerate(circuit.inputs):
        values[lid] = input_words[pos]
    if forced:
        for lid, val in forced.items():
            if circuit.lines[lid].kind is LineKind.INPUT:
                values[lid] = lane_mask if val else 0
    for lid in circuit.topo_order:
        line = circuit.lines[lid]
        if forced and lid in forced:
            values[lid] = lane_mask if forced[lid] else 0
            continue
        if line.kind is LineKind.BRANCH:
            values[lid] = values[line.fanin[0]]
        else:
            values[lid] = eval_signature(
                line.gate_type,
                [values[f] for f in line.fanin],
                lane_mask,
            )
    return values


def simulate_vector(
    circuit: Circuit, vector: int, forced: dict[int, int] | None = None
) -> list[int]:
    """Simulate one decimal vector; return the 0/1 value of every line."""
    words = simulate_batch(circuit, [vector], forced=forced)
    return [w & 1 for w in words]


def output_values(
    circuit: Circuit, vector: int, forced: dict[int, int] | None = None
) -> tuple[int, ...]:
    """The primary-output response to one vector (in output order)."""
    values = simulate_vector(circuit, vector, forced=forced)
    return tuple(values[o] for o in circuit.outputs)


def response_word(
    circuit: Circuit, vectors: Sequence[int]
) -> list[tuple[int, ...]]:
    """Output responses for a batch, one tuple per vector."""
    words = simulate_batch(circuit, vectors)
    out = []
    for lane in range(len(vectors)):
        out.append(
            tuple((words[o] >> lane) & 1 for o in circuit.outputs)
        )
    return out
