"""Parallel-pattern single-fault-propagation (PPSFP) kernel.

The classic fault-simulation speedup: instead of simulating one input
vector at a time, pack a *batch* of vectors into machine words — bit
``i`` of every word is the value under vector ``i`` — and evaluate each
gate once per word with bitwise ops.  The big-int engines of this
library (:mod:`repro.simulation.exhaustive`,
:mod:`repro.simulation.twoval`) already work that way at the Python
level; what they cannot escape is the *per-fault, per-gate interpreter
overhead* of the event-driven cone re-simulation, which profiles show
dominating every detection-table build.

This kernel removes that overhead along two axes at once:

* **patterns** — a universe of ``K`` vectors is ``ceil(K / 64)``
  ``numpy.uint64`` words per line (the exact layout of
  :class:`repro.logic.packed.PackedSignatureMatrix`: bit ``i`` lives in
  word ``i // 64`` at in-word position ``i % 64``, little-endian
  words);
* **faults** — a *batch* of ``B`` faults is simulated in one
  event-driven pass over the union of their fanout cones, every line
  carrying a ``(B, W)`` word block, so each cone gate costs one
  vectorized numpy op for all ``B`` faults instead of ``B`` Python-int
  expressions.

The result is a detection table that is *born packed*: the kernel
returns a :class:`~repro.logic.packed.PackedSignatureMatrix` whose rows
are the faults' detection signatures, bit-identical to what the big-int
engines compute (certified by the differential suite — see
``tests/test_ppsfp_differential.py``), with no bigint→packed conversion
on the table hot path.

Semantics mirror the big-int engines exactly:

* fault-free *base* words come from the same boolean gate functions
  (:func:`repro.circuit.gate.eval_signature`'s semantics, lifted to
  word blocks) over the same bit ↔ vector mapping the universe
  declares;
* a stuck-at fault forces its site's whole word block to 0/1 *after*
  normal evaluation (inputs, branches, and gates alike — the
  ``forced``-after-evaluation override of
  :func:`repro.simulation.twoval.simulate_batch`);
* a four-way bridging fault activates on fault-free ``l1 = a1 ∧ l2 =
  a2`` and forces the victim's value to flip on exactly the activated
  vectors; a fault activated nowhere detects nothing;
* detection is any primary output differing from fault-free, i.e. the
  OR over outputs of ``faulty XOR base``.

``REPRO_PPSFP=0`` disables the kernel (every caller falls back to the
big-int path — the escape hatch the differential benchmarks use to
time both engines); ``REPRO_PPSFP_MAX_WORDS`` bounds the universes the
kernel accepts (very wide exhaustive universes stay on the big-int
closed-form path, whose whole-signature ops are already C-speed).

Future direction (see ROADMAP): the same word-block layout extends to a
5-valued (0/1/X/D/D') encoding with two words per line per value-plane,
which would let this kernel serve :mod:`repro.faultsim.threeval_detect`
and the ATPG engines à la the multi-valued logic of the related
auto-test-pattern-generation work.
"""

from __future__ import annotations

import os
from functools import reduce
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections.abc import Iterable, Sequence

    import numpy as np
    from numpy.typing import NDArray

    from repro.faults.bridging import BridgingFault
    from repro.faults.stuck_at import StuckAtFault
    from repro.logic.packed import U64Array

    IntpArray = NDArray[np.intp]

from repro import obs
from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit, LineKind
from repro.errors import SimulationError
from repro.faultsim.sampling import VectorUniverse
from repro.logic.bitops import input_signature
from repro.logic.packed import (
    _np,
    WORD_BITS,
    PackedSignatureMatrix,
    pack_signature,
    words_for,
)

#: Universes wider than this many 64-bit words stay on the big-int path
#: (override with ``REPRO_PPSFP_MAX_WORDS``).  4096 words = a 2**18-bit
#: exhaustive universe; big-int whole-signature ops are C-speed memcpys
#: at that scale, while the kernel's per-fault row blocks would not be.
DEFAULT_MAX_WORDS = 4096

#: Per-line word budget for one fault batch: the batch row count is
#: ``min(MAX_BATCH_ROWS, BATCH_WORD_BUDGET // words_per_row)``.  The
#: budget keeps each per-line ``(B, W)`` block around 64 KiB — big
#: enough to amortize numpy dispatch, small enough to stay cache-warm.
BATCH_WORD_BUDGET = 1 << 13
MAX_BATCH_ROWS = 1024


def kernel_enabled() -> bool:
    """Whether the PPSFP kernel may be used in this process."""
    return _np is not None and os.environ.get("REPRO_PPSFP", "1") != "0"


def _max_words() -> int:
    raw = os.environ.get("REPRO_PPSFP_MAX_WORDS")
    return int(raw) if raw else DEFAULT_MAX_WORDS


def kernel_supports(universe: VectorUniverse) -> bool:
    """Whether the kernel handles this universe (enabled + word cap)."""
    return kernel_enabled() and words_for(universe.size) <= _max_words()


def batch_rows_for(num_words: int) -> int:
    """Fault rows per batch: bounded by the per-line word budget."""
    return max(1, min(MAX_BATCH_ROWS, BATCH_WORD_BUDGET // max(1, num_words)))


# ----------------------------------------------------------------------
# Word-block gate evaluation (eval_signature lifted to uint64 blocks)
# ----------------------------------------------------------------------
#: Gates whose single-input evaluation returns the input array itself
#: (``reduce`` over one element) — consumers must not mutate in place.
_IDENTITY_WHEN_UNARY = (GateType.AND, GateType.OR, GateType.XOR)


def _invert(block: U64Array, mask: U64Array) -> U64Array:
    """``~block`` bounded to the universe's bit width.

    ``mask`` words are all-ones except (possibly) the final, partial
    word, so the complement only needs the final word clipped — a
    strided scalar op instead of a second full-array ``&`` pass.
    Always returns a fresh array (``~`` allocates).
    """
    out = ~block
    out[..., -1:] &= mask[-1:]
    return out


def eval_words(
    gate_type: GateType, inputs: list[U64Array], mask: U64Array
) -> U64Array:
    """Evaluate a gate over ``uint64`` word blocks.

    ``inputs`` are arrays of shape ``(W,)`` or ``(B, W)`` (numpy
    broadcasting mixes them); ``mask`` is the universe's all-ones word
    row, bounding the complement for inverting gates exactly like the
    big-int engine's ``mask`` argument.  The returned array may alias an
    input (BUF) — callers treat word blocks as immutable.
    """
    gt = gate_type
    if gt is GateType.CONST0:
        return _np.zeros_like(mask)
    if gt is GateType.CONST1:
        return mask.copy()
    if not inputs:
        raise SimulationError(f"{gt.name} gate evaluated with no inputs")
    if gt is GateType.BUF:
        return inputs[0]
    if gt is GateType.NOT:
        return _invert(inputs[0], mask)
    if gt is GateType.AND:
        return reduce(_np.bitwise_and, inputs)
    if gt is GateType.NAND:
        return _invert(reduce(_np.bitwise_and, inputs), mask)
    if gt is GateType.OR:
        return reduce(_np.bitwise_or, inputs)
    if gt is GateType.NOR:
        return _invert(reduce(_np.bitwise_or, inputs), mask)
    if gt is GateType.XOR:
        return reduce(_np.bitwise_xor, inputs)
    if gt is GateType.XNOR:
        return _invert(reduce(_np.bitwise_xor, inputs), mask)
    raise SimulationError(f"unknown gate type: {gt!r}")


# ----------------------------------------------------------------------
# Base (fault-free) simulation, word-parallel
# ----------------------------------------------------------------------
def input_lane_matrix(num_inputs: int, vectors: Iterable[int]) -> U64Array:
    """Bulk bit-transpose: vectors → per-input lane word rows.

    Returns a ``(num_inputs, words_for(len(vectors)))`` ``uint64`` array;
    bit ``L`` of row ``j`` is input ``j``'s value under ``vectors[L]``
    (input 0 = the *most* significant bit of the decimal vector, the
    paper's input 1).  Equivalent to
    :func:`repro.simulation.twoval._input_lane_words`, vectorized.
    Inputs are limited to 64 bits per vector (``num_inputs <= 64``) —
    wider circuits use the big-int path.
    """
    if num_inputs > 64:
        raise SimulationError(
            f"input_lane_matrix packs vectors into uint64 and is capped "
            f"at 64 inputs (got {num_inputs})"
        )
    vectors = list(vectors)
    num_words = words_for(len(vectors))
    out = _np.zeros((num_inputs, num_words), dtype=_np.uint64)
    if not vectors or not num_inputs:
        return out
    limit = 1 << num_inputs
    if min(vectors) < 0 or max(vectors) >= limit:
        bad = next(v for v in vectors if not 0 <= v < limit)
        raise SimulationError(
            f"vector {bad} out of range for {num_inputs}-input circuit"
        )
    arr = _np.asarray(vectors, dtype=_np.uint64)
    shifts = _np.arange(num_inputs - 1, -1, -1, dtype=_np.uint64)
    bits = ((arr[None, :] >> shifts[:, None]) & _np.uint64(1)).astype(
        _np.uint8
    )
    packed = _np.packbits(bits, axis=1, bitorder="little")
    row_bytes = num_words * (WORD_BITS // 8)
    if packed.shape[1] < row_bytes:
        packed = _np.concatenate(
            [
                packed,
                _np.zeros(
                    (num_inputs, row_bytes - packed.shape[1]),
                    dtype=_np.uint8,
                ),
            ],
            axis=1,
        )
    out[:] = _np.ascontiguousarray(packed).view("<u8").astype(
        _np.uint64, copy=False
    )
    return out


def packed_line_words(
    circuit: Circuit, universe: VectorUniverse
) -> U64Array:
    """Fault-free word blocks of every line: a ``(lines, W)`` array.

    Bit ``i`` of row ``lid`` is line ``lid``'s value under the
    universe's ``i``-th vector — the packed twin of
    :func:`repro.faultsim.detection.universe_line_signatures`, computed
    directly in word space (no big-int intermediate).
    """
    size = universe.size
    num_words = words_for(size)
    mask = pack_signature(universe.mask, size)
    base = _np.zeros((len(circuit.lines), num_words), dtype=_np.uint64)
    p = circuit.num_inputs
    if universe.exhaustive:
        for pos, lid in enumerate(circuit.inputs):
            base[lid] = pack_signature(input_signature(pos, p), size)
    else:
        rows = input_lane_matrix(p, universe.vectors)
        for pos, lid in enumerate(circuit.inputs):
            base[lid] = rows[pos]
    for lid in circuit.topo_order:
        line = circuit.lines[lid]
        if line.kind is LineKind.BRANCH:
            base[lid] = base[line.fanin[0]]
        else:
            base[lid] = eval_words(
                line.gate_type, [base[f] for f in line.fanin], mask
            )
    return base


# ----------------------------------------------------------------------
# The kernel: batched event-driven fanout-cone re-simulation
# ----------------------------------------------------------------------
class PackedSimulator:
    """Word-parallel simulator for one circuit over one universe.

    Holds the fault-free base word blocks and a fanout-cone cache;
    :meth:`detection_rows` is the batched PPSFP pass.  ``base_words``
    may be supplied (e.g. packed from precomputed big-int line
    signatures, which is exact) to skip the base simulation.
    """

    def __init__(
        self,
        circuit: Circuit,
        universe: VectorUniverse,
        base_words: U64Array | None = None,
    ) -> None:
        if _np is None:  # pragma: no cover - numpy-less installs
            raise SimulationError(
                "the PPSFP kernel requires numpy, which is not installed"
            )
        if universe.num_inputs != circuit.num_inputs:
            raise SimulationError(
                "universe and circuit disagree on the input count"
            )
        self.circuit = circuit
        self.universe = universe
        self.size = universe.size
        self.num_words = words_for(self.size)
        self.mask_row = pack_signature(universe.mask, self.size)
        if base_words is None:
            base_words = packed_line_words(circuit, universe)
        self.base = base_words
        # Per-line fanout cones as line-id bitsets: unioning the cones
        # of a whole fault batch is a handful of C-speed big-int ORs.
        self._cone_masks = circuit.fanout_masks()

    def base_matrix(self) -> PackedSignatureMatrix:
        """The base word blocks as a packed matrix (one row per line)."""
        return PackedSignatureMatrix(self.base.copy(), self.size)

    def detection_rows(
        self, sites: Sequence[int], forced: U64Array
    ) -> U64Array:
        """Detection word rows for a batch of single faults.

        Parameters
        ----------
        sites:
            Fault-site lid per batch row (length ``B``).
        forced:
            ``(B, W)`` ``uint64`` array; row ``r`` is the full word
            block forced onto line ``sites[r]`` (applied *after* normal
            evaluation, like the big-int engines' ``forced`` override —
            the site keeps the forced value even when re-evaluation
            would produce something else).

        Returns
        -------
        ``(B, W)`` ``uint64`` array: row ``r`` is fault ``r``'s
        detection signature (OR over outputs of ``faulty XOR base``).

        One event-driven pass over the union of the sites' fanout cones
        serves the whole batch: a line is re-evaluated only when some
        fanin changed for *some* row; rows outside a line's own fault
        cone simply carry base values through and contribute no
        detection bits.  Callers should group same-site rows
        contiguously (the table builders' cone-locality order does) —
        forcing then degenerates to slice assignment.
        """
        circuit = self.circuit
        base = self.base
        num_words = self.num_words
        num_rows = len(sites)
        if forced.shape != (num_rows, num_words):
            raise SimulationError(
                f"forced block shape {forced.shape} does not match "
                f"({num_rows}, {num_words})"
            )
        # Contiguous same-site runs; arbitrary row orders still work —
        # they just produce more runs per site.
        runs_at: dict[int, list[tuple[int, int]]] = {}
        r = 0
        while r < num_rows:
            lid = sites[r]
            start = r
            r += 1
            while r < num_rows and sites[r] == lid:
                r += 1
            runs_at.setdefault(lid, []).append((start, r))
        cone_masks = self._cone_masks
        union = 0
        for lid in runs_at:
            union |= cone_masks[lid] | (1 << lid)
        touched = union.to_bytes((len(circuit.lines) + 7) // 8, "little")

        def force_site(
            lid: int, out: U64Array | None, fresh: bool
        ) -> U64Array:
            # The forced override happens *after* normal evaluation; a
            # block that aliases another line's (or the base's) words
            # must be copied before rows are overwritten.
            if out is None:
                out = _np.broadcast_to(
                    base[lid], (num_rows, num_words)
                ).copy()
            elif not fresh:
                out = out.copy()
            for a, b in runs_at[lid]:
                out[a:b] = forced[a:b]
            return out

        vals: dict[int, U64Array] = {}
        # Input fault sites are fanin-less and absent from topo_order;
        # seed them before the walk.
        for lid in runs_at:
            if circuit.lines[lid].kind is LineKind.INPUT:
                vals[lid] = force_site(lid, None, False)
        for lid in circuit.topo_order:
            if not touched[lid >> 3] >> (lid & 7) & 1:
                continue
            line = circuit.lines[lid]
            is_site = lid in runs_at
            if line.kind is LineKind.BRANCH:
                out = vals.get(line.fanin[0])
                if out is None and not is_site:
                    continue
                fresh = False  # aliases the stem's block
            else:
                fanin = line.fanin
                if any(f in vals for f in fanin):
                    gt = line.gate_type
                    out = eval_words(
                        gt,
                        [vals[f] if f in vals else base[f] for f in fanin],
                        self.mask_row,
                    )
                    # eval_words allocates except for identity-like
                    # cases, which return the lone input unchanged.
                    fresh = not (
                        gt is GateType.BUF
                        or (len(fanin) == 1 and gt in _IDENTITY_WHEN_UNARY)
                    )
                elif not is_site:
                    continue
                else:
                    out = None
                    fresh = False
            if is_site:
                out = force_site(lid, out, fresh)
            vals[lid] = out
        det = _np.zeros((num_rows, num_words), dtype=_np.uint64)
        for o in circuit.outputs:
            block = vals.get(o)
            if block is not None:
                det |= block ^ base[o]
        return det


# ----------------------------------------------------------------------
# Table builders (the backends' kernel entry points)
# ----------------------------------------------------------------------
def _simulator(
    circuit: Circuit,
    universe: VectorUniverse,
    base_signatures: list[int] | None,
) -> PackedSimulator:
    base_words = None
    if base_signatures is not None:
        base_words = PackedSignatureMatrix.from_bigints(
            base_signatures, universe.size
        ).words
    return PackedSimulator(circuit, universe, base_words=base_words)


def _cone_locality_order(
    circuit: Circuit, sites: IntpArray | Sequence[int]
) -> IntpArray:
    """Stable fault permutation grouping cone-similar fault sites.

    A batch's cost is driven by the *union* of its sites' fanout cones,
    so batching faults whose cones overlap keeps the union close to the
    individual cones.  Sites are ranked by their cone bitset (sites
    reaching the same circuit region sort together — on multi-cone
    circuits this effectively groups by observing-output profile) and
    faults are stably sorted by site rank, preserving table-adjacent
    ordering within a site.  Returns an index permutation; callers
    scatter results back so the matrix stays in table order.
    """
    masks = circuit.fanout_masks()
    distinct = sorted({int(s) for s in sites})
    rank_of = {
        s: r
        for r, s in enumerate(sorted(distinct, key=lambda s: (masks[s], s)))
    }
    ranks = _np.fromiter(
        (rank_of[int(s)] for s in sites), dtype=_np.intp, count=len(sites)
    )
    return _np.argsort(ranks, kind="stable")


def _observe_kernel(
    kind: str, faults: int, words: int, batches: int, seconds: float
) -> None:
    """Kernel throughput telemetry, once per matrix (not per batch).

    Counters accumulate faults/batches/word-ops per fault kind; the
    derived faults-per-second rate lives in ``repro_ppsfp_seconds_total``
    vs ``repro_ppsfp_faults_total`` so scrapes can compute it over any
    window.
    """
    registry = obs.metrics()
    registry.counter(
        "repro_ppsfp_faults_total",
        help="Faults simulated by the PPSFP kernel",
        kind=kind,
    ).inc(faults)
    registry.counter(
        "repro_ppsfp_batches_total",
        help="Fault batches evaluated by the PPSFP kernel",
        kind=kind,
    ).inc(batches)
    registry.counter(
        "repro_ppsfp_words_total",
        help="Signature words per fault row in kernel matrices",
        kind=kind,
    ).inc(faults * words)
    registry.counter(
        "repro_ppsfp_seconds_total",
        help="Wall seconds spent inside PPSFP matrix builds",
        kind=kind,
    ).inc(seconds)


def stuck_at_matrix(
    circuit: Circuit,
    universe: VectorUniverse,
    faults: Sequence[StuckAtFault],
    base_signatures: list[int] | None = None,
    batch_rows: int | None = None,
) -> PackedSignatureMatrix:
    """Packed detection matrix for a stuck-at fault list (table order)."""
    sim = _simulator(circuit, universe, base_signatures)
    num_words = sim.num_words
    if batch_rows is None:
        batch_rows = batch_rows_for(num_words)
    num = len(faults)
    sites_arr = _np.fromiter(
        (f.lid for f in faults), dtype=_np.intp, count=num
    )
    values = _np.fromiter((f.value for f in faults), dtype=bool, count=num)
    order = _cone_locality_order(circuit, sites_arr)
    out = _np.zeros((num, num_words), dtype=_np.uint64)
    clock = obs.system_clock()
    started = clock.monotonic()
    batches = 0
    with obs.span(
        "ppsfp_matrix", kind="stuck_at", faults=num, words=num_words
    ) as kernel_span:
        for start in range(0, num, batch_rows):
            idx = order[start : start + batch_rows]
            sites = sites_arr[idx].tolist()
            forced = _np.where(
                values[idx][:, None], sim.mask_row, _np.uint64(0)
            )
            out[idx] = sim.detection_rows(sites, forced)
            batches += 1
        kernel_span.set(batches=batches)
    _observe_kernel(
        "stuck_at", num, num_words, batches, clock.monotonic() - started
    )
    return PackedSignatureMatrix(out, universe.size)


def bridging_matrix(
    circuit: Circuit,
    universe: VectorUniverse,
    faults: Sequence[BridgingFault],
    base_signatures: list[int] | None = None,
    batch_rows: int | None = None,
) -> PackedSignatureMatrix:
    """Packed detection matrix for a four-way bridging fault list."""
    sim = _simulator(circuit, universe, base_signatures)
    num_words = sim.num_words
    base = sim.base
    mask = sim.mask_row
    zero_row = _np.zeros(num_words, dtype=_np.uint64)
    if batch_rows is None:
        batch_rows = batch_rows_for(num_words)
    num = len(faults)
    victims = _np.fromiter(
        (g.victim for g in faults), dtype=_np.intp, count=num
    )
    aggressors = _np.fromiter(
        (g.aggressor for g in faults), dtype=_np.intp, count=num
    )
    vv = _np.fromiter(
        (g.victim_value for g in faults), dtype=bool, count=num
    )
    av = _np.fromiter(
        (g.aggressor_value for g in faults), dtype=bool, count=num
    )
    order = _cone_locality_order(circuit, victims)
    out = _np.zeros((num, num_words), dtype=_np.uint64)
    clock = obs.system_clock()
    started = clock.monotonic()
    batches = 0
    with obs.span(
        "ppsfp_matrix", kind="bridging", faults=num, words=num_words
    ) as kernel_span:
        for start in range(0, num, batch_rows):
            idx = order[start : start + batch_rows]
            s1 = base[victims[idx]]
            s2 = base[aggressors[idx]]
            # value-true means "activates on the line's 1s": matching
            # bits are the signature itself, else its masked complement
            # — written as XOR with a per-row flip word (0 or the
            # all-ones mask row).
            m1 = s1 ^ _np.where(vv[idx][:, None], zero_row, mask)
            m2 = s2 ^ _np.where(av[idx][:, None], zero_row, mask)
            activated = m1 & m2
            live = _np.nonzero(activated.any(axis=1))[0]
            batches += 1
            if live.size == 0:
                continue  # nowhere activated: detection rows stay zero
            forced = (s1 ^ activated)[live]
            sites = victims[idx[live]].tolist()
            det = sim.detection_rows(sites, forced)
            out[idx[live]] = det
        kernel_span.set(batches=batches)
    _observe_kernel(
        "bridging", num, num_words, batches, clock.monotonic() - started
    )
    return PackedSignatureMatrix(out, universe.size)


def try_stuck_at_matrix(
    circuit: Circuit,
    universe: VectorUniverse,
    faults: Sequence[StuckAtFault],
    base_signatures: list[int] | None = None,
) -> PackedSignatureMatrix | None:
    """Kernel-built stuck-at matrix, or None when the kernel is off."""
    if not kernel_supports(universe):
        return None
    return stuck_at_matrix(
        circuit, universe, faults, base_signatures=base_signatures
    )


def try_bridging_matrix(
    circuit: Circuit,
    universe: VectorUniverse,
    faults: Sequence[BridgingFault],
    base_signatures: list[int] | None = None,
) -> PackedSignatureMatrix | None:
    """Kernel-built bridging matrix, or None when the kernel is off."""
    if not kernel_supports(universe):
        return None
    return bridging_matrix(
        circuit, universe, faults, base_signatures=base_signatures
    )
