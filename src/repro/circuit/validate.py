"""Structural validation of circuits (normal-form and connectivity checks).

:func:`validate_circuit` returns a list of human-readable issue strings;
an empty list means the circuit is well-formed.  ``strict=True`` raises
:class:`~repro.errors.CircuitError` on the first batch of issues instead.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit, LineKind
from repro.errors import CircuitError


def validate_circuit(circuit: Circuit, strict: bool = False) -> list[str]:
    """Check normal form, connectivity, and arity of a circuit.

    Checks performed:

    * fanin/fanout cross-consistency (each edge recorded on both sides);
    * gate arities are legal for the gate type;
    * BRANCH lines have exactly one stem and at most one sink;
    * no line feeds more than one gate input directly (normal form);
    * a stem with explicit branches has no direct gate sinks;
    * inputs have no fanin; gates/branches have fanin;
    * every line except primary outputs reaches at least one sink
      (dangling lines are reported);
    * declared inputs/outputs exist with the right kinds.
    """
    issues: list[str] = []
    n = len(circuit.lines)

    for line in circuit.lines:
        # Kind-specific shape.
        if line.kind is LineKind.INPUT:
            if line.fanin:
                issues.append(f"input {line.name!r} has fanin")
            if line.gate_type is not None:
                issues.append(f"input {line.name!r} carries a gate type")
        elif line.kind is LineKind.GATE:
            if line.gate_type is None:
                issues.append(f"gate line {line.name!r} has no gate type")
            else:
                try:
                    line.gate_type.check_arity(len(line.fanin))
                except CircuitError as exc:
                    issues.append(f"gate {line.name!r}: {exc}")
        elif line.kind is LineKind.BRANCH:
            if len(line.fanin) != 1:
                issues.append(
                    f"branch {line.name!r} has {len(line.fanin)} stems"
                )
            if len(line.fanout) > 1:
                issues.append(
                    f"branch {line.name!r} drives {len(line.fanout)} sinks"
                )
            if line.fanin and circuit.lines[line.fanin[0]].kind is LineKind.BRANCH:
                issues.append(f"branch {line.name!r} stems from a branch")

        # Edge consistency.
        for src in line.fanin:
            if not 0 <= src < n:
                issues.append(f"line {line.name!r} fanin id {src} out of range")
            elif line.lid not in circuit.lines[src].fanout:
                issues.append(
                    f"edge {circuit.lines[src].name!r}->{line.name!r} missing "
                    "from source fanout"
                )
        for dst in line.fanout:
            if not 0 <= dst < n:
                issues.append(f"line {line.name!r} fanout id {dst} out of range")
            elif line.lid not in circuit.lines[dst].fanin:
                issues.append(
                    f"edge {line.name!r}->{circuit.lines[dst].name!r} missing "
                    "from sink fanin"
                )

        # Normal form: at most one direct gate sink unless all sinks are
        # branches.
        gate_sinks = [
            d for d in line.fanout
            if circuit.lines[d].kind is not LineKind.BRANCH
        ]
        branch_sinks = [
            d for d in line.fanout
            if circuit.lines[d].kind is LineKind.BRANCH
        ]
        if branch_sinks and gate_sinks:
            issues.append(
                f"line {line.name!r} mixes branch and direct gate sinks"
            )
        if len(gate_sinks) > 1:
            issues.append(
                f"line {line.name!r} feeds {len(gate_sinks)} gate inputs "
                "directly (not in normal form)"
            )

        # Dangling lines.
        if not line.fanout and not line.is_output:
            issues.append(f"line {line.name!r} is dangling (no sink, not PO)")

    input_set = set(circuit.inputs)
    for lid in circuit.inputs:
        if circuit.lines[lid].kind is not LineKind.INPUT:
            issues.append(f"declared input {circuit.lines[lid].name!r} is not INPUT")
    for line in circuit.lines:
        if line.kind is LineKind.INPUT and line.lid not in input_set:
            issues.append(f"INPUT line {line.name!r} missing from input list")
    for lid in circuit.outputs:
        if not circuit.lines[lid].is_output:
            issues.append(
                f"declared output {circuit.lines[lid].name!r} lacks output flag"
            )

    if strict and issues:
        raise CircuitError(
            f"circuit {circuit.name!r} failed validation:\n  " + "\n  ".join(issues)
        )
    return issues
