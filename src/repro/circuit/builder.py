"""Fluent construction of :class:`~repro.circuit.netlist.Circuit` objects.

The builder accepts gates in any order (forward references allowed),
resolves names at :meth:`CircuitBuilder.build` time, optionally inserts
fanout branch lines to reach normal form, and returns an immutable
:class:`Circuit`.

Example — the paper's Figure 1 circuit with its exact line numbering::

    b = CircuitBuilder("paper_example")
    for name in "1234":
        b.input(name)
    b.branch("5", of="2")
    b.branch("6", of="2")
    b.branch("7", of="3")
    b.branch("8", of="3")
    b.gate("9", GateType.AND, ["1", "5"])
    b.gate("10", GateType.AND, ["6", "7"])
    b.gate("11", GateType.OR, ["8", "4"])
    for name in ("9", "10", "11"):
        b.output(name)
    circuit = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit, Line, LineKind
from repro.errors import CircuitError


@dataclass
class _PendingLine:
    name: str
    kind: LineKind
    gate_type: GateType | None = None
    fanin_names: list[str] = field(default_factory=list)
    stem_name: str | None = None


class CircuitBuilder:
    """Accumulates lines and produces a normal-form :class:`Circuit`."""

    def __init__(self, name: str):
        if not name:
            raise CircuitError("circuit name must be non-empty")
        self.name = name
        self._pending: dict[str, _PendingLine] = {}
        self._order: list[str] = []
        self._input_order: list[str] = []
        self._output_order: list[str] = []

    # ------------------------------------------------------------------
    # Declaration API
    # ------------------------------------------------------------------
    def _declare(self, pending: _PendingLine) -> str:
        if pending.name in self._pending:
            raise CircuitError(f"duplicate line name: {pending.name!r}")
        if not pending.name:
            raise CircuitError("line name must be non-empty")
        self._pending[pending.name] = pending
        self._order.append(pending.name)
        return pending.name

    def input(self, name: str) -> str:
        """Declare a primary input line."""
        self._input_order.append(name)
        return self._declare(_PendingLine(name, LineKind.INPUT))

    def gate(
        self, name: str, gate_type: GateType, fanin: list[str] | tuple[str, ...]
    ) -> str:
        """Declare a gate whose output line is ``name``."""
        gate_type.check_arity(len(fanin))
        return self._declare(
            _PendingLine(
                name, LineKind.GATE, gate_type=gate_type, fanin_names=list(fanin)
            )
        )

    def const(self, name: str, value: int) -> str:
        """Declare a constant line (value 0 or 1)."""
        if value not in (0, 1):
            raise CircuitError(f"constant value must be 0 or 1, got {value!r}")
        gt = GateType.CONST1 if value else GateType.CONST0
        return self._declare(_PendingLine(name, LineKind.GATE, gate_type=gt))

    def branch(self, name: str, of: str) -> str:
        """Declare an explicit fanout branch of stem line ``of``."""
        return self._declare(_PendingLine(name, LineKind.BRANCH, stem_name=of))

    def output(self, name: str) -> None:
        """Mark a (possibly not yet declared) line as a primary output."""
        if name in self._output_order:
            raise CircuitError(f"line {name!r} already marked as output")
        self._output_order.append(name)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, auto_branch: bool = True) -> Circuit:
        """Resolve names, normalize fanout, and freeze the circuit.

        Parameters
        ----------
        auto_branch:
            When True (default), a line that directly feeds more than one
            gate input gets one inserted BRANCH line per sink (named
            ``<stem>~<k>``).  When False such a line raises
            :class:`CircuitError`.
        """
        self._check_references()
        self._normalize_fanout(auto_branch)
        return self._freeze()

    def _check_references(self) -> None:
        for p in self._pending.values():
            for ref in p.fanin_names:
                if ref not in self._pending:
                    raise CircuitError(
                        f"gate {p.name!r} references undeclared line {ref!r}"
                    )
            if p.kind is LineKind.BRANCH:
                stem = self._pending.get(p.stem_name or "")
                if stem is None:
                    raise CircuitError(
                        f"branch {p.name!r} references undeclared stem "
                        f"{p.stem_name!r}"
                    )
                if stem.kind is LineKind.BRANCH:
                    raise CircuitError(
                        f"branch {p.name!r} stems from branch {stem.name!r}; "
                        "branches of branches are not allowed"
                    )
        for name in self._output_order:
            if name not in self._pending:
                raise CircuitError(f"output {name!r} is not a declared line")
        if not self._input_order:
            raise CircuitError(f"circuit {self.name!r} has no inputs")
        if not self._output_order:
            raise CircuitError(f"circuit {self.name!r} has no outputs")

    def _direct_gate_sinks(self) -> dict[str, list[tuple[str, int]]]:
        """Map line name -> [(gate name, fanin position)] for direct feeds."""
        sinks: dict[str, list[tuple[str, int]]] = {n: [] for n in self._pending}
        for p in self._pending.values():
            source_names = p.fanin_names if p.kind is LineKind.GATE else (
                [p.stem_name] if p.kind is LineKind.BRANCH else []
            )
            for pos, src in enumerate(source_names):
                sinks[src].append((p.name, pos))
        return sinks

    def _normalize_fanout(self, auto_branch: bool) -> None:
        sinks = self._direct_gate_sinks()
        for name in list(self._order):
            p = self._pending[name]
            consumer_entries = sinks[name]
            branch_children = [
                c for c, _pos in consumer_entries
                if self._pending[c].kind is LineKind.BRANCH
            ]
            gate_children = [
                (c, pos) for c, pos in consumer_entries
                if self._pending[c].kind is not LineKind.BRANCH
            ]
            if branch_children and gate_children:
                raise CircuitError(
                    f"line {name!r} drives both explicit branches "
                    f"({branch_children}) and direct gate inputs "
                    f"({[c for c, _ in gate_children]}); route all sinks "
                    "through branches"
                )
            if p.kind is LineKind.BRANCH and len(consumer_entries) > 1:
                raise CircuitError(
                    f"branch {name!r} drives {len(consumer_entries)} sinks; "
                    "a branch must feed exactly one gate input"
                )
            if len(gate_children) > 1:
                if not auto_branch:
                    raise CircuitError(
                        f"line {name!r} drives {len(gate_children)} gate "
                        "inputs without explicit branches "
                        "(pass auto_branch=True to insert them)"
                    )
                for k, (consumer, pos) in enumerate(gate_children):
                    branch_name = f"{name}~{k}"
                    while branch_name in self._pending:
                        branch_name += "'"
                    self._declare(
                        _PendingLine(
                            branch_name, LineKind.BRANCH, stem_name=name
                        )
                    )
                    cp = self._pending[consumer]
                    if cp.kind is LineKind.BRANCH:
                        raise CircuitError(
                            f"line {name!r} feeds branch {consumer!r} and "
                            "gates simultaneously"
                        )
                    cp.fanin_names[pos] = branch_name

    def _freeze(self) -> Circuit:
        name_to_lid = {n: i for i, n in enumerate(self._order)}
        fanout_lists: dict[str, list[int]] = {n: [] for n in self._order}
        for p in self._pending.values():
            if p.kind is LineKind.GATE:
                for src in p.fanin_names:
                    fanout_lists[src].append(name_to_lid[p.name])
            elif p.kind is LineKind.BRANCH:
                fanout_lists[p.stem_name].append(name_to_lid[p.name])
        output_set = set(self._output_order)
        lines: list[Line] = []
        for lid, n in enumerate(self._order):
            p = self._pending[n]
            if p.kind is LineKind.GATE:
                fanin = tuple(name_to_lid[s] for s in p.fanin_names)
            elif p.kind is LineKind.BRANCH:
                fanin = (name_to_lid[p.stem_name],)
            else:
                fanin = ()
            lines.append(
                Line(
                    lid=lid,
                    name=n,
                    kind=p.kind,
                    gate_type=p.gate_type,
                    fanin=fanin,
                    fanout=tuple(sorted(fanout_lists[n])),
                    is_output=n in output_set,
                )
            )
        return Circuit(
            name=self.name,
            lines=lines,
            inputs=[name_to_lid[n] for n in self._input_order],
            outputs=[name_to_lid[n] for n in self._output_order],
        )
