"""Circuit transformations: cone extraction, partitioning, renaming.

Section 4 of the paper notes that the exhaustive analysis can be applied
to large designs by partitioning them into output cones with small input
support and analyzing each cone separately.  :func:`extract_cone` builds
the sub-circuit feeding a chosen set of outputs and
:func:`output_partitions` greedily groups outputs into cones whose
combined input support stays below a bound.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit, LineKind
from repro.errors import CircuitError


def _rebuild(
    circuit: Circuit,
    keep: set[int],
    outputs: list[int],
    name: str,
) -> Circuit:
    """Rebuild a sub-circuit containing exactly the ``keep`` lines.

    Every non-input line in ``keep`` must retain at least one sink or be
    a declared output; inputs may end up dangling (they preserve the
    input space of the original circuit).
    """
    builder = CircuitBuilder(name)
    for lid in sorted(keep):
        line = circuit.lines[lid]
        if line.kind is LineKind.INPUT:
            builder.input(line.name)
        elif line.kind is LineKind.BRANCH:
            builder.branch(line.name, of=circuit.lines[line.fanin[0]].name)
        else:
            builder.gate(
                line.name,
                line.gate_type,
                [circuit.lines[f].name for f in line.fanin],
            )
    for lid in outputs:
        builder.output(circuit.lines[lid].name)
    return builder.build(auto_branch=True)


def extract_cone(
    circuit: Circuit, output_names: list[str], name: str | None = None
) -> Circuit:
    """Sub-circuit driving the named outputs (their transitive fanin).

    The chosen lines become the sub-circuit's primary outputs; all lines
    keep their names, so faults in the cone map one-to-one onto faults of
    the original circuit.  Inputs outside the cones' support are dropped,
    which shrinks the input space the exhaustive analysis must cover.
    """
    if not output_names:
        raise CircuitError("extract_cone needs at least one output name")
    out_lids = [circuit.lid_of(n) for n in output_names]
    keep: set[int] = set(out_lids)
    for lid in out_lids:
        keep |= circuit.transitive_fanin(lid)
    sub_name = name or f"{circuit.name}~cone"
    return _rebuild(circuit, keep, out_lids, sub_name)


def cone_support(circuit: Circuit, output_name: str) -> set[int]:
    """Primary-input lids in the transitive fanin of one output."""
    lid = circuit.lid_of(output_name)
    cone = circuit.transitive_fanin(lid)
    cone.add(lid)
    return {i for i in circuit.inputs if i in cone}


def output_partitions(
    circuit: Circuit, max_inputs: int, allow_wide: bool = False
) -> list[Circuit]:
    """Greedily group outputs into cones with bounded input support.

    Outputs are sorted by decreasing support size and placed first-fit
    into the first group whose combined support stays within
    ``max_inputs``.  Each group becomes an independent sub-circuit via
    :func:`extract_cone`.  An output whose own support already exceeds
    the bound raises — unless ``allow_wide`` is set, in which case it
    becomes a singleton cone (nothing can first-fit into a group that
    is already over the bound) for the caller to analyze with a
    sampled/packed backend.
    """
    if max_inputs < 1:
        raise CircuitError("max_inputs must be >= 1")
    supports: list[tuple[str, set[int]]] = []
    for lid in circuit.outputs:
        nm = circuit.lines[lid].name
        sup = cone_support(circuit, nm)
        if len(sup) > max_inputs and not allow_wide:
            raise CircuitError(
                f"output {nm!r} depends on {len(sup)} inputs "
                f"(> max_inputs={max_inputs}); cannot partition"
            )
        supports.append((nm, sup))
    supports.sort(key=lambda item: (-len(item[1]), item[0]))
    groups: list[tuple[list[str], set[int]]] = []
    for nm, sup in supports:
        for names, combined in groups:
            if len(combined | sup) <= max_inputs:
                names.append(nm)
                combined |= sup
                break
        else:
            groups.append(([nm], set(sup)))
    return [
        extract_cone(circuit, names, name=f"{circuit.name}~part{i}")
        for i, (names, _sup) in enumerate(groups)
    ]


def rename_lines(circuit: Circuit, prefix: str = "") -> Circuit:
    """Renumber lines 1..L in id order (paper-style numeric names)."""
    mapping = {line.name: f"{prefix}{line.lid + 1}" for line in circuit.lines}
    builder = CircuitBuilder(circuit.name)
    for line in circuit.lines:
        nm = mapping[line.name]
        if line.kind is LineKind.INPUT:
            builder.input(nm)
        elif line.kind is LineKind.BRANCH:
            builder.branch(nm, of=mapping[circuit.lines[line.fanin[0]].name])
        else:
            builder.gate(
                nm,
                line.gate_type,
                [mapping[circuit.lines[f].name] for f in line.fanin],
            )
    for lid in circuit.outputs:
        builder.output(mapping[circuit.lines[lid].name])
    return builder.build(auto_branch=True)


def strip_unused_lines(circuit: Circuit) -> Circuit:
    """Drop gate/branch lines that feed no primary output (dead logic).

    Primary inputs are always kept — even when their whole fanout is
    dropped — so the input space and decimal vector numbering of the
    original circuit are preserved.
    """
    keep: set[int] = set(circuit.outputs)
    for lid in circuit.outputs:
        keep |= circuit.transitive_fanin(lid)
    keep.update(circuit.inputs)
    return _rebuild(circuit, keep, list(circuit.outputs), circuit.name)
