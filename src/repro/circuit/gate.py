"""Gate types and their evaluation in the three value domains.

Each gate type can be evaluated:

* over *signatures* — arbitrary-precision ints holding one bit per input
  vector of the whole input space (used by the exhaustive simulator and
  fault simulator);
* over scalar 3-valued values (0/1/X) — used by the scalar simulator;
* over *dual-rail lane words* — pairs of ints ``(ones, zeros)`` where bit
  ``L`` of ``ones`` says "lane L is definitely 1" and bit ``L`` of
  ``zeros`` says "lane L is definitely 0"; a lane with neither bit set is
  X.  This is the batched 3-valued representation used by Definition 2's
  ``tij`` simulations (many partial vectors per call).
"""

from __future__ import annotations

from enum import Enum
from functools import reduce

from repro.errors import CircuitError
from repro.logic.values import ONE, ZERO, v3_and, v3_not, v3_or, v3_xor


class GateType(Enum):
    """Supported combinational gate functions."""

    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    NOT = "not"
    BUF = "buf"
    XOR = "xor"
    XNOR = "xnor"
    CONST0 = "const0"
    CONST1 = "const1"

    @property
    def min_arity(self) -> int:
        if self in (GateType.CONST0, GateType.CONST1):
            return 0
        if self in (GateType.NOT, GateType.BUF):
            return 1
        return 1

    @property
    def max_arity(self) -> int | None:
        if self in (GateType.CONST0, GateType.CONST1):
            return 0
        if self in (GateType.NOT, GateType.BUF):
            return 1
        return None

    @property
    def is_inverting(self) -> bool:
        """True when the gate complements its base function (NAND/NOR/NOT/XNOR)."""
        return self in (GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR)

    @property
    def controlling_value(self) -> int | None:
        """Input value that determines the output alone, if any."""
        if self in (GateType.AND, GateType.NAND):
            return 0
        if self in (GateType.OR, GateType.NOR):
            return 1
        return None

    @property
    def controlled_output(self) -> int | None:
        """Output value produced by a controlling input."""
        c = self.controlling_value
        if c is None:
            return None
        base = c  # AND with a 0 -> 0; OR with a 1 -> 1
        return base ^ 1 if self.is_inverting else base

    def check_arity(self, arity: int) -> None:
        if arity < self.min_arity:
            raise CircuitError(
                f"{self.name} gate needs >= {self.min_arity} inputs, got {arity}"
            )
        if self.max_arity is not None and arity > self.max_arity:
            raise CircuitError(
                f"{self.name} gate takes <= {self.max_arity} inputs, got {arity}"
            )


def eval_signature(gate_type: GateType, inputs: list[int], mask: int) -> int:
    """Evaluate a gate over full-space signatures.

    ``mask`` is the all-ones signature for the circuit's input count; it
    bounds the complement for inverting gates.
    """
    gt = gate_type
    if gt is GateType.CONST0:
        return 0
    if gt is GateType.CONST1:
        return mask
    if not inputs:
        raise CircuitError(f"{gt.name} gate evaluated with no inputs")
    if gt is GateType.BUF:
        return inputs[0]
    if gt is GateType.NOT:
        return ~inputs[0] & mask
    if gt is GateType.AND:
        return reduce(lambda a, b: a & b, inputs)
    if gt is GateType.NAND:
        return ~reduce(lambda a, b: a & b, inputs) & mask
    if gt is GateType.OR:
        return reduce(lambda a, b: a | b, inputs)
    if gt is GateType.NOR:
        return ~reduce(lambda a, b: a | b, inputs) & mask
    if gt is GateType.XOR:
        return reduce(lambda a, b: a ^ b, inputs)
    if gt is GateType.XNOR:
        return ~reduce(lambda a, b: a ^ b, inputs) & mask
    raise CircuitError(f"unknown gate type: {gt!r}")


def eval_scalar3(gate_type: GateType, inputs: list[int]) -> int:
    """Evaluate a gate over scalar 3-valued inputs (0/1/X)."""
    gt = gate_type
    if gt is GateType.CONST0:
        return ZERO
    if gt is GateType.CONST1:
        return ONE
    if not inputs:
        raise CircuitError(f"{gt.name} gate evaluated with no inputs")
    if gt is GateType.BUF:
        return inputs[0]
    if gt is GateType.NOT:
        return v3_not(inputs[0])
    if gt in (GateType.AND, GateType.NAND):
        out = reduce(v3_and, inputs)
        return v3_not(out) if gt is GateType.NAND else out
    if gt in (GateType.OR, GateType.NOR):
        out = reduce(v3_or, inputs)
        return v3_not(out) if gt is GateType.NOR else out
    if gt in (GateType.XOR, GateType.XNOR):
        out = reduce(v3_xor, inputs)
        return v3_not(out) if gt is GateType.XNOR else out
    raise CircuitError(f"unknown gate type: {gt!r}")


def eval_dualrail(
    gate_type: GateType,
    ones: list[int],
    zeros: list[int],
    lane_mask: int,
) -> tuple[int, int]:
    """Evaluate a gate over dual-rail lane words.

    Parameters
    ----------
    ones, zeros:
        Parallel lists (one entry per gate input) of lane words: bit L of
        ``ones[i]`` means input i is definitely 1 in lane L.
    lane_mask:
        All-lanes mask bounding complements.

    Returns ``(out_ones, out_zeros)``.
    """
    gt = gate_type
    if gt is GateType.CONST0:
        return 0, lane_mask
    if gt is GateType.CONST1:
        return lane_mask, 0
    if not ones:
        raise CircuitError(f"{gt.name} gate evaluated with no inputs")
    if gt is GateType.BUF:
        return ones[0], zeros[0]
    if gt is GateType.NOT:
        return zeros[0], ones[0]
    if gt in (GateType.AND, GateType.NAND):
        o = reduce(lambda a, b: a & b, ones)
        z = reduce(lambda a, b: a | b, zeros)
        return (z, o) if gt is GateType.NAND else (o, z)
    if gt in (GateType.OR, GateType.NOR):
        o = reduce(lambda a, b: a | b, ones)
        z = reduce(lambda a, b: a & b, zeros)
        return (z, o) if gt is GateType.NOR else (o, z)
    if gt in (GateType.XOR, GateType.XNOR):
        o, z = ones[0], zeros[0]
        for i in range(1, len(ones)):
            o, z = (o & zeros[i]) | (z & ones[i]), (o & ones[i]) | (z & zeros[i])
        return (z, o) if gt is GateType.XNOR else (o, z)
    raise CircuitError(f"unknown gate type: {gt!r}")


_NAME_TO_GATE = {gt.value: gt for gt in GateType}
_NAME_TO_GATE.update({gt.name: gt for gt in GateType})
_NAME_TO_GATE.update(
    {
        "inv": GateType.NOT,
        "INV": GateType.NOT,
        "buff": GateType.BUF,
        "BUFF": GateType.BUF,
    }
)


def gate_type_from_name(name: str) -> GateType:
    """Parse a gate-type name as used by ``.bench`` files (case-insensitive)."""
    gt = _NAME_TO_GATE.get(name) or _NAME_TO_GATE.get(name.lower())
    if gt is None:
        raise CircuitError(f"unknown gate type name: {name!r}")
    return gt
