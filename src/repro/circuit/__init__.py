"""Gate-level combinational netlist model.

The model follows the line-numbering style of the paper: every *line* of
the circuit is a first-class object with an integer id.  Fanout is explicit:
a line that drives more than one gate input does so through dedicated
*branch* lines (one per sink), exactly like lines 5/6 (branches of input 2)
and 7/8 (branches of input 3) in the paper's Figure 1.  Branch lines are
distinct stuck-at fault sites, which is what makes the paper's collapsed
fault list come out right.
"""

from repro.circuit.gate import GateType, eval_signature, eval_scalar3, eval_dualrail
from repro.circuit.netlist import Circuit, Line, LineKind
from repro.circuit.builder import CircuitBuilder
from repro.circuit.validate import validate_circuit
from repro.circuit.transform import (
    extract_cone,
    output_partitions,
    rename_lines,
    strip_unused_lines,
)

__all__ = [
    "GateType",
    "eval_signature",
    "eval_scalar3",
    "eval_dualrail",
    "Circuit",
    "Line",
    "LineKind",
    "CircuitBuilder",
    "validate_circuit",
    "extract_cone",
    "output_partitions",
    "rename_lines",
    "strip_unused_lines",
]
