"""The :class:`Circuit` netlist and its :class:`Line` records.

Normal form
-----------
A circuit in *normal form* satisfies:

* every line is an INPUT, a GATE output, a BRANCH of a stem line, or a
  CONST line;
* a line feeds **at most one** gate input directly; a line with several
  gate sinks feeds them through dedicated BRANCH lines (the branch is the
  fault site, as in the paper's Figure 1 where input 2 reaches the two AND
  gates through branch lines 5 and 6);
* being a primary output does not require a branch — the output is
  observed at the stem.

:class:`~repro.circuit.builder.CircuitBuilder` produces circuits in normal
form (inserting branches automatically if asked to).  All analyses in this
library assume normal form; :func:`repro.circuit.validate.validate_circuit`
checks it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.circuit.gate import GateType
from repro.errors import CircuitError


class LineKind(Enum):
    """What drives a line."""

    INPUT = "input"
    GATE = "gate"
    BRANCH = "branch"


@dataclass(frozen=True, slots=True)
class Line:
    """One circuit line (the unit of fault sites and simulation values).

    Attributes
    ----------
    lid:
        Dense integer id (index into ``Circuit.lines``).
    name:
        Unique line name.  For paper-style circuits these are numerals.
    kind:
        INPUT / GATE / BRANCH.
    gate_type:
        The driving gate's function (GATE lines; CONST0/CONST1 gates model
        constant lines).  ``None`` for INPUT and BRANCH lines.
    fanin:
        Ids of the gate's input lines (GATE), or ``(stem,)`` for a BRANCH.
    fanout:
        Ids of lines this line drives: branch lines, or the single gate
        output line it feeds directly.
    is_output:
        Primary-output flag (observed at this line).
    """

    lid: int
    name: str
    kind: LineKind
    gate_type: GateType | None
    fanin: tuple[int, ...]
    fanout: tuple[int, ...]
    is_output: bool

    @property
    def is_stem(self) -> bool:
        """True when this line drives branch lines."""
        return self.kind is not LineKind.BRANCH and len(self.fanout) > 1


@dataclass
class Circuit:
    """An immutable combinational netlist in normal form.

    Build instances through :class:`repro.circuit.builder.CircuitBuilder`
    (or one of the format readers); the constructor performs only cheap
    integrity checks and derives the topological order.
    """

    name: str
    lines: list[Line]
    inputs: list[int]
    outputs: list[int]
    _name_to_lid: dict[str, int] = field(init=False, repr=False)
    topo_order: list[int] = field(init=False, repr=False)
    level: list[int] = field(init=False, repr=False)
    _fanout_masks: list[int] | None = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        self._name_to_lid = {}
        for line in self.lines:
            if line.lid != len(self._name_to_lid):
                raise CircuitError(
                    f"line ids must be dense and ordered; got {line.lid} "
                    f"at position {len(self._name_to_lid)}"
                )
            if line.name in self._name_to_lid:
                raise CircuitError(f"duplicate line name: {line.name!r}")
            self._name_to_lid[line.name] = line.lid
        self._compute_topo_order()

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def _compute_topo_order(self) -> None:
        """Kahn topological sort over driven lines; also assigns levels."""
        indegree = [0] * len(self.lines)
        for line in self.lines:
            indegree[line.lid] = len(line.fanin)
        ready = [line.lid for line in self.lines if not line.fanin]
        level = [0] * len(self.lines)
        order: list[int] = []
        head = 0
        ready.sort()
        while head < len(ready):
            lid = ready[head]
            head += 1
            # Driven lines need evaluation; fanin-less GATE lines are
            # constants (CONST0/CONST1) and must be evaluated too.
            if self.lines[lid].fanin or self.lines[lid].kind is LineKind.GATE:
                order.append(lid)
            for sink in self.lines[lid].fanout:
                indegree[sink] -= 1
                lvl = level[lid] + 1
                if lvl > level[sink]:
                    level[sink] = lvl
                if indegree[sink] == 0:
                    ready.append(sink)
        if len(ready) != len(self.lines):
            from repro.errors import CircuitCycleError

            stuck = [ln.name for ln in self.lines if indegree[ln.lid] > 0]
            raise CircuitCycleError(stuck)
        self.topo_order = order
        self.level = level

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.lines)

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    @property
    def num_gates(self) -> int:
        return sum(1 for ln in self.lines if ln.kind is LineKind.GATE)

    @property
    def depth(self) -> int:
        """Maximum logic level over all lines."""
        return max(self.level, default=0)

    def lid_of(self, name: str) -> int:
        try:
            return self._name_to_lid[name]
        except KeyError:
            raise CircuitError(f"no line named {name!r} in {self.name!r}") from None

    def line(self, name_or_lid: str | int) -> Line:
        if isinstance(name_or_lid, str):
            return self.lines[self.lid_of(name_or_lid)]
        return self.lines[name_or_lid]

    def has_line(self, name: str) -> bool:
        return name in self._name_to_lid

    # ------------------------------------------------------------------
    # Structure queries used by fault models and fault simulation
    # ------------------------------------------------------------------
    def gate_lines(self) -> list[Line]:
        """All GATE-kind lines in id order."""
        return [ln for ln in self.lines if ln.kind is LineKind.GATE]

    def multi_input_gate_lines(self) -> list[Line]:
        """Outputs of gates with >= 2 inputs (bridging-fault sites)."""
        return [
            ln
            for ln in self.lines
            if ln.kind is LineKind.GATE and len(ln.fanin) >= 2
        ]

    def transitive_fanout(self, lid: int) -> set[int]:
        """Ids of all lines reachable from ``lid`` (excluding ``lid``)."""
        seen: set[int] = set()
        stack = list(self.lines[lid].fanout)
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.lines[cur].fanout)
        return seen

    def transitive_fanin(self, lid: int) -> set[int]:
        """Ids of all lines in the input cone of ``lid`` (excluding it)."""
        seen: set[int] = set()
        stack = list(self.lines[lid].fanin)
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.lines[cur].fanin)
        return seen

    def fanout_masks(self) -> list[int]:
        """Per-line transitive-fanout cones as line-id bitsets (cached).

        Bit ``x`` of ``fanout_masks()[lid]`` is set iff line ``x`` is
        reachable from ``lid`` (``lid`` itself excluded) — the bitset
        twin of :meth:`transitive_fanout`, but computed for *every* line
        in one reverse-topological pass, so batch consumers (the PPSFP
        kernel unions hundreds of cones per fault batch) pay C-speed
        big-int ORs instead of per-site set traversals.
        """
        masks = self._fanout_masks
        if masks is None:
            masks = [0] * len(self.lines)
            for lid in reversed(self.topo_order):
                acc = 0
                for sink in self.lines[lid].fanout:
                    acc |= (1 << sink) | masks[sink]
                masks[lid] = acc
            for lid in self.inputs:
                acc = 0
                for sink in self.lines[lid].fanout:
                    acc |= (1 << sink) | masks[sink]
                masks[lid] = acc
            self._fanout_masks = masks
        return masks

    def __getstate__(self) -> dict:
        # The fanout-mask cache is derived data and can be large on big
        # circuits; rebuild it lazily on the receiving side instead of
        # shipping it to every pool/queue worker.
        state = dict(self.__dict__)
        state["_fanout_masks"] = None
        return state

    def fanout_cone_order(self, lid: int) -> list[int]:
        """Driven lines in the fanout cone of ``lid``, topologically sorted.

        This is the re-simulation schedule after injecting a fault at
        ``lid``: exactly the lines whose value can change, in dependency
        order.  ``lid`` itself is not included.
        """
        cone = self.transitive_fanout(lid)
        return [x for x in self.topo_order if x in cone]

    def observing_outputs(self, lid: int) -> list[int]:
        """Primary outputs structurally reachable from ``lid`` (incl. itself)."""
        reach = self.transitive_fanout(lid)
        reach.add(lid)
        return [o for o in self.outputs if o in reach]

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Size summary used by reports and the CLI."""
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "gates": self.num_gates,
            "branches": sum(
                1 for ln in self.lines if ln.kind is LineKind.BRANCH
            ),
            "lines": len(self.lines),
            "depth": self.depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"Circuit({self.name!r}, inputs={s['inputs']}, gates={s['gates']}, "
            f"outputs={s['outputs']}, lines={s['lines']})"
        )
