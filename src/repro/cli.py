"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands regenerate the paper's artifacts::

    repro table1                     # example-circuit overlap analysis
    repro table2 [--circuits a,b]    # worst-case coverage, small n
    repro table3                     # worst-case tails, large n
    repro table4 [--k 10]            # example random test sets
    repro table5 [--k 1000]          # average-case histograms (Def. 1)
    repro table6 [--k 200]           # Definition 1 vs Definition 2
    repro figure2 [--circuit dvram]  # nmin distribution
    repro suite                      # circuit inventory with fault counts
    repro show-example               # Figure 1 circuit
    repro partition CIRCUIT          # Section 4 cone-partitioned analysis
    repro analyze CIRCUIT            # one-circuit worst-case analysis
    repro cache info|clear           # inspect / empty the shard cache
    repro worker --queue DIR         # drain shard tasks from a work queue
    repro queue info|stats|clear     # inspect / empty a work queue
    repro serve [--port P]           # always-on HTTP analysis service
    repro trace summary|tree PATH    # profile a --trace JSONL capture

``analyze``, ``escape``, and ``partition`` accept
``--backend exhaustive|sampled|serial|packed|adaptive`` (with
``--samples K`` / ``--seed`` / ``--replacement`` for ``sampled`` and
``packed``), so circuits beyond the 24-input exhaustive cap can be
analyzed via Monte-Carlo sampled-U detection tables; ``packed`` stores
the same signatures as numpy ``uint64`` blocks and runs the worst-case
``nmin`` scan vectorized.  The ``adaptive`` engine sizes its own draw:
it grows ``K`` geometrically (``--target-halfwidth`` /
``--max-samples`` / ``--initial-samples``) until the confidence
intervals of the smallest ``N(f)`` estimates meet the target, and
``--stratify bridging`` adds importance strata over rare bridging
activation regions.  ``--jobs N`` (or env ``REPRO_JOBS``) shards
detection-table construction across ``N`` worker processes — results
are bit-for-bit identical to the single-process build, and shard
results persist in an on-disk cache (``REPRO_CACHE_DIR``) that the
``cache`` subcommand inspects and clears.  ``--executor
{inline,pool,queue}`` (env ``REPRO_EXECUTOR``) picks the shard
execution substrate explicitly: ``queue`` publishes shard tasks to a
work-queue directory (``--queue-dir`` / ``REPRO_QUEUE_DIR``) that
independent ``repro worker --queue DIR`` processes — on this or any
host sharing the directory — drain, with the same bit-for-bit identity
guarantee.

``repro --trace PATH <command>`` records a span trace of the run:
every table build, shard, executor round-trip, and kernel batch lands
in PATH as JSONL, stitched across worker processes (pool children and
``repro worker`` drains alike carry the submitter's trace id).
``repro trace summary PATH`` profiles the capture.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro import obs

from repro.bench_suite.example import paper_example_ascii
from repro.bench_suite.registry import circuit_names, get_circuit
from repro.errors import ReproError


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--circuits",
        help="comma-separated circuit subset (default: paper's list)",
    )
    parser.add_argument("--seed", type=int, default=2005)
    _add_format(parser)


def _add_format(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=["text", "csv", "markdown"],
        default="text",
        help="output format (text mirrors the paper's layout)",
    )


def _format_result(result, fmt: str) -> str:
    if fmt == "text":
        return result.render()
    from repro.experiments.export import to_csv, to_markdown

    return to_csv(result) if fmt == "csv" else to_markdown(result)


def _circuit_list(args: argparse.Namespace) -> list[str] | None:
    if getattr(args, "circuits", None):
        return [c.strip() for c in args.circuits.split(",") if c.strip()]
    return None


def _add_backend(parser: argparse.ArgumentParser) -> None:
    from repro.faultsim.backends import BACKEND_NAMES

    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="exhaustive",
        help="detection-table engine (sampled breaks the 24-input cap)",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=None,
        help="sampled/packed backends: number K of random vectors to draw",
    )
    parser.add_argument(
        "--replacement",
        action="store_true",
        help="sampled/packed backends: draw vectors with replacement",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for detection-table construction "
            "(default: REPRO_JOBS, else 1; results are identical at "
            "any value)"
        ),
    )
    from repro.parallel import EXECUTOR_NAMES

    parser.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default=None,
        help=(
            "shard execution substrate (default: REPRO_EXECUTOR, else "
            "derived from --jobs); queue distributes shards to "
            "`repro worker` processes sharing --queue-dir"
        ),
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        help=(
            "work-queue directory for --executor queue "
            "(default: REPRO_QUEUE_DIR)"
        ),
    )
    parser.add_argument(
        "--broker",
        default=None,
        help=(
            "broker HOST:PORT for --executor tcp "
            "(default: REPRO_BROKER)"
        ),
    )
    parser.add_argument(
        "--target-halfwidth",
        type=float,
        default=None,
        help=(
            "adaptive backend: grow K until the smallest-N(f) "
            "confidence intervals are this tight (relative precision, "
            "default 0.05)"
        ),
    )
    parser.add_argument(
        "--max-samples",
        type=int,
        default=None,
        help="adaptive backend: total vector budget (default 16384)",
    )
    parser.add_argument(
        "--initial-samples",
        type=int,
        default=None,
        help="adaptive backend: first-round draw size (default 64)",
    )
    parser.add_argument(
        "--stratify",
        choices=["none", "bridging"],
        default=None,
        help=(
            "adaptive backend: importance strata over rare bridging "
            "activation regions"
        ),
    )


def _backend_from_args(args: argparse.Namespace) -> Any:
    from repro.errors import AnalysisError
    from repro.faultsim.backends import make_backend
    from repro.parallel import resolve_executor, resolve_jobs

    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        raise AnalysisError(f"--jobs must be >= 1, got {jobs}")
    # `jobs` passes through unresolved: an explicit --jobs value sizes
    # the pool executor verbatim (even 1), while None lets the factory
    # fall back to REPRO_JOBS / a real pool of 2.
    executor = resolve_executor(
        getattr(args, "executor", None),
        jobs=jobs,
        queue_dir=getattr(args, "queue_dir", None),
        broker=getattr(args, "broker", None),
    )
    sampling_backends = ("sampled", "packed")
    if args.backend not in sampling_backends and args.samples is not None:
        hint = (
            "; the adaptive backend sizes its own draw — use "
            "--max-samples for the budget"
            if args.backend == "adaptive"
            else ""
        )
        raise AnalysisError(
            f"--samples only applies to --backend sampled or packed "
            f"(got --backend {args.backend}){hint}"
        )
    if args.backend not in sampling_backends and getattr(
        args, "replacement", False
    ):
        raise AnalysisError(
            f"--replacement only applies to --backend sampled or packed "
            f"(got --backend {args.backend})"
        )
    if (
        args.backend == "packed"
        and args.samples is None
        and getattr(args, "replacement", False)
    ):
        raise AnalysisError(
            "--replacement implies sampling; --backend packed without "
            "--samples is exhaustive"
        )
    return make_backend(
        args.backend,
        samples=args.samples,
        seed=getattr(args, "seed", 0),
        replacement=getattr(args, "replacement", False),
        jobs=resolve_jobs(jobs),
        executor=executor,
        target_halfwidth=getattr(args, "target_halfwidth", None),
        # `is None`, not truthiness: an explicit --confidence 0.0 must
        # reach the stopping rule's validation, not silently become 95%.
        confidence=getattr(args, "confidence", None),
        max_samples=getattr(args, "max_samples", None),
        initial_samples=getattr(args, "initial_samples", None),
        stratify=getattr(args, "stratify", None),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Pomeranz & Reddy, 'Worst-Case and "
            "Average-Case Analysis of n-Detection Test Sets' (DATE 2005)"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "record a JSONL span trace of this run to PATH "
            "(truncated first; worker processes append to the same "
            "file and inherit the trace id via REPRO_TRACE_FILE)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1 (example circuit)")
    p.add_argument("--fault", type=int, default=0, help="index of g in G")
    _add_format(p)

    p = sub.add_parser("table2", help="Table 2 (worst case, small n)")
    _add_common(p)

    p = sub.add_parser("table3", help="Table 3 (worst case, large n)")
    _add_common(p)

    p = sub.add_parser("table4", help="Table 4 (example test sets)")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--seed", type=int, default=2005)
    _add_format(p)

    p = sub.add_parser("table5", help="Table 5 (average case, Def. 1)")
    _add_common(p)
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--nmax", type=int, default=None)

    p = sub.add_parser("table6", help="Table 6 (Def. 1 vs Def. 2)")
    _add_common(p)
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--nmax", type=int, default=None)

    p = sub.add_parser("figure2", help="Figure 2 (nmin distribution)")
    p.add_argument("--circuit", default="dvram")
    p.add_argument("--min", type=int, default=100, dest="minimum")
    _add_format(p)

    sub.add_parser("suite", help="circuit inventory with fault counts")
    sub.add_parser("show-example", help="print the Figure 1 circuit")

    p = sub.add_parser("partition", help="Section 4 cone-partitioned analysis")
    p.add_argument("circuit")
    p.add_argument("--max-inputs", type=int, default=12)
    p.add_argument("--seed", type=int, default=2005)
    _add_backend(p)

    p = sub.add_parser(
        "cache", help="inspect or clear the persistent shard cache"
    )
    p.add_argument("action", choices=["info", "clear"])
    p.add_argument(
        "--cache-dir",
        help="shard-cache directory (default: REPRO_CACHE_DIR or the "
        "user cache directory)",
    )

    p = sub.add_parser(
        "worker",
        help="drain shard tasks from a distributed work queue or broker",
    )
    p.add_argument(
        "--queue",
        help="work-queue directory (default: REPRO_QUEUE_DIR)",
    )
    p.add_argument(
        "--broker",
        help=(
            "drain a TCP broker at HOST:PORT instead of a filesystem "
            "queue (default: REPRO_BROKER; mutually exclusive with "
            "--queue)"
        ),
    )
    p.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after building this many shards (default: serve on)",
    )
    p.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help=(
            "exit after this many seconds without a claimable task "
            "(default: serve forever)"
        ),
    )
    p.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help=(
            "heartbeat age after which another worker's claim is "
            "presumed dead and requeued"
        ),
    )
    p.add_argument(
        "--poll-interval",
        type=float,
        default=0.1,
        help="seconds between claim attempts on an empty queue",
    )

    p = sub.add_parser(
        "queue", help="inspect or clear a distributed work queue"
    )
    p.add_argument(
        "action",
        choices=["info", "stats", "clear"],
        help="stats adds per-task ages, lease heartbeats, and errors",
    )
    p.add_argument(
        "--queue",
        help="work-queue directory (default: REPRO_QUEUE_DIR)",
    )
    p.add_argument(
        "--broker",
        help=(
            "inspect a live TCP broker at HOST:PORT instead of a "
            "filesystem queue (mutually exclusive with --queue)"
        ),
    )

    p = sub.add_parser(
        "broker",
        help="run the TCP shard broker (--executor tcp submits to it)",
    )
    p.add_argument(
        "--host",
        default="127.0.0.1",
        help=(
            "bind address (default loopback; bind wider only on a "
            "trusted network, and set REPRO_BROKER_SECRET on every "
            "peer to require authenticated frames)"
        ),
    )
    p.add_argument(
        "--port",
        type=int,
        default=8766,
        help="listening port (0 picks a free one, printed on start)",
    )
    p.add_argument(
        "--no-steal",
        action="store_true",
        help="disable work stealing (stale leases only requeue on death)",
    )
    p.add_argument(
        "--steal-after",
        type=float,
        default=0.5,
        help=(
            "lease age in seconds beyond which an idle worker "
            "duplicates a peer's in-flight shard"
        ),
    )
    p.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help=(
            "heartbeat age after which a busy worker is presumed dead "
            "and its shard requeued"
        ),
    )

    p = sub.add_parser(
        "trace",
        help="profile a JSONL trace captured with --trace",
    )
    p.add_argument(
        "action",
        choices=["summary", "tree"],
        help="summary: per-span-name totals and the critical path; "
        "tree: the full span hierarchy",
    )
    p.add_argument("path", help="JSONL trace file written by --trace")
    p.add_argument(
        "--top",
        type=int,
        default=10,
        help="span-name rows in the summary table (default 10)",
    )

    p = sub.add_parser(
        "serve", help="always-on HTTP analysis service"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8765,
        help="listening port (0 picks a free one, printed on start)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="default worker count for requests that don't set one",
    )
    from repro.parallel import EXECUTOR_NAMES

    p.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default=None,
        help="default shard execution substrate for requests",
    )
    p.add_argument(
        "--queue-dir",
        default=None,
        help=(
            "work-queue directory used with --executor queue; `repro "
            "worker` processes sharing it drain service-enqueued shards"
        ),
    )
    p.add_argument(
        "--broker",
        default=None,
        help=(
            "broker HOST:PORT used with --executor tcp; `repro worker "
            "--broker` processes attached to it build service shards"
        ),
    )
    p.add_argument(
        "--broker-port",
        type=int,
        default=None,
        help=(
            "embed a TCP shard broker on this port (0 picks a free "
            "one) and default requests to --executor tcp against it"
        ),
    )
    p.add_argument(
        "--table-lru",
        type=int,
        default=None,
        help=(
            "hot-tier capacity in cached table pairs "
            "(default: REPRO_TABLE_LRU, else 40)"
        ),
    )

    p = sub.add_parser(
        "gen-tests", help="generate a compact n-detection test set"
    )
    p.add_argument("circuit")
    p.add_argument("--n", type=int, default=1)
    p.add_argument(
        "--method", choices=["greedy", "podem"], default="greedy"
    )
    p.add_argument("--out", help="write vectors to this file")
    p.add_argument("--seed", type=int, default=2005)

    p = sub.add_parser(
        "escape", help="expected untargeted-fault escapes vs n"
    )
    p.add_argument("circuit")
    p.add_argument("--k", type=int, default=200)
    p.add_argument("--nmax", type=int, default=10)
    p.add_argument("--seed", type=int, default=2005)
    _add_backend(p)

    p = sub.add_parser(
        "analyze",
        help="worst-case analysis of one circuit (any backend)",
    )
    p.add_argument("circuit")
    p.add_argument("--seed", type=int, default=2005)
    p.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level for sampled-backend interval reporting",
    )
    _add_backend(p)
    return parser


def _cmd_suite() -> str:
    from repro.experiments.common import render_rows
    from repro.faults.universe import FaultUniverse

    rows = []
    for name in circuit_names():
        c = get_circuit(name)
        stats = c.stats()
        u = FaultUniverse(c)
        rows.append(
            [
                name,
                str(stats["inputs"]),
                str(stats["outputs"]),
                str(stats["gates"]),
                str(stats["lines"]),
                str(len(u.target_faults)),
                str(len(u.untargeted_faults)),
            ]
        )
    header = ["circuit", "PI", "PO", "gates", "lines", "|F|", "|G raw|"]
    return render_rows(header, rows) + "\n"


def _cmd_partition(args: argparse.Namespace) -> str:
    with obs.span("partition_analysis", circuit=args.circuit):
        return partition_report(
            get_circuit(args.circuit),
            _backend_from_args(args),
            circuit_name=args.circuit,
            max_inputs=args.max_inputs,
        )


def partition_report(
    circuit: Any,
    backend: Any,
    *,
    circuit_name: str,
    max_inputs: int,
) -> str:
    """Render the Section 4 cone-partitioned analysis.

    The rendering half of ``repro partition``, shared with the analysis
    service (:mod:`repro.serve`) so service responses stay byte-
    identical to the CLI's.
    """
    from repro.adaptive import AdaptiveBackend
    from repro.core.partition import PartitionedAnalysis
    from repro.faultsim.backends import PackedBackend, SampledBackend
    from repro.parallel import ParallelBackend

    jobs = backend.jobs if isinstance(backend, ParallelBackend) else None
    executor = (
        backend.executor if isinstance(backend, ParallelBackend) else None
    )
    base = backend.base if isinstance(backend, ParallelBackend) else backend
    if not isinstance(
        base, (SampledBackend, PackedBackend, AdaptiveBackend)
    ):
        # Exhaustive/serial cannot cover cones wider than the bound;
        # keep the legacy strict behavior (wide outputs raise).  `jobs`
        # and `executor` are orthogonal and stay threaded through the
        # cone builds.
        backend = None
    analysis = PartitionedAnalysis(
        circuit, max_inputs=max_inputs, backend=backend, jobs=jobs,
        executor=executor,
    )
    lines = [
        f"Cone-partitioned analysis of {circuit_name} "
        f"(max {max_inputs} inputs)"
    ]
    for key, value in analysis.summary().items():
        lines.append(f"  {key}: {value}")
    for cone in analysis.cones:
        g = cone.analysis.guaranteed_n()
        universe = cone.analysis.universe
        tag = "" if universe.exact else f" backend={base.name}"
        if not universe.exact and isinstance(base, AdaptiveBackend):
            # Per-cone adaptive K: each wide cone picked its own size.
            tag += f" K={universe.size}"
        lines.append(
            f"  cone {cone.circuit.name}: inputs={cone.circuit.num_inputs} "
            f"faults={len(cone.analysis)} guaranteed_n={g}{tag}"
        )
    return "\n".join(lines) + "\n"


def _cmd_cache(args: argparse.Namespace) -> str:
    from repro.parallel import ShardCache

    cache = ShardCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        return f"removed {removed} shard entries from {cache.root}\n"
    entries = cache.entries()
    lines = [
        f"shard cache: {cache.root}",
        f"  entries: {len(entries)}",
        f"  size: {cache.total_bytes()} bytes",
    ]
    for version, count in cache.versions().items():
        lines.append(f"  format {version}: {count}")
    return "\n".join(lines) + "\n"


def _install_event_logging() -> None:
    """Show structured obs events on stderr for long-lived daemons.

    Lease reclaims, requeues, steals, and poisoned-shard parks are
    structured one-line events on the obs logger; a long-lived worker
    or broker should show them even with no logging configured by the
    operator.
    """
    import logging

    from repro.obs.tracer import EVENT_LOGGER

    logger = logging.getLogger(EVENT_LOGGER)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
        logger.addHandler(handler)
        if logger.level == logging.NOTSET:
            logger.setLevel(logging.INFO)


def _cmd_worker(args: argparse.Namespace) -> str:
    from repro.errors import AnalysisError
    from repro.parallel import QueueWorker, WorkQueue, resolve_queue_dir

    _install_event_logging()
    if args.broker is not None:
        if args.queue is not None:
            raise AnalysisError(
                "--queue and --broker are mutually exclusive: a worker "
                "drains either a filesystem queue or a TCP broker"
            )
        from repro.parallel import TcpWorker

        tcp_worker = TcpWorker(
            broker=args.broker,
            lease_timeout=args.lease_timeout,
        )
        tcp_stats = tcp_worker.serve(
            max_tasks=args.max_tasks, idle_exit=args.idle_exit
        )
        return (
            f"worker {tcp_worker.worker_id} @ broker "
            f"{args.broker}: "
            f"built {tcp_stats['built']} shard(s) "
            f"({tcp_stats['stolen']} stolen), "
            f"skipped {tcp_stats['skipped']} already-cached, "
            f"{tcp_stats['failed']} failed attempt(s)\n"
        )

    queue = WorkQueue(
        resolve_queue_dir(
            args.queue, what="repro worker", flag="--queue"
        )
    )
    worker = QueueWorker(
        queue,
        poll_interval=args.poll_interval,
        lease_timeout=args.lease_timeout,
    )
    stats = worker.serve(
        max_tasks=args.max_tasks, idle_exit=args.idle_exit
    )
    return (
        f"worker {worker.worker_id} @ {queue.root}: "
        f"built {stats['built']} shard(s), "
        f"skipped {stats['skipped']} already-cached, "
        f"{stats['failed']} failed attempt(s)\n"
    )


def _cmd_broker(args: argparse.Namespace) -> int:
    from repro.parallel import run_broker

    _install_event_logging()
    return run_broker(
        host=args.host,
        port=args.port,
        steal=not args.no_steal,
        steal_after=args.steal_after,
        lease_timeout=args.lease_timeout,
    )


def _cmd_queue(args: argparse.Namespace) -> str:
    from repro.errors import AnalysisError
    from repro.parallel import WorkQueue, resolve_queue_dir

    if args.broker is not None:
        if args.queue is not None:
            raise AnalysisError(
                "--queue and --broker are mutually exclusive: inspect "
                "either a filesystem queue or a TCP broker"
            )
        return _broker_queue_report(args)

    queue = WorkQueue(
        resolve_queue_dir(args.queue, what="repro queue", flag="--queue")
    )
    if args.action == "clear":
        removed = queue.clear()
        return f"removed {removed} queue entries from {queue.root}\n"
    if args.action == "stats":
        return _queue_stats_report(queue)
    stats = queue.stats()
    return (
        f"work queue: {queue.root}\n"
        f"  pending tasks: {stats['pending']}\n"
        f"  leased tasks: {stats['leased']}\n"
        f"  results: {stats['results']}\n"
        f"  failed: {stats['failed']}\n"
    )


def _queue_stats_report(queue: Any) -> str:
    detail = queue.detailed_stats()
    lines = [
        f"work queue: {queue.root}",
        f"  pending: {len(detail['pending'])}",
    ]
    for entry in detail["pending"]:
        attempts = entry.get("attempts")
        if attempts is None:
            lines.append(f"    {entry['key']}  (unreadable payload)")
            continue
        age = entry.get("age_s")
        age_text = "" if age is None else f"  age={age:.1f}s"
        lines.append(
            f"    {entry['key']}  attempts={attempts}/"
            f"{entry['max_attempts']}{age_text}"
        )
    lines.append(f"  leased: {len(detail['leased'])}")
    for lease in detail["leased"]:
        lines.append(
            f"    {lease['key']}  "
            f"heartbeat_age={lease['heartbeat_age_s']:.1f}s"
        )
    lines.append(f"  failed: {len(detail['failed'])}")
    for failure in detail["failed"]:
        error = str(failure["error"] or "").splitlines()
        lines.append(
            f"    {failure['key']}  {error[0] if error else ''}"
        )
    lines.append(f"  results: {detail['results']}")
    return "\n".join(lines) + "\n"


def _broker_queue_report(args: argparse.Namespace) -> str:
    """``repro queue {info,stats,clear} --broker`` against a live broker."""
    from repro.parallel import broker_clear, broker_stats

    if args.action == "clear":
        removed = broker_clear(args.broker)
        return f"removed {removed} queue entries from broker {args.broker}\n"
    stats = broker_stats(args.broker)
    counters = stats["counters"]
    lines = [
        f"broker: {stats['address']} "
        f"(steal={'on' if stats['steal'] else 'off'})",
        f"  pending tasks: {len(stats['pending'])}",
        f"  building: {len(stats['building'])}",
        f"  workers: {len(stats['workers'])}",
        f"  results: {stats['results']}",
        f"  failed: {len(stats['failed'])}",
        f"  steals: {counters['steals']}",
    ]
    if args.action == "info":
        return "\n".join(lines) + "\n"
    for entry in stats["building"]:
        builders = ", ".join(
            f"{b['worker']} (age={b['age_s']:.1f}s)"
            for b in entry["builders"]
        )
        lines.append(
            f"    {entry['key']}  attempts={entry['attempts']}  "
            f"builders: {builders}"
        )
    for worker in stats["workers"]:
        current = worker["current"] or "idle"
        lines.append(f"    worker {worker['worker']}: {current}")
    for failure in stats["failed"]:
        error = str(failure["error"] or "").splitlines()
        lines.append(
            f"    failed {failure['key']}  {error[0] if error else ''}"
        )
    lines.append(
        "  counters: "
        + ", ".join(
            f"{key}={counters[key]}" for key in sorted(counters)
        )
    )
    return "\n".join(lines) + "\n"


def _cmd_trace(args: argparse.Namespace) -> str:
    from repro.obs.summary import (
        load_trace,
        render_summary,
        render_tree,
        summarize,
    )

    summary = summarize(load_trace(args.path))
    if args.action == "summary":
        return render_summary(summary, top=args.top) + "\n"
    return render_tree(summary) + "\n"


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import AnalysisError
    from repro.serve import AnalysisService, run_server

    executor = args.executor
    broker = args.broker
    if args.broker_port is not None:
        # Embedded broker: the service runs its own TCP broker and
        # defaults requests to the tcp executor against it — workers
        # attach with `repro worker --broker HOST:PORT`.
        if broker is not None:
            raise AnalysisError(
                "--broker and --broker-port are mutually exclusive: "
                "point at an external broker or embed one, not both"
            )
        from repro.parallel import BackgroundBroker

        embedded = BackgroundBroker(
            host=args.host, port=args.broker_port
        ).start()
        broker = embedded.address
        executor = executor or "tcp"
        sys.stdout.write(
            f"repro serve: embedded broker on {broker} "
            f"(attach workers with `repro worker --broker {broker}`)\n"
        )
        sys.stdout.flush()
    service = AnalysisService(
        jobs=args.jobs,
        executor=executor,
        queue_dir=args.queue_dir,
        broker=broker,
        table_lru=args.table_lru,
    )
    return run_server(service, host=args.host, port=args.port)


def _cmd_gen_tests(args: argparse.Namespace) -> str:
    import random

    from repro.atpg.ndetect import greedy_ndetection_set, podem_ndetection_set
    from repro.faults.universe import FaultUniverse
    from repro.io_formats.vectors import write_vectors

    circuit = get_circuit(args.circuit)
    universe = FaultUniverse(circuit)
    if args.method == "greedy":
        tests = greedy_ndetection_set(
            universe.target_table, args.n, rng=random.Random(args.seed)
        )
    else:
        tests = podem_ndetection_set(
            circuit, universe.target_faults, args.n, seed=args.seed
        )
    text = write_vectors(
        sorted(tests),
        circuit.num_inputs,
        comment=(
            f"{args.n}-detection test set for {args.circuit} "
            f"({args.method}, {len(tests)} vectors)"
        ),
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        return f"wrote {len(tests)} vectors to {args.out}\n"
    return text


def _cmd_escape(args: argparse.Namespace) -> str:
    from repro.core.worst_case import WorstCaseAnalysis
    from repro.faults.universe import FaultUniverse

    circuit = get_circuit(args.circuit)
    backend = _backend_from_args(args)
    with obs.span("build_tables", circuit=args.circuit):
        universe = FaultUniverse(circuit, backend=backend)
        worst = WorstCaseAnalysis(
            universe.target_table, universe.untargeted_table
        )
    with obs.span("report", circuit=args.circuit):
        return escape_report(
            universe,
            worst,
            circuit_name=args.circuit,
            backend_name=args.backend,
            k=args.k,
            nmax=args.nmax,
            seed=args.seed,
        )


def escape_report(
    universe: Any,
    worst: Any,
    *,
    circuit_name: str,
    backend_name: str,
    k: int,
    nmax: int,
    seed: int,
) -> str:
    """Render the expected-escapes analysis from built tables.

    The rendering half of ``repro escape``, shared with the analysis
    service (:mod:`repro.serve`) so a cached universe/worst-case pair
    produces responses byte-identical to the CLI's.
    """
    from repro.core.average_case import AverageCaseAnalysis
    from repro.core.escape import EscapeAnalysis
    from repro.core.procedure1 import build_random_ndetection_sets

    family = build_random_ndetection_sets(
        universe.target_table,
        n_max=nmax,
        num_sets=k,
        seed=seed,
    )
    avg = AverageCaseAnalysis(family, universe.untargeted_table)
    escape = EscapeAnalysis(worst, avg)
    head = (
        f"Escape analysis of {circuit_name} "
        f"(backend={backend_name}, {len(worst)} untargeted faults, "
        f"K={k}):\n"
    )
    return head + escape.render() + "\n"


def _cmd_analyze(args: argparse.Namespace) -> str:
    from repro.core.worst_case import WorstCaseAnalysis
    from repro.faults.universe import FaultUniverse

    circuit = get_circuit(args.circuit)
    backend = _backend_from_args(args)
    with obs.span("build_tables", circuit=args.circuit):
        universe = FaultUniverse(circuit, backend=backend)
        worst = WorstCaseAnalysis(
            universe.target_table, universe.untargeted_table
        )
    # The report phase owns the worst-case scans (nmin, fractions),
    # which dominate after the tables are hot — span it so the trace
    # attributes that time instead of leaving it in the root's self.
    with obs.span("report", circuit=args.circuit):
        return analyze_report(
            universe,
            worst,
            circuit_name=args.circuit,
            backend_name=args.backend,
            seed=args.seed,
            confidence=args.confidence,
        )


def analyze_report(
    universe: Any,
    worst: Any,
    *,
    circuit_name: str,
    backend_name: str,
    seed: int,
    confidence: float,
) -> str:
    """Render the worst-case analysis summary from built tables.

    The rendering half of ``repro analyze``: ``universe`` is a built
    :class:`~repro.faults.universe.FaultUniverse` and ``worst`` the
    matching :class:`~repro.core.worst_case.WorstCaseAnalysis`.  The
    analysis service (:mod:`repro.serve`) calls this with hot-tier
    cached pairs, so service responses stay byte-identical to the CLI.
    """
    from repro.adaptive import AdaptiveBackend
    from repro.parallel import ParallelBackend

    circuit = universe.circuit
    backend = universe.backend
    label = backend_name
    if isinstance(backend, ParallelBackend):
        resolved = backend.resolved_executor
        if getattr(resolved, "jobs", 1) > 1:
            label += f" jobs={resolved.jobs}"
        if backend.executor is not None:
            label += f" executor={resolved.name}"
    elif isinstance(backend, AdaptiveBackend):
        if backend.jobs > 1:
            label += f" jobs={backend.jobs}"
        if backend.executor is not None:
            label += f" executor={backend.executor.name}"
    vu = worst.universe
    lines = [
        f"Worst-case analysis of {circuit_name} (backend={label})",
        f"  inputs: {circuit.num_inputs}  |U| = 2**{circuit.num_inputs}",
        f"  vector universe: {vu.size} of {vu.space} vectors"
        + ("" if vu.exact else f" (sampled, seed={seed})"),
        f"  target faults |F|: {len(universe.target_table)} "
        f"({universe.target_table.num_detectable()} detectable)",
        f"  untargeted faults |G|: {len(worst)}",
    ]
    if isinstance(backend, AdaptiveBackend):
        report = backend.report_for(circuit)
        lines.append(
            "  adaptive trajectory"
            + (
                f" ({report.plan.num_strata} strata over "
                f"{len(report.plan.support)} support inputs)"
                if report.stratified
                else " (uniform growth)"
            )
            + ":"
        )
        lines.extend(f"    {line}" for line in report.trajectory_lines())
        for fe in report.focus:
            est = fe.estimate
            lines.append(
                f"    smallest N estimate [{fe.kind} "
                f"#{fe.fault_index}]: {est.estimate:.4g} "
                f"[{est.low:.4g}, {est.high:.4g}] "
                f"half-width/estimate = {fe.relative_halfwidth:.4f} "
                f"at {est.confidence:.0%}"
            )
    guaranteed = worst.guaranteed_n()
    if vu.exact:
        lines.append(f"  guaranteed n: {guaranteed}")
    else:
        est = worst.estimated_guaranteed_n()
        est_text = "none" if est is None else f"{est:.1f}"
        lines.append(
            f"  guaranteed n (sample space): {guaranteed}  "
            f"estimated over |U|: {est_text}"
        )
        # Spread of the estimator at this K, shown for the largest N(f).
        # Ranked and intervalled through the table's own estimator, so
        # stratified universes get their weighted (unbiased) version.
        estimates = universe.target_table.estimated_counts()
        if estimates:
            top = max(range(len(estimates)), key=estimates.__getitem__)
            ci = universe.target_table.count_estimate(
                top, confidence
            )
            lines.append(
                f"  largest N(f) estimate: {ci.estimate:.1f} "
                f"[{ci.low:.1f}, {ci.high:.1f}] "
                f"at {confidence:.0%} confidence"
            )
    values = [v for v in worst.nmin_values() if v is not None]
    no_guarantee = len(worst) - len(values)
    if values:
        label = "nmin" if vu.exact else "nmin (sample space)"
        lines.append(
            f"  {label}: min={min(values)} max={max(values)}"
        )
    lines.append(f"  faults with no guarantee at any n: {no_guarantee}")
    qualifier = "" if vu.exact else " (sample space)"
    for n in (1, 2, 5, 10):
        lines.append(
            f"  guaranteed detected at n={n}{qualifier}: "
            f"{100.0 * worst.fraction_within(n):.1f}%"
        )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    previous: obs.Tracer | obs.NullTracer | None = None
    tracing = bool(getattr(args, "trace", None))
    if tracing:
        previous = _activate_trace(args.trace)
    try:
        if tracing:
            # One root span per run: everything the command does (table
            # builds, shard round-trips, rendering) nests under it, so
            # `repro trace summary` attributes the whole wall time.
            with obs.span(args.command):
                return _dispatch(args)
        return _dispatch(args)
    except ReproError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2
    finally:
        if tracing:
            obs.current_tracer().close()
            obs.reset(previous)


def _activate_trace(path: str) -> obs.Tracer | obs.NullTracer | None:
    """Start tracing this process and every worker it spawns.

    The path lands in ``REPRO_TRACE_FILE`` so spawned children (pool
    workers on platforms without fork, service subprocesses) lazily
    join the same file; fork children inherit the activated tracer
    directly; queue workers pick the trace id out of the task payload.
    """
    import os

    from repro.obs.tracer import TRACE_FILE_ENV

    os.environ[TRACE_FILE_ENV] = path
    writer = obs.JsonlTraceWriter(path, truncate=True)
    return obs.activate(obs.Tracer(writer))


def _dispatch(args: argparse.Namespace) -> int:
    # Imports are deferred: experiment modules pull in the whole analysis
    # stack, which only some commands need.
    if args.command == "table1":
        from repro.experiments.table1 import run_table1

        out = _format_result(run_table1(args.fault), args.format)
    elif args.command == "table2":
        from repro.experiments.table2 import run_table2

        out = _format_result(run_table2(_circuit_list(args)), args.format)
    elif args.command == "table3":
        from repro.experiments.table3 import run_table3

        out = _format_result(run_table3(_circuit_list(args)), args.format)
    elif args.command == "table4":
        from repro.experiments.table4 import run_table4

        out = _format_result(
            run_table4(num_sets=args.k, seed=args.seed), args.format
        )
    elif args.command == "table5":
        from repro.experiments.table5 import run_table5

        result = run_table5(
            _circuit_list(args), k=args.k, n_max=args.nmax, seed=args.seed
        )
        out = _format_result(result, args.format)
    elif args.command == "table6":
        from repro.experiments.table6 import run_table6

        result = run_table6(
            _circuit_list(args), k=args.k, n_max=args.nmax, seed=args.seed
        )
        out = _format_result(result, args.format)
    elif args.command == "figure2":
        from repro.experiments.figure2 import run_figure2

        out = _format_result(
            run_figure2(args.circuit, minimum=args.minimum), args.format
        )
    elif args.command == "suite":
        out = _cmd_suite()
    elif args.command == "show-example":
        out = paper_example_ascii() + "\n"
    elif args.command == "partition":
        out = _cmd_partition(args)
    elif args.command == "cache":
        out = _cmd_cache(args)
    elif args.command == "worker":
        out = _cmd_worker(args)
    elif args.command == "queue":
        out = _cmd_queue(args)
    elif args.command == "trace":
        out = _cmd_trace(args)
    elif args.command == "serve":
        # Blocks until interrupted; the ready line prints from inside.
        return _cmd_serve(args)
    elif args.command == "broker":
        # Blocks until interrupted; the ready line prints from inside.
        return _cmd_broker(args)
    elif args.command == "gen-tests":
        out = _cmd_gen_tests(args)
    elif args.command == "escape":
        out = _cmd_escape(args)
    elif args.command == "analyze":
        out = _cmd_analyze(args)
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(2)
    sys.stdout.write(out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
