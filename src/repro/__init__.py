"""repro — reproduction of Pomeranz & Reddy, DATE 2005.

*Worst-Case and Average-Case Analysis of n-Detection Test Sets.*

Public API highlights
---------------------
* :func:`repro.bench_suite.get_circuit` — benchmark circuits by name
  (``"paper_example"``, ``"keyb"``, ...).
* :class:`repro.faults.FaultUniverse` — target stuck-at faults ``F`` and
  untargeted four-way bridging faults ``G`` with detection tables.
* :class:`repro.core.WorstCaseAnalysis` — ``nmin(g)`` per untargeted
  fault (Section 2).
* :func:`repro.core.build_random_ndetection_sets` — Procedure 1 under
  Definition 1 or Definition 2 (Sections 3-4).
* :class:`repro.core.AverageCaseAnalysis` — ``p(n, g)`` estimates and the
  Table 5/6 histograms.
* :mod:`repro.experiments` — regeneration of every table and figure.
"""

from repro.circuit import Circuit, CircuitBuilder, GateType
from repro.core import (
    AverageCaseAnalysis,
    NDetectionFamily,
    WorstCaseAnalysis,
    build_random_ndetection_sets,
)
from repro.faults import BridgingFault, FaultUniverse, StuckAtFault
from repro.faultsim import DetectionTable

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "GateType",
    "AverageCaseAnalysis",
    "NDetectionFamily",
    "WorstCaseAnalysis",
    "build_random_ndetection_sets",
    "BridgingFault",
    "FaultUniverse",
    "StuckAtFault",
    "DetectionTable",
    "__version__",
]
