"""Deterministic synthetic FSM generation.

The original MCNC ``.kiss2`` sources are not redistributable in this
repository, so suite entries without a hand-written reconstruction are
generated: a seeded (by circuit name) random FSM with the *published
interface sizes* (inputs/outputs/states) of its MCNC namesake.  The
generator guarantees a deterministic machine: each state's input cubes
are produced by recursively splitting the input space, so they are
disjoint and complete by construction.

The same seed always yields byte-identical KISS2 text, which keeps every
analysis in this repository reproducible.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass


@dataclass(frozen=True)
class FsmSpec:
    """Interface sizes for a generated FSM."""

    name: str
    inputs: int
    outputs: int
    states: int
    # Average input-space splits per state (1 split = 2 cubes).  Deeper
    # splitting yields terms with more literals — rarer activation
    # conditions, and therefore heavier nmin tails (see DESIGN.md §2).
    split_depth: int = 2


def _split_cubes(num_inputs: int, depth: int, rng: random.Random) -> list[str]:
    """Disjoint, complete input cubes by recursive variable splitting."""
    def split(cube: list[str], d: int) -> list[str]:
        free = [i for i, ch in enumerate(cube) if ch == "-"]
        if d <= 0 or not free or rng.random() < 0.25:
            return ["".join(cube)]
        var = rng.choice(free)
        out: list[str] = []
        for bit in "01":
            child = list(cube)
            child[var] = bit
            out.extend(split(child, d - 1))
        return out

    return split(["-"] * num_inputs, depth)


def _output_bits(num_outputs: int, rng: random.Random) -> str:
    chars = []
    for _ in range(num_outputs):
        r = rng.random()
        if r < 0.40:
            chars.append("1")
        elif r < 0.92:
            chars.append("0")
        else:
            chars.append("-")
    return "".join(chars)


def generate_kiss2(spec: FsmSpec) -> str:
    """Deterministic KISS2 text for a spec (seeded by the circuit name)."""
    seed = zlib.crc32(spec.name.encode("utf-8"))
    rng = random.Random(seed)
    states = [f"st{i}" for i in range(spec.states)]
    rows: list[str] = []
    for si, state in enumerate(states):
        cubes = _split_cubes(spec.inputs, spec.split_depth, rng)
        for ci, cube in enumerate(cubes):
            if ci == 0:
                nxt = states[(si + 1) % spec.states]  # keep a reachable cycle
            else:
                nxt = states[rng.randrange(spec.states)]
            out = _output_bits(spec.outputs, rng)
            rows.append(f"{cube} {state} {nxt} {out}")
    header = [
        f".i {spec.inputs}",
        f".o {spec.outputs}",
        f".p {len(rows)}",
        f".s {len(states)}",
        f".r {states[0]}",
    ]
    return "\n".join(header + rows + [".e"]) + "\n"
