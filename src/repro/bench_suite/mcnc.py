"""The MCNC-style FSM benchmark suite (35 machines, paper Table 2 order).

Two kinds of entries (see DESIGN.md §2 for the substitution rationale):

* **Hand-written reconstructions** — small classic machines (lion,
  train4, modulo12, dk27, bbtas, mc, lion9, train11, beecount, s8)
  written as deterministic, complete KISS2 covers with the published
  interface sizes.  They are *reconstructions in the spirit of* the MCNC
  originals, not byte-identical copies (the originals are not
  redistributable here).
* **Generated entries** — seeded deterministic FSMs from
  :mod:`repro.bench_suite.synthetic` with the published interface sizes
  of their namesakes.  The four heavy-tail circuits of the paper's
  Table 3 (dvram, fetch, log, rie) plus s1a use deeper cube splitting,
  which produces the rare activation conditions behind very large
  ``nmin`` values.

``MCNC_SUITE`` preserves the row order of the paper's Table 2.
"""

from __future__ import annotations

from repro.bench_suite.synthetic import FsmSpec, generate_kiss2
from repro.errors import ReproError

_LION = """\
.i 2
.o 1
.p 11
.s 4
.r st0
00 st0 st0 0
01 st0 st1 0
1- st0 st0 0
00 st1 st0 0
-1 st1 st1 1
10 st1 st2 1
0- st2 st3 1
10 st2 st2 1
11 st2 st1 1
0- st3 st3 1
1- st3 st0 0
.e
"""

_TRAIN4 = """\
.i 2
.o 1
.p 14
.s 4
.r st0
00 st0 st0 0
01 st0 st1 1
10 st0 st1 1
11 st0 st0 0
0- st1 st2 1
10 st1 st1 1
11 st1 st3 1
00 st2 st3 1
01 st2 st2 1
1- st2 st1 1
00 st3 st0 0
01 st3 st3 1
10 st3 st3 1
11 st3 st2 1
.e
"""

_MODULO12 = """\
.i 1
.o 1
.p 24
.s 12
.r st0
0 st0 st0 0
1 st0 st1 0
0 st1 st1 0
1 st1 st2 0
0 st2 st2 0
1 st2 st3 0
0 st3 st3 0
1 st3 st4 0
0 st4 st4 0
1 st4 st5 0
0 st5 st5 0
1 st5 st6 0
0 st6 st6 0
1 st6 st7 0
0 st7 st7 0
1 st7 st8 0
0 st8 st8 0
1 st8 st9 0
0 st9 st9 0
1 st9 st10 0
0 st10 st10 0
1 st10 st11 0
0 st11 st11 1
1 st11 st0 1
.e
"""

_DK27 = """\
.i 1
.o 2
.p 14
.s 7
.r st0
0 st0 st1 00
1 st0 st2 00
0 st1 st3 01
1 st1 st4 00
0 st2 st4 10
1 st2 st5 00
0 st3 st5 01
1 st3 st6 10
0 st4 st6 10
1 st4 st0 01
0 st5 st0 11
1 st5 st1 10
0 st6 st2 11
1 st6 st3 11
.e
"""

_BBTAS = """\
.i 2
.o 2
.p 24
.s 6
.r st0
00 st0 st0 00
01 st0 st1 00
10 st0 st2 00
11 st0 st0 00
00 st1 st0 00
01 st1 st2 01
10 st1 st3 00
11 st1 st1 01
00 st2 st1 01
01 st2 st3 10
10 st2 st4 01
11 st2 st2 10
00 st3 st2 10
01 st3 st4 11
10 st3 st5 10
11 st3 st3 11
00 st4 st3 11
01 st4 st5 01
10 st4 st0 11
11 st4 st4 10
00 st5 st4 10
01 st5 st0 11
10 st5 st1 01
11 st5 st5 11
.e
"""

_MC = """\
.i 3
.o 5
.p 10
.s 4
.r st0
0-- st0 st0 01000
1-- st0 st1 10000
0-- st1 st2 00100
10- st1 st1 10010
11- st1 st3 10001
--0 st2 st2 00110
--1 st2 st3 01001
00- st3 st0 01100
01- st3 st3 00011
1-- st3 st2 01010
.e
"""

_LION9 = """\
.i 2
.o 1
.p 26
.s 9
.r st0
00 st0 st0 0
01 st0 st1 0
1- st0 st0 0
00 st1 st0 1
-1 st1 st2 1
10 st1 st1 1
00 st2 st1 1
-1 st2 st3 1
10 st2 st2 1
00 st3 st2 1
-1 st3 st4 1
10 st3 st3 1
00 st4 st3 1
-1 st4 st5 1
10 st4 st4 1
00 st5 st4 1
-1 st5 st6 1
10 st5 st5 1
00 st6 st5 1
-1 st6 st7 1
10 st6 st6 1
00 st7 st6 1
-1 st7 st8 1
10 st7 st7 1
0- st8 st8 1
1- st8 st0 0
.e
"""

_TRAIN11 = """\
.i 2
.o 1
.p 32
.s 11
.r st0
00 st0 st0 0
01 st0 st1 1
1- st0 st2 1
00 st1 st0 0
01 st1 st1 1
1- st1 st3 1
00 st2 st0 0
-1 st2 st3 1
10 st2 st2 1
00 st3 st1 1
01 st3 st3 1
1- st3 st4 1
00 st4 st3 1
-1 st4 st5 1
10 st4 st4 1
00 st5 st4 1
01 st5 st5 1
1- st5 st6 1
00 st6 st5 1
-1 st6 st7 1
10 st6 st6 1
00 st7 st6 1
01 st7 st7 1
1- st7 st8 1
00 st8 st7 1
-1 st8 st9 1
10 st8 st8 1
00 st9 st8 1
01 st9 st10 1
1- st9 st9 1
0- st10 st10 1
1- st10 st0 0
.e
"""

_BEECOUNT = """\
.i 3
.o 4
.p 28
.s 7
.r st0
0-- st0 st0 0000
10- st0 st1 0001
110 st0 st0 0000
111 st0 st0 0000
0-- st1 st1 0001
10- st1 st2 0011
110 st1 st0 0000
111 st1 st0 0000
0-- st2 st2 0011
10- st2 st3 0010
110 st2 st1 0001
111 st2 st0 0000
0-- st3 st3 0010
10- st3 st4 0110
110 st3 st2 0011
111 st3 st0 0000
0-- st4 st4 0110
10- st4 st5 0111
110 st4 st3 0010
111 st4 st0 0000
0-- st5 st5 0111
10- st5 st6 0101
110 st5 st4 0110
111 st5 st0 0000
0-- st6 st6 0101
10- st6 st0 1000
110 st6 st5 0111
111 st6 st0 1000
.e
"""

_S8 = """\
.i 4
.o 1
.p 20
.s 5
.r st0
00-- st0 st0 0
01-- st0 st1 0
10-- st0 st2 0
11-- st0 st0 0
00-- st1 st2 0
01-- st1 st1 1
10-- st1 st3 0
11-- st1 st0 0
00-- st2 st3 0
01-- st2 st2 1
10-- st2 st4 0
11-- st2 st1 0
00-- st3 st4 1
01-- st3 st3 0
10-- st3 st0 1
11-- st3 st2 0
00-- st4 st0 1
01-- st4 st4 1
10-- st4 st1 1
11-- st4 st3 1
.e
"""

_HAND_WRITTEN: dict[str, str] = {
    "lion": _LION,
    "train4": _TRAIN4,
    "modulo12": _MODULO12,
    "dk27": _DK27,
    "bbtas": _BBTAS,
    "mc": _MC,
    "lion9": _LION9,
    "train11": _TRAIN11,
    "beecount": _BEECOUNT,
    "s8": _S8,
}

# Generated entries: published MCNC interface sizes (inputs, outputs,
# states).  split_depth drives the average number of bound input bits per
# term — the heavy-tail circuits use deeper splits (see module docstring).
_GENERATED_SPECS: dict[str, FsmSpec] = {
    "ex5": FsmSpec("ex5", 2, 2, 9),
    "dk15": FsmSpec("dk15", 3, 5, 4),
    "dk512": FsmSpec("dk512", 1, 3, 15),
    "dk14": FsmSpec("dk14", 3, 5, 7),
    "dk17": FsmSpec("dk17", 2, 3, 8),
    "firstex": FsmSpec("firstex", 2, 2, 6),
    "dk16": FsmSpec("dk16", 2, 3, 27),
    "tav": FsmSpec("tav", 4, 4, 4),
    "donfile": FsmSpec("donfile", 2, 1, 24),
    "ex7": FsmSpec("ex7", 2, 2, 10),
    "ex2": FsmSpec("ex2", 2, 2, 19),
    "ex3": FsmSpec("ex3", 2, 2, 10),
    "ex6": FsmSpec("ex6", 5, 8, 8),
    "mark1": FsmSpec("mark1", 5, 16, 15),
    "bbara": FsmSpec("bbara", 4, 2, 10),
    "ex4": FsmSpec("ex4", 6, 9, 14),
    "keyb": FsmSpec("keyb", 7, 2, 19),
    "opus": FsmSpec("opus", 5, 6, 10),
    "bbsse": FsmSpec("bbsse", 7, 7, 16),
    "cse": FsmSpec("cse", 7, 7, 16),
    "dvram": FsmSpec("dvram", 8, 5, 35),
    "fetch": FsmSpec("fetch", 9, 5, 26),
    "log": FsmSpec("log", 9, 4, 17),
    "rie": FsmSpec("rie", 10, 4, 11, split_depth=3),
    "s1a": FsmSpec("s1a", 8, 6, 20, split_depth=3),
}

#: Suite names in the paper's Table 2 row order.
MCNC_SUITE: tuple[str, ...] = (
    "lion",
    "dk27",
    "ex5",
    "train4",
    "bbtas",
    "dk15",
    "dk512",
    "dk14",
    "dk17",
    "firstex",
    "lion9",
    "mc",
    "dk16",
    "modulo12",
    "s8",
    "tav",
    "donfile",
    "ex7",
    "train11",
    "beecount",
    "ex2",
    "ex3",
    "ex6",
    "mark1",
    "bbara",
    "ex4",
    "keyb",
    "opus",
    "bbsse",
    "cse",
    "dvram",
    "fetch",
    "log",
    "rie",
    "s1a",
)

#: Names whose KISS2 text is a hand-written reconstruction.
HAND_WRITTEN_NAMES: frozenset[str] = frozenset(_HAND_WRITTEN)


def kiss2_source(name: str) -> str:
    """KISS2 text of one suite entry (hand-written or generated)."""
    if name in _HAND_WRITTEN:
        return _HAND_WRITTEN[name]
    spec = _GENERATED_SPECS.get(name)
    if spec is None:
        raise ReproError(f"no suite entry named {name!r}")
    return generate_kiss2(spec)
