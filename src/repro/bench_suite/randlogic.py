"""Seeded random multilevel combinational circuits.

A library-grade version of the generator used by the property-based
tests: deterministic (seeded) random netlists with controllable size and
structure, useful as extra analysis targets, for the partitioning demo,
and for fuzzing new fault models.  All gates end up observable (dangling
gate lines are promoted to outputs), and the result is normal-form.
"""

from __future__ import annotations

import random

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import ReproError

_DEFAULT_GATES = (
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.NOT,
)


def random_circuit(
    seed: int,
    num_inputs: int = 8,
    num_gates: int = 40,
    max_arity: int = 3,
    gate_types: tuple[GateType, ...] = _DEFAULT_GATES,
    locality: float = 0.6,
    name: str | None = None,
) -> Circuit:
    """Deterministic random combinational circuit.

    Parameters
    ----------
    seed:
        Same seed → byte-identical circuit.
    num_inputs, num_gates:
        Interface and body size.
    max_arity:
        Upper bound on gate fanin (>= 2; NOT gates take one input).
    gate_types:
        Palette to draw from.
    locality:
        Probability that a gate draws its inputs from the most recent
        quarter of existing lines (higher = deeper, narrower circuits;
        lower = wide, shallow ones).
    """
    if num_inputs < 1:
        raise ReproError("need at least one input")
    if num_gates < 1:
        raise ReproError("need at least one gate")
    if max_arity < 2:
        raise ReproError("max_arity must be >= 2")
    if not 0.0 <= locality <= 1.0:
        raise ReproError("locality must be within [0, 1]")
    rng = random.Random(seed)
    builder = CircuitBuilder(name or f"rand_{seed}")
    lines = [builder.input(f"x{i}") for i in range(num_inputs)]
    consumed: set[str] = set()

    def pick_sources(count: int) -> list[str]:
        if rng.random() < locality and len(lines) > 4:
            window = lines[-max(4, len(lines) // 4):]
        else:
            window = lines
        picked = rng.sample(window, min(count, len(window)))
        consumed.update(picked)
        return picked

    gate_names = []
    for g in range(num_gates):
        gt = rng.choice(gate_types)
        if gt in (GateType.NOT, GateType.BUF):
            fanin = pick_sources(1)
        else:
            fanin = pick_sources(rng.randint(2, max_arity))
        nm = builder.gate(f"g{g}", gt, fanin)
        lines.append(nm)
        gate_names.append(nm)

    # Every gate line must reach an output: the ones nothing consumes
    # become the primary outputs.
    for nm in gate_names:
        if nm not in consumed:
            builder.output(nm)
    return builder.build(auto_branch=True)
