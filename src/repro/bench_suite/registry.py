"""Name-based access to every benchmark circuit (with caching).

``get_circuit("paper_example")`` returns the Figure 1 circuit;
``get_circuit("keyb")`` synthesizes the KISS2 source embedded in
:mod:`repro.bench_suite.mcnc` into combinational logic (primary inputs =
FSM inputs followed by state bits) and caches the result.

The ``wide*`` entries are seeded random multilevel circuits whose input
counts exceed :data:`~repro.logic.bitops.MAX_EXHAUSTIVE_INPUTS` — they
are deliberately *not* analyzable by the exhaustive engine and exist to
exercise the sampling engines (``--backend sampled``, or
``--backend packed --samples K`` for the numpy-packed variant whose
``nmin`` scan is vectorized).
"""

from __future__ import annotations

from functools import lru_cache

from repro.bench_suite import example as _example
from repro.bench_suite.mcnc import MCNC_SUITE, kiss2_source
from repro.bench_suite.randlogic import random_circuit
from repro.circuit.netlist import Circuit
from repro.errors import ReproError
from repro.fsm.machine import Fsm
from repro.fsm.synthesis import synthesize_fsm
from repro.io_formats.kiss2 import parse_kiss2

_EXAMPLES = {
    "paper_example": _example.paper_example,
    "c17": _example.c17,
    "majority3": _example.majority,
    "and_or_3": lambda: _example.and_or_example(3),
    "xor_tree_3": lambda: _example.xor_tree(3),
}

#: Wide random circuits: (seed, inputs, gates).  Inputs > 24 on purpose.
_WIDE_SPECS: dict[str, tuple[int, int, int]] = {
    "wide28": (20050428, 28, 72),
    "wide32": (20050432, 32, 96),
    "wide40": (20050440, 40, 128),
}

#: Names of the >MAX_EXHAUSTIVE_INPUTS circuits (sampled backend only).
WIDE_NAMES: tuple[str, ...] = tuple(sorted(_WIDE_SPECS))


def circuit_names() -> list[str]:
    """Every name accepted by :func:`get_circuit` (examples + suites)."""
    return sorted(_EXAMPLES) + list(MCNC_SUITE) + list(WIDE_NAMES)


@lru_cache(maxsize=None)
def get_fsm(name: str) -> Fsm:
    """The KISS2 finite-state machine behind an MCNC suite entry."""
    if name not in MCNC_SUITE:
        raise ReproError(f"no FSM named {name!r} in the suite")
    return parse_kiss2(kiss2_source(name), name=name)


@lru_cache(maxsize=None)
def get_circuit(name: str) -> Circuit:
    """Benchmark circuit by name (synthesized and cached on first use)."""
    maker = _EXAMPLES.get(name)
    if maker is not None:
        return maker()
    if name in MCNC_SUITE:
        return synthesize_fsm(get_fsm(name))
    spec = _WIDE_SPECS.get(name)
    if spec is not None:
        seed, num_inputs, num_gates = spec
        return random_circuit(
            seed, num_inputs=num_inputs, num_gates=num_gates, name=name
        )
    raise ReproError(
        f"unknown circuit {name!r}; known: {', '.join(circuit_names())}"
    )


def suite_table_groups() -> list[str]:
    """The MCNC circuit names in the paper's Table 2 order."""
    return list(MCNC_SUITE)
