"""Benchmark circuits: the paper's example plus the MCNC-style FSM suite.

``example``
    The paper's Figure 1 circuit (exact reconstruction, line numbering
    included) and a few classic small combinational circuits.
``mcnc``
    Embedded KISS2 sources for the 35 finite-state machines the paper's
    evaluation uses, synthesized to combinational logic.  Small classic
    machines are hand-written reconstructions; the rest are deterministic
    seeded FSMs matching the published interface sizes (see DESIGN.md for
    the substitution rationale).
``synthetic``
    The deterministic FSM generator behind the reconstructed entries.
``registry``
    Name-based access with caching: ``get_circuit("keyb")``.
"""

from repro.bench_suite.example import (
    and_or_example,
    c17,
    majority,
    paper_example,
    xor_tree,
)
from repro.bench_suite.randlogic import random_circuit
from repro.bench_suite.registry import (
    circuit_names,
    get_circuit,
    get_fsm,
    suite_table_groups,
)

__all__ = [
    "random_circuit",
    "and_or_example",
    "c17",
    "majority",
    "paper_example",
    "xor_tree",
    "circuit_names",
    "get_circuit",
    "get_fsm",
    "suite_table_groups",
]
