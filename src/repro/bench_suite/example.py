"""Hand-built example circuits, including the paper's Figure 1.

The Figure 1 circuit was reverse-engineered from the published data of
Table 1 (the detection sets ``T(f)``), the bridging fault ``g0`` with
``T(g0) = {6, 7}``, and ``T(11/0)``:

* inputs 1-4 (input 1 is the vector MSB);
* input 2 fans out through branch lines 5 and 6;
* input 3 fans out through branch lines 7 and 8;
* line 9 = AND(1, 5) — primary output;
* line 10 = AND(6, 7) — primary output;
* line 11 = OR(8, 4) — primary output.

Every published quantity is enforced by the test suite: the seven
``T(fi)`` rows of Table 1, the collapsed-fault indices, ``nmin(g0) = 3``
and ``nmin(g6) = 4`` with ``T(g6) = {12}``.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit


def paper_example() -> Circuit:
    """The paper's Figure 1 circuit with its exact line numbering."""
    b = CircuitBuilder("paper_example")
    for name in ("1", "2", "3", "4"):
        b.input(name)
    b.branch("5", of="2")
    b.branch("6", of="2")
    b.branch("7", of="3")
    b.branch("8", of="3")
    b.gate("9", GateType.AND, ["1", "5"])
    b.gate("10", GateType.AND, ["6", "7"])
    b.gate("11", GateType.OR, ["8", "4"])
    for name in ("9", "10", "11"):
        b.output(name)
    return b.build(auto_branch=False)


def paper_example_ascii() -> str:
    """ASCII rendering of Figure 1 for the CLI."""
    return "\n".join(
        [
            "1 ----------------&",
            "        5         | 9   (output)",
            "2 --+----------- &",
            "    |   6",
            "    +----------- &",
            "        7         | 10  (output)",
            "3 --+----------- &",
            "    |   8",
            "    +----------- +",
            "                  | 11  (output)",
            "4 -------------- +",
        ]
    )


def c17() -> Circuit:
    """The ISCAS-85 c17 benchmark (6 NAND gates, 5 inputs, 2 outputs)."""
    b = CircuitBuilder("c17")
    for name in ("1", "2", "3", "6", "7"):
        b.input(name)
    b.gate("10", GateType.NAND, ["1", "3~0"])
    b.gate("11", GateType.NAND, ["3~1", "6"])
    b.gate("16", GateType.NAND, ["2", "11~0"])
    b.gate("19", GateType.NAND, ["11~1", "7"])
    b.gate("22", GateType.NAND, ["10", "16~0"])
    b.gate("23", GateType.NAND, ["16~1", "19"])
    b.branch("3~0", of="3")
    b.branch("3~1", of="3")
    b.branch("11~0", of="11")
    b.branch("11~1", of="11")
    b.branch("16~0", of="16")
    b.branch("16~1", of="16")
    b.output("22")
    b.output("23")
    return b.build(auto_branch=False)


def and_or_example(width: int = 3) -> Circuit:
    """AND-OR two-level circuit: OR of ``width`` 2-input ANDs."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(f"and_or_{width}")
    terms = []
    for i in range(width):
        x = f"x{i}"
        y = f"y{i}"
        b.input(x)
        b.input(y)
        t = f"t{i}"
        b.gate(t, GateType.AND, [x, y])
        terms.append(t)
    if width == 1:
        b.output(terms[0])
    else:
        b.gate("out", GateType.OR, terms)
        b.output("out")
    return b.build(auto_branch=True)


def xor_tree(depth: int = 3) -> Circuit:
    """Balanced XOR tree with ``2**depth`` inputs (no fault equivalences)."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    b = CircuitBuilder(f"xor_tree_{depth}")
    level = [b.input(f"x{i}") for i in range(1 << depth)]
    counter = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level), 2):
            name = f"n{counter}"
            counter += 1
            b.gate(name, GateType.XOR, [level[i], level[i + 1]])
            nxt.append(name)
        level = nxt
    b.output(level[0])
    return b.build(auto_branch=True)


def majority() -> Circuit:
    """3-input majority: OR of the three 2-input ANDs (with fanout)."""
    b = CircuitBuilder("majority3")
    for name in ("a", "b", "c"):
        b.input(name)
    b.gate("ab", GateType.AND, ["a~0", "b~0"])
    b.gate("bc", GateType.AND, ["b~1", "c~0"])
    b.gate("ac", GateType.AND, ["a~1", "c~1"])
    for stem in ("a", "b", "c"):
        b.branch(f"{stem}~0", of=stem)
        b.branch(f"{stem}~1", of=stem)
    b.gate("maj", GateType.OR, ["ab", "bc", "ac"])
    b.output("maj")
    return b.build(auto_branch=False)
