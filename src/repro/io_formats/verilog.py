"""Structural Verilog (gate-primitive subset).

Writer and reader for the 1995-style structural netlists EDA flows
exchange: one module, ``input``/``output``/``wire`` declarations, and
gate-primitive instantiations (``and``, ``or``, ``nand``, ``nor``,
``not``, ``buf``, ``xor``, ``xnor``) whose first terminal is the output.
Constants are emitted as ``assign`` of ``1'b0`` / ``1'b1``.

Like the other writers, fanout branch lines are collapsed to their stems
on write and re-inserted by the builder on read, so write→parse
round-trips to a functionally identical normal-form circuit.
"""

from __future__ import annotations

import re

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit, LineKind
from repro.errors import ParseError

_PRIMITIVES = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
}
_GATE_TO_PRIMITIVE = {v: k for k, v in _PRIMITIVES.items()}

_IDENT = r"[A-Za-z_\\][A-Za-z0-9_$.\[\]~']*"
_MODULE_RE = re.compile(rf"module\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_DECL_RE = re.compile(rf"(input|output|wire)\s+(.*?);", re.S)
_INST_RE = re.compile(
    rf"({'|'.join(_PRIMITIVES)})\s+({_IDENT})?\s*\((.*?)\)\s*;", re.S
)
_ASSIGN_RE = re.compile(rf"assign\s+({_IDENT})\s*=\s*1'b([01])\s*;")


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


def _sanitize(name: str) -> str:
    return name.strip().lstrip("\\")


def parse_verilog(text: str, name: str | None = None) -> Circuit:
    """Parse a structural Verilog module into a normal-form circuit."""
    body = _strip_comments(text)
    module = _MODULE_RE.search(body)
    if module is None:
        raise ParseError("no module declaration found")
    module_name = name or module.group(1)

    inputs: list[str] = []
    outputs: list[str] = []
    for kind, names in _DECL_RE.findall(body):
        entries = [_sanitize(n) for n in names.split(",") if n.strip()]
        if kind == "input":
            inputs.extend(entries)
        elif kind == "output":
            outputs.extend(entries)
    if not inputs:
        raise ParseError("module declares no inputs")
    if not outputs:
        raise ParseError("module declares no outputs")

    builder = CircuitBuilder(module_name)
    for nm in inputs:
        builder.input(nm)
    for prim, _inst, terms in _INST_RE.findall(body):
        terminals = [_sanitize(t) for t in terms.split(",") if t.strip()]
        if len(terminals) < 2:
            raise ParseError(f"{prim} instance needs >= 2 terminals")
        out, fanin = terminals[0], terminals[1:]
        builder.gate(out, _PRIMITIVES[prim], fanin)
    for target, value in _ASSIGN_RE.findall(body):
        builder.const(_sanitize(target), int(value))
    for nm in outputs:
        builder.output(nm)
    return builder.build(auto_branch=True)


def write_verilog(circuit: Circuit) -> str:
    """Serialize a circuit as a structural Verilog module."""

    def stem_name(lid: int) -> str:
        line = circuit.lines[lid]
        if line.kind is LineKind.BRANCH:
            return circuit.lines[line.fanin[0]].name
        return line.name

    def ident(nm: str) -> str:
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", nm):
            return nm
        return f"\\{nm} "  # escaped identifier (trailing space required)

    input_names = [circuit.lines[i].name for i in circuit.inputs]
    output_names = [circuit.lines[o].name for o in circuit.outputs]
    ports = ", ".join(ident(n) for n in input_names + output_names)
    lines = [f"// {circuit.name}", f"module {circuit.name} ({ports});"]
    lines.append("  input " + ", ".join(ident(n) for n in input_names) + ";")
    lines.append(
        "  output " + ", ".join(ident(n) for n in output_names) + ";"
    )
    wires = [
        ln.name
        for ln in circuit.lines
        if ln.kind is LineKind.GATE and not ln.is_output
    ]
    if wires:
        lines.append("  wire " + ", ".join(ident(n) for n in wires) + ";")
    counter = 0
    for line in circuit.lines:
        if line.kind is not LineKind.GATE:
            continue
        gt = line.gate_type
        if gt is GateType.CONST0:
            lines.append(f"  assign {ident(line.name)} = 1'b0;")
            continue
        if gt is GateType.CONST1:
            lines.append(f"  assign {ident(line.name)} = 1'b1;")
            continue
        prim = _GATE_TO_PRIMITIVE[gt]
        terms = ", ".join(
            [ident(line.name)] + [ident(stem_name(f)) for f in line.fanin]
        )
        lines.append(f"  {prim} g{counter} ({terms});")
        counter += 1
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
