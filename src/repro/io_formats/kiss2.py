"""KISS2 finite-state-machine format (the MCNC benchmark interchange).

A KISS2 file is a PLA-style cover of an FSM::

    .i 2          # input bits
    .o 1          # output bits
    .p 11         # number of product terms (rows)
    .s 4          # number of states
    .r s0         # reset state
    -0 s0 s1 0    # input-cube  present-state  next-state  output-bits
    ...
    .e

Input cubes use ``0``/``1``/``-``; output bits use ``0``/``1``/``-``
(a ``-`` output is synthesized as 0, the usual PLA reading).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.fsm.machine import Fsm, Transition


def parse_kiss2(text: str, name: str = "fsm") -> Fsm:
    """Parse KISS2 text into an :class:`~repro.fsm.machine.Fsm`."""
    num_inputs = num_outputs = None
    declared_terms = declared_states = None
    reset_state = None
    transitions: list[Transition] = []
    state_order: list[str] = []
    seen_states: set[str] = set()

    def note_state(s: str) -> None:
        if s not in seen_states:
            seen_states.add(s)
            state_order.append(s)

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".e":
                break
            if len(parts) < 2:
                raise ParseError(f"directive {directive} needs a value", line_no)
            if directive == ".i":
                num_inputs = int(parts[1])
            elif directive == ".o":
                num_outputs = int(parts[1])
            elif directive == ".p":
                declared_terms = int(parts[1])
            elif directive == ".s":
                declared_states = int(parts[1])
            elif directive == ".r":
                reset_state = parts[1]
            else:
                raise ParseError(f"unknown directive {directive!r}", line_no)
            continue
        fields = line.split()
        if len(fields) != 4:
            raise ParseError(
                f"transition row needs 4 fields, got {len(fields)}", line_no
            )
        cube, present, nxt, output = fields
        if num_inputs is None or num_outputs is None:
            raise ParseError(".i/.o must precede transition rows", line_no)
        if len(cube) != num_inputs:
            raise ParseError(
                f"input cube {cube!r} width != .i {num_inputs}", line_no
            )
        if len(output) != num_outputs:
            raise ParseError(
                f"output {output!r} width != .o {num_outputs}", line_no
            )
        if any(c not in "01-" for c in cube):
            raise ParseError(f"bad input cube {cube!r}", line_no)
        if any(c not in "01-" for c in output):
            raise ParseError(f"bad output bits {output!r}", line_no)
        note_state(present)
        note_state(nxt)
        transitions.append(Transition(cube, present, nxt, output))

    if num_inputs is None or num_outputs is None:
        raise ParseError("missing .i or .o directive")
    if not transitions:
        raise ParseError("no transition rows")
    if declared_terms is not None and declared_terms != len(transitions):
        raise ParseError(
            f".p declares {declared_terms} terms, file has {len(transitions)}"
        )
    if declared_states is not None and declared_states != len(state_order):
        raise ParseError(
            f".s declares {declared_states} states, file uses "
            f"{len(state_order)}"
        )
    if reset_state is None:
        reset_state = transitions[0].present
    elif reset_state not in seen_states:
        raise ParseError(f"reset state {reset_state!r} never appears")
    return Fsm(
        name=name,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        states=state_order,
        reset_state=reset_state,
        transitions=transitions,
    )


def write_kiss2(fsm: Fsm) -> str:
    """Serialize an FSM back to KISS2 text (round-trips with the parser)."""
    lines = [
        f".i {fsm.num_inputs}",
        f".o {fsm.num_outputs}",
        f".p {len(fsm.transitions)}",
        f".s {len(fsm.states)}",
        f".r {fsm.reset_state}",
    ]
    for t in fsm.transitions:
        lines.append(f"{t.input_cube} {t.present} {t.next} {t.output}")
    lines.append(".e")
    return "\n".join(lines) + "\n"
