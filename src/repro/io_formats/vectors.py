"""Test-vector files (the tester-facing artifact of n-detection sets).

Plain text, one binary vector per line (MSB = input 1, matching the
library's decimal convention), ``#`` comments, blank lines ignored::

    # n=3 detection test set for keyb (12 inputs)
    000101001101
    111000110010

:func:`write_vectors` / :func:`parse_vectors` round-trip; the CLI's
``gen-tests`` command uses them to export generated test sets.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ParseError


def write_vectors(
    vectors: Iterable[int],
    num_inputs: int,
    comment: str | None = None,
) -> str:
    """Render decimal vectors as an MSB-first binary vector file."""
    lines = []
    if comment:
        for part in comment.splitlines():
            lines.append(f"# {part}")
    limit = 1 << num_inputs
    for v in vectors:
        if not 0 <= v < limit:
            raise ParseError(
                f"vector {v} out of range for {num_inputs} inputs"
            )
        lines.append(format(v, f"0{num_inputs}b"))
    return "\n".join(lines) + "\n"


def parse_vectors(text: str, num_inputs: int | None = None) -> list[int]:
    """Parse a vector file; returns decimal vectors in file order.

    When ``num_inputs`` is given every row must have that width;
    otherwise the first row fixes the width.
    """
    vectors: list[int] = []
    width = num_inputs
    for line_no, raw in enumerate(text.splitlines(), start=1):
        row = raw.split("#", 1)[0].strip()
        if not row:
            continue
        if any(ch not in "01" for ch in row):
            raise ParseError(f"bad vector row {row!r}", line_no)
        if width is None:
            width = len(row)
        elif len(row) != width:
            raise ParseError(
                f"vector width {len(row)} != expected {width}", line_no
            )
        vectors.append(int(row, 2))
    return vectors
