"""Netlist / FSM / vector file formats.

``bench``
    ISCAS-style ``.bench`` (INPUT/OUTPUT/gate assignments).
``blif``
    Combinational BLIF subset (.model/.inputs/.outputs/.names).
``kiss2``
    KISS2 finite-state-machine covers (the MCNC benchmark format).
``verilog``
    Structural Verilog gate-primitive subset.
``vectors``
    Plain-text test-vector files (one MSB-first binary row per test).
"""

from repro.io_formats.bench import parse_bench, write_bench
from repro.io_formats.blif import parse_blif, write_blif
from repro.io_formats.kiss2 import parse_kiss2, write_kiss2
from repro.io_formats.verilog import parse_verilog, write_verilog
from repro.io_formats.vectors import parse_vectors, write_vectors

__all__ = [
    "parse_bench",
    "write_bench",
    "parse_blif",
    "write_blif",
    "parse_kiss2",
    "write_kiss2",
    "parse_verilog",
    "write_verilog",
    "parse_vectors",
    "write_vectors",
]
