"""Netlist / FSM / vector file formats.

``bench``
    ISCAS-style ``.bench`` (INPUT/OUTPUT/gate assignments).
``blif``
    Combinational BLIF subset (.model/.inputs/.outputs/.names).
``kiss2``
    KISS2 finite-state-machine covers (the MCNC benchmark format).
``verilog``
    Structural Verilog gate-primitive subset.
``vectors``
    Plain-text test-vector files (one MSB-first binary row per test).

:func:`parse_netlist` dispatches over the combinational netlist
dialects by format name — the analysis service accepts inline circuit
sources through it (``kiss2`` covers FSMs, not netlists, so it is not
in the dispatch table).
"""

from repro.io_formats.bench import parse_bench, write_bench
from repro.io_formats.blif import parse_blif, write_blif
from repro.io_formats.kiss2 import parse_kiss2, write_kiss2
from repro.io_formats.verilog import parse_verilog, write_verilog
from repro.io_formats.vectors import parse_vectors, write_vectors

#: Format names :func:`parse_netlist` accepts.
NETLIST_FORMATS: tuple[str, ...] = ("bench", "blif", "verilog")


def parse_netlist(fmt: str, text: str, name: str | None = None):
    """Parse a combinational netlist source in the named dialect.

    ``fmt`` is one of :data:`NETLIST_FORMATS`; ``name`` overrides the
    circuit name for dialects that accept one (``bench`` requires a
    non-empty fallback, so ``None`` becomes ``"bench"`` there, matching
    :func:`parse_bench`'s own default).
    """
    from repro.errors import ParseError

    if fmt == "bench":
        return parse_bench(text, name=name if name is not None else "bench")
    if fmt == "blif":
        return parse_blif(text, name=name)
    if fmt == "verilog":
        return parse_verilog(text, name=name)
    raise ParseError(
        f"unknown netlist format {fmt!r}; choose from "
        f"{', '.join(NETLIST_FORMATS)}"
    )


__all__ = [
    "NETLIST_FORMATS",
    "parse_netlist",
    "parse_bench",
    "write_bench",
    "parse_blif",
    "write_blif",
    "parse_kiss2",
    "write_kiss2",
    "parse_verilog",
    "write_verilog",
    "parse_vectors",
    "write_vectors",
]
