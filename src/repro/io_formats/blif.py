"""Combinational BLIF subset.

Supported directives: ``.model``, ``.inputs``, ``.outputs``, ``.names``,
``.end`` (with ``\\`` line continuations and ``#`` comments).  Each
``.names`` block is a single-output SOP cover; ON-set covers (rows ending
in 1) map to AND-OR logic, OFF-set covers (rows ending in 0) to
AND-OR-NOT.  Latch/clock directives are rejected — the analysis operates
on combinational logic only (the FSM benchmarks enter through KISS2).
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit, LineKind
from repro.errors import ParseError


def _logical_lines(text: str) -> list[tuple[int, str]]:
    """Join continuations, strip comments; returns (line_no, text) pairs."""
    out: list[tuple[int, str]] = []
    pending = ""
    pending_no = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not pending:
            pending_no = line_no
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        pending += line
        if pending.strip():
            out.append((pending_no, pending.strip()))
        pending = ""
    if pending.strip():
        out.append((pending_no, pending.strip()))
    return out


class _NamesBlock:
    def __init__(self, signals: list[str], line_no: int):
        if not signals:
            raise ParseError(".names needs at least one signal", line_no)
        self.inputs = signals[:-1]
        self.output = signals[-1]
        self.rows: list[tuple[str, str]] = []
        self.line_no = line_no


def parse_blif(text: str, name: str | None = None) -> Circuit:
    """Parse a combinational BLIF model into a normal-form circuit."""
    model_name = name or "blif"
    inputs: list[str] = []
    outputs: list[str] = []
    blocks: list[_NamesBlock] = []
    current: _NamesBlock | None = None

    for line_no, line in _logical_lines(text):
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".model":
                if len(parts) > 1 and name is None:
                    model_name = parts[1]
                current = None
            elif directive == ".inputs":
                inputs.extend(parts[1:])
                current = None
            elif directive == ".outputs":
                outputs.extend(parts[1:])
                current = None
            elif directive == ".names":
                current = _NamesBlock(parts[1:], line_no)
                blocks.append(current)
            elif directive == ".end":
                break
            elif directive in (".latch", ".clock"):
                raise ParseError(
                    f"{directive} unsupported (combinational subset only)",
                    line_no,
                )
            else:
                raise ParseError(f"unknown directive {directive!r}", line_no)
            continue
        if current is None:
            raise ParseError(f"cover row outside .names: {line!r}", line_no)
        fields = line.split()
        if len(current.inputs) == 0:
            if len(fields) != 1 or fields[0] not in ("0", "1"):
                raise ParseError(f"bad constant row {line!r}", line_no)
            current.rows.append(("", fields[0]))
        else:
            if len(fields) != 2:
                raise ParseError(f"bad cover row {line!r}", line_no)
            cube, value = fields
            if len(cube) != len(current.inputs):
                raise ParseError(
                    f"cube {cube!r} width != {len(current.inputs)} inputs",
                    line_no,
                )
            if any(c not in "01-" for c in cube) or value not in "01":
                raise ParseError(f"bad cover row {line!r}", line_no)
            current.rows.append((cube, value))

    if not inputs:
        raise ParseError("missing .inputs")
    if not outputs:
        raise ParseError("missing .outputs")

    builder = CircuitBuilder(model_name)
    for nm in inputs:
        builder.input(nm)

    # Auxiliary names must not collide with any signal of the parsed
    # model (a model written by write_blif may itself contain names from
    # an earlier parse's fresh() counter).
    taken: set[str] = set(inputs) | set(outputs)
    for block in blocks:
        taken.add(block.output)
        taken.update(block.inputs)
    aux = 0

    def fresh(prefix: str) -> str:
        nonlocal aux
        while True:
            aux += 1
            name = f"_{prefix}{aux}"
            if name not in taken:
                taken.add(name)
                return name

    inverters: dict[str, str] = {}

    def inverted(signal: str) -> str:
        inv = inverters.get(signal)
        if inv is None:
            inv = fresh("inv_")
            builder.gate(inv, GateType.NOT, [signal])
            inverters[signal] = inv
        return inv

    def row_literals(block: _NamesBlock, cube: str) -> list[str] | None:
        """Literal lines bound by a cube row; None for a tautology row."""
        literals = []
        for pos, ch in enumerate(cube):
            if ch == "1":
                literals.append(block.inputs[pos])
            elif ch == "0":
                literals.append(inverted(block.inputs[pos]))
        return literals or None

    for block in blocks:
        if not block.rows:
            builder.const(block.output, 0)
            continue
        polarities = {v for _c, v in block.rows}
        if len(polarities) > 1:
            raise ParseError(
                f".names {block.output}: mixed ON/OFF rows", block.line_no
            )
        polarity = polarities.pop()
        if not block.inputs:
            builder.const(block.output, int(polarity))
            continue
        onset = polarity == "1"
        if len(block.rows) == 1:
            # Single-row covers map straight onto one gate named as the
            # block output — no auxiliary wrapping, so writer output
            # re-parses to the identical structure (idempotent
            # round-trips).
            cube = block.rows[0][0]
            if len(block.inputs) == 1 and cube in ("0", "1"):
                invert = (cube == "1") != onset
                builder.gate(
                    block.output,
                    GateType.NOT if invert else GateType.BUF,
                    [block.inputs[0]],
                )
                continue
            literals = row_literals(block, cube)
            if literals is None:
                builder.const(block.output, 1 if onset else 0)
            elif len(literals) == 1:
                gt = GateType.BUF if onset else GateType.NOT
                builder.gate(block.output, gt, [literals[0]])
            else:
                gt = GateType.AND if onset else GateType.NAND
                builder.gate(block.output, gt, literals)
            continue
        terms: list[str] = []
        tautology = False
        for cube, _v in block.rows:
            literals = row_literals(block, cube)
            if literals is None:
                tautology = True
                break
            if len(literals) == 1:
                terms.append(literals[0])
            else:
                t = fresh("t")
                builder.gate(t, GateType.AND, literals)
                terms.append(t)
        if tautology:
            builder.const(block.output, 1 if onset else 0)
            continue
        gt = GateType.OR if onset else GateType.NOR
        builder.gate(block.output, gt, terms)
    for nm in outputs:
        builder.output(nm)
    return builder.build(auto_branch=True)


def write_blif(circuit: Circuit) -> str:
    """Serialize a circuit to BLIF (one .names per gate, branches collapsed)."""

    def stem_name(lid: int) -> str:
        line = circuit.lines[lid]
        if line.kind is LineKind.BRANCH:
            return circuit.lines[line.fanin[0]].name
        return line.name

    out = [f".model {circuit.name}"]
    out.append(
        ".inputs " + " ".join(circuit.lines[i].name for i in circuit.inputs)
    )
    out.append(
        ".outputs " + " ".join(circuit.lines[o].name for o in circuit.outputs)
    )
    for line in circuit.lines:
        if line.kind is not LineKind.GATE:
            continue
        fanin_names = [stem_name(f) for f in line.fanin]
        sig = " ".join(fanin_names + [line.name])
        gt = line.gate_type
        k = len(fanin_names)
        out.append(f".names {sig}")
        if gt is GateType.CONST0:
            pass
        elif gt is GateType.CONST1:
            out.append("1")
        elif gt is GateType.BUF:
            out.append("1 1")
        elif gt is GateType.NOT:
            out.append("0 1")
        elif gt is GateType.AND:
            out.append("1" * k + " 1")
        elif gt is GateType.NAND:
            out.append("1" * k + " 0")
        elif gt is GateType.OR:
            for i in range(k):
                out.append("-" * i + "1" + "-" * (k - i - 1) + " 1")
        elif gt is GateType.NOR:
            out.append("0" * k + " 1")
        elif gt in (GateType.XOR, GateType.XNOR):
            want = 1 if gt is GateType.XOR else 0
            for m in range(1 << k):
                bits = [(m >> (k - 1 - i)) & 1 for i in range(k)]
                if sum(bits) % 2 == want:
                    out.append("".join(map(str, bits)) + " 1")
        else:  # pragma: no cover - future gate types
            raise ParseError(f"cannot serialize gate type {gt!r}")
    out.append(".end")
    return "\n".join(out) + "\n"
