""".bench (ISCAS-85/89 style) netlist format.

Grammar subset::

    # comment
    INPUT(a)
    OUTPUT(y)
    y = NAND(a, b)
    z = NOT(y)

Gate names: AND, OR, NAND, NOR, NOT/INV, BUF/BUFF, XOR, XNOR.  Fanout
branches are inserted automatically on read (``stem~k`` names); on write,
branch lines are collapsed back to their stems, so write→parse round-trips
to a structurally equivalent circuit.
"""

from __future__ import annotations

import re

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import gate_type_from_name
from repro.circuit.netlist import Circuit, LineKind
from repro.errors import CircuitError, ParseError

_INPUT_RE = re.compile(r"^INPUT\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_OUTPUT_RE = re.compile(r"^OUTPUT\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z0-9_]+)\s*\(\s*(.*?)\s*\)$"
)


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` text into a normal-form circuit."""
    builder = CircuitBuilder(name)
    outputs: list[str] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _INPUT_RE.match(line)
        if m:
            builder.input(m.group(1))
            continue
        m = _OUTPUT_RE.match(line)
        if m:
            outputs.append(m.group(1))
            continue
        m = _GATE_RE.match(line)
        if m:
            out, gate_name, args = m.groups()
            fanin = [a.strip() for a in args.split(",") if a.strip()]
            # Only a CircuitError is a parse failure here (unknown gate
            # name); anything else — up to and including bugs in the
            # lookup itself — must surface as what it is rather than be
            # misreported as a malformed .bench line.
            try:
                gt = gate_type_from_name(gate_name)
            except CircuitError as exc:
                raise ParseError(
                    f"in {name!r}: {exc}", line_no
                ) from exc
            builder.gate(out, gt, fanin)
            continue
        raise ParseError(f"unrecognized line: {raw!r}", line_no)
    if not outputs:
        raise ParseError("no OUTPUT(...) declarations")
    for out in outputs:
        builder.output(out)
    return builder.build(auto_branch=True)


def write_bench(circuit: Circuit) -> str:
    """Serialize a circuit to ``.bench`` text (branches collapsed)."""

    def stem_name(lid: int) -> str:
        line = circuit.lines[lid]
        if line.kind is LineKind.BRANCH:
            return circuit.lines[line.fanin[0]].name
        return line.name

    lines = [f"# {circuit.name}"]
    for lid in circuit.inputs:
        lines.append(f"INPUT({circuit.lines[lid].name})")
    for lid in circuit.outputs:
        lines.append(f"OUTPUT({circuit.lines[lid].name})")
    for line in circuit.lines:
        if line.kind is not LineKind.GATE:
            continue
        args = ", ".join(stem_name(f) for f in line.fanin)
        lines.append(f"{line.name} = {line.gate_type.name}({args})")
    return "\n".join(lines) + "\n"
