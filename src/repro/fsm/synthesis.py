"""Synthesis of an FSM's combinational logic (multilevel from the cover).

The synthesized circuit computes the next-state and output functions of
a KISS2 cover.  Its primary inputs are, in vector-MSB-first order, the
FSM's inputs ``x0 .. x{i-1}`` followed by the present-state bits
``s0 .. s{b-1}``; its primary outputs are the next-state bits
``ns0 .. ns{b-1}`` followed by the FSM outputs ``z0 .. z{o-1}``.

Pipeline (mirroring the classic MCNC flow — espresso-style cover
cleanup, algebraic factoring, technology mapping to small-fanin gates):

1. per-function cover cleanup (duplicate/contained-cube removal,
   distance-1 merging) — :func:`repro.fsm.minimize.merge_cover`;
2. one AND *term* per cover cube (literals: bound input bits plus the
   present-state code), shared across all functions that use the cube;
3. greedy common-pair extraction: literal pairs occurring in several
   terms (and term pairs occurring in several output ORs) become shared
   sub-gates — the multilevel sharing/reconvergence that shapes the
   paper's ``nmin`` spread;
4. bounded-arity tree mapping of the remaining wide AND/OR gates.

Fanout goes through explicit branch lines (inserted by the builder), so
the synthesized netlist is in normal form and every stem/branch is a
stuck-at fault site — exactly the fault-site model of the paper.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import ReproError
from repro.fsm.encoding import StateEncoding, encode_states
from repro.fsm.machine import Fsm
from repro.fsm.minimize import SopCube, merge_cover


def _row_cube(
    fsm: Fsm, encoding: StateEncoding, input_cube: str, present: str
) -> SopCube:
    """Combined cube over (inputs + state bits) for one cover row."""
    state_bits = encoding.code_bits(present)
    return SopCube.from_string(input_cube + state_bits)


def synthesize_fsm(
    fsm: Fsm,
    encoding: str | StateEncoding = "binary",
    merge_terms: bool = True,
    max_arity: int | None = 3,
    share_logic: bool = True,
    name: str | None = None,
) -> Circuit:
    """Build the combinational logic of ``fsm`` as a normal-form circuit.

    Parameters
    ----------
    fsm:
        The machine (validated; covers must be deterministic).
    encoding:
        Encoding strategy name (``binary``/``gray``/``onehot``) or a
        ready :class:`StateEncoding`.
    merge_terms:
        Apply the per-function distance-1/containment cleanup of
        :func:`repro.fsm.minimize.merge_cover` before mapping (keeps the
        shared-term structure; only removes redundancy).
    max_arity:
        Technology-mapping bound: AND/OR gates wider than this are
        decomposed into balanced trees (``None`` keeps the flat PLA
        planes).  The MCNC-era gate-level netlists the paper analyzed
        were mapped to small-fanin gates; the tree nodes are additional
        multi-input gates — i.e. additional bridging-fault sites — and
        their intermediate detection sets give the analysis its spread.
    share_logic:
        Enable the greedy common-pair extraction (step 3 of the
        pipeline).  Disabling it yields structurally independent terms —
        the synthesis ablation bench measures how much of the nmin
        spread comes from sharing.
    """
    fsm.check()
    if isinstance(encoding, str):
        enc = encode_states(fsm.states, encoding)
    else:
        enc = encoding
    num_x = fsm.num_inputs
    num_s = enc.num_bits
    num_ns = enc.num_bits
    num_z = fsm.num_outputs
    width = num_x + num_s

    # --- collect the cover per output function -------------------------
    # Shared term table: cube string -> term id (shared across functions).
    functions: list[list[SopCube]] = [[] for _ in range(num_ns + num_z)]
    for t in fsm.transitions:
        cube = _row_cube(fsm, enc, t.input_cube, t.present)
        next_code = enc.code_bits(t.next)
        for j, ch in enumerate(next_code):
            if ch == "1":
                functions[j].append(cube)
        for j, ch in enumerate(t.output):
            if ch == "1":
                functions[num_ns + j].append(cube)
    if merge_terms:
        functions = [merge_cover(cubes) for cubes in functions]

    # --- build the netlist ---------------------------------------------
    b = CircuitBuilder(name or fsm.name)
    input_names = [f"x{i}" for i in range(num_x)] + [
        f"s{i}" for i in range(num_s)
    ]
    for nm in input_names:
        b.input(nm)

    inverters: dict[int, str] = {}

    def literal(var: int, polarity: int) -> str:
        """Line carrying variable ``var`` (MSB-first index) or its complement."""
        if polarity == 1:
            return input_names[var]
        inv = inverters.get(var)
        if inv is None:
            inv = f"n_{input_names[var]}"
            b.gate(inv, GateType.NOT, [input_names[var]])
            inverters[var] = inv
        return inv

    shared_counter = 0

    def extract_common_pairs(
        operand_sets: list[list[str]], gate_type: GateType, prefix: str
    ) -> list[list[str]]:
        """Greedy algebraic factoring: share frequent operand pairs.

        Any unordered operand pair occurring in two or more of the sets
        is replaced by a dedicated 2-input gate that all of them reuse.
        Repeats until no pair occurs twice.  Logic is unchanged
        (associativity); structure gains fanout and reconvergence.
        """
        nonlocal shared_counter
        sets = [list(s) for s in operand_sets]
        if not share_logic:
            return sets
        while True:
            pair_count: dict[tuple[str, str], int] = {}
            for s in sets:
                seen = set(s)
                ordered = sorted(seen)
                for i, a in enumerate(ordered):
                    for bb in ordered[i + 1:]:
                        pair_count[(a, bb)] = pair_count.get((a, bb), 0) + 1
            best_pair = None
            best_n = 1
            for pair, cnt in sorted(pair_count.items()):
                if cnt > best_n:
                    best_pair, best_n = pair, cnt
            if best_pair is None:
                return sets
            a, bb = best_pair
            nm = f"{prefix}{shared_counter}"
            shared_counter += 1
            b.gate(nm, gate_type, [a, bb])
            for s in sets:
                if a in s and bb in s:
                    s.remove(a)
                    s.remove(bb)
                    s.append(nm)

    tree_counter = 0

    def gate_tree(gate_type: GateType, operands: list[str], out_name: str) -> None:
        """Emit ``out_name = gate_type(operands)`` as a bounded-arity tree."""
        nonlocal tree_counter
        if max_arity is None or len(operands) <= max_arity:
            b.gate(out_name, gate_type, operands)
            return
        level = list(operands)
        while len(level) > max_arity:
            nxt = []
            for i in range(0, len(level), max_arity):
                chunk = level[i : i + max_arity]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                    continue
                nm = f"i{tree_counter}"
                tree_counter += 1
                b.gate(nm, gate_type, chunk)
                nxt.append(nm)
            level = nxt
        b.gate(out_name, gate_type, level)

    # ---- AND plane: unique terms, then shared-pair factoring ----------
    unique_cubes: dict[str, SopCube] = {}
    for cubes in functions:
        for cube in cubes:
            unique_cubes.setdefault(cube.to_string(), cube)
    cube_keys = list(unique_cubes)
    literal_sets: list[list[str]] = []
    for key in cube_keys:
        cube = unique_cubes[key]
        literals = []
        for var in range(width):
            bitpos = width - 1 - var
            if (cube.care >> bitpos) & 1:
                literals.append(literal(var, (cube.value >> bitpos) & 1))
        if not literals:
            raise ReproError(f"tautological term in FSM {fsm.name!r} cover")
        literal_sets.append(literals)
    literal_sets = extract_common_pairs(literal_sets, GateType.AND, "a")

    term_names: dict[str, str] = {}
    for key, operands in zip(cube_keys, literal_sets, strict=True):
        if len(operands) == 1:
            term_names[key] = operands[0]
        else:
            nm = f"t{len(term_names)}"
            gate_tree(GateType.AND, operands, nm)
            term_names[key] = nm

    # ---- OR plane: shared-pair factoring across the output functions --
    output_names = [f"ns{j}" for j in range(num_ns)] + [
        f"z{j}" for j in range(num_z)
    ]
    or_sets = [
        [term_names[c.to_string()] for c in cubes] for cubes in functions
    ]
    or_sets = extract_common_pairs(or_sets, GateType.OR, "o")

    for out_nm, operands in zip(output_names, or_sets, strict=True):
        if not operands:
            b.const(out_nm, 0)
        elif len(operands) == 1:
            b.gate(out_nm, GateType.BUF, [operands[0]])
        else:
            gate_tree(GateType.OR, operands, out_nm)
        b.output(out_nm)

    return b.build(auto_branch=True)
