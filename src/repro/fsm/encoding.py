"""State assignment (encoding) strategies.

The combinational logic of an FSM depends on how states map to bit
codes.  Three classic strategies are provided:

* ``binary`` — states numbered in declaration order (minimum bits);
* ``gray``  — binary order re-coded so consecutive states differ in one
  bit (minimum bits);
* ``onehot`` — one bit per state.

The paper does not fix the authors' encoding; ``binary`` is this
library's default, and the encoding ablation bench measures how the
choice shifts the ``nmin`` distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


def _gray(i: int) -> int:
    return i ^ (i >> 1)


@dataclass(frozen=True)
class StateEncoding:
    """Mapping from state names to bit codes.

    ``codes[state]`` is the integer code; bit ``num_bits - 1`` is state
    bit 0 (MSB-first, matching the library's vector convention).
    """

    strategy: str
    num_bits: int
    codes: dict[str, int]

    def code_bits(self, state: str) -> str:
        """The state's code as an MSB-first bit string."""
        return format(self.codes[state], f"0{self.num_bits}b")

    def decode(self, code: int) -> str | None:
        """State name for a code, or None for unused codes."""
        for state, c in self.codes.items():
            if c == code:
                return state
        return None


def encode_states(
    states: list[str], strategy: str = "binary"
) -> StateEncoding:
    """Build a :class:`StateEncoding` for the given strategy."""
    if not states:
        raise ReproError("cannot encode an empty state list")
    if len(set(states)) != len(states):
        raise ReproError("duplicate state names")
    n = len(states)
    if strategy == "binary":
        bits = max(1, (n - 1).bit_length())
        codes = {s: i for i, s in enumerate(states)}
    elif strategy == "gray":
        bits = max(1, (n - 1).bit_length())
        codes = {s: _gray(i) for i, s in enumerate(states)}
    elif strategy == "onehot":
        bits = n
        codes = {s: 1 << (n - 1 - i) for i, s in enumerate(states)}
    else:
        raise ReproError(
            f"unknown encoding strategy {strategy!r} "
            "(use binary, gray, or onehot)"
        )
    return StateEncoding(strategy=strategy, num_bits=bits, codes=codes)
