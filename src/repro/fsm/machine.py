"""Finite-state-machine model (KISS2 semantics).

An :class:`Fsm` is a PLA-style cover: each :class:`Transition` row fires
when the present state matches and the input vector lies inside the
row's input cube.  Deterministic machines have, for every state, pairwise
disjoint input cubes; :meth:`Fsm.validate` checks this (the synthesized
combinational logic of a non-deterministic cover would OR the next-state
codes of the overlapping rows, which is almost never intended).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True, slots=True)
class Transition:
    """One KISS2 row: ``input_cube present next output``."""

    input_cube: str
    present: str
    next: str
    output: str

    def matches(self, input_vector: int, num_inputs: int) -> bool:
        """Does the (MSB-first) input vector lie inside the input cube?"""
        for pos, ch in enumerate(self.input_cube):
            if ch == "-":
                continue
            bit = (input_vector >> (num_inputs - 1 - pos)) & 1
            if bit != int(ch):
                return False
        return True


def _cubes_intersect(a: str, b: str) -> bool:
    return all(
        ca == "-" or cb == "-" or ca == cb for ca, cb in zip(a, b, strict=True)
    )


@dataclass
class Fsm:
    """A finite-state machine as a KISS2 cover."""

    name: str
    num_inputs: int
    num_outputs: int
    states: list[str]
    reset_state: str
    transitions: list[Transition]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, require_deterministic: bool = True) -> list[str]:
        """Structural checks; returns a list of issue strings."""
        issues: list[str] = []
        known = set(self.states)
        if self.reset_state not in known:
            issues.append(f"reset state {self.reset_state!r} unknown")
        for t in self.transitions:
            if len(t.input_cube) != self.num_inputs:
                issues.append(f"cube {t.input_cube!r} has wrong width")
            if len(t.output) != self.num_outputs:
                issues.append(f"output {t.output!r} has wrong width")
            if t.present not in known:
                issues.append(f"unknown present state {t.present!r}")
            if t.next not in known:
                issues.append(f"unknown next state {t.next!r}")
        if require_deterministic:
            by_state: dict[str, list[Transition]] = {}
            for t in self.transitions:
                by_state.setdefault(t.present, []).append(t)
            for state, rows in by_state.items():
                for i, a in enumerate(rows):
                    for b in rows[i + 1:]:
                        if _cubes_intersect(a.input_cube, b.input_cube):
                            issues.append(
                                f"state {state!r}: overlapping cubes "
                                f"{a.input_cube!r} and {b.input_cube!r}"
                            )
        return issues

    def check(self) -> None:
        """Raise :class:`ReproError` when :meth:`validate` finds issues."""
        issues = self.validate()
        if issues:
            raise ReproError(
                f"FSM {self.name!r} invalid:\n  " + "\n  ".join(issues)
            )

    # ------------------------------------------------------------------
    # Behavioral simulation (reference semantics for synthesis tests)
    # ------------------------------------------------------------------
    def step(self, state: str, input_vector: int) -> tuple[str, str]:
        """(next state, output bits) for one input vector.

        PLA semantics: when no row matches, the next-state code and the
        outputs are all-0 (which the decoder maps to ``states[...]`` with
        code 0 — see :mod:`repro.fsm.encoding`).  Output ``-`` bits read
        as 0.  When several rows match (non-deterministic cover) the
        outputs and next-state codes are OR-ed, mirroring the hardware.
        """
        matching = [
            t
            for t in self.transitions
            if t.present == state and t.matches(input_vector, self.num_inputs)
        ]
        if not matching:
            return ("", "0" * self.num_outputs)
        if len(matching) == 1:
            t = matching[0]
            out = t.output.replace("-", "0")
            return (t.next, out)
        # OR rows together (only reachable for non-deterministic covers).
        out_bits = [0] * self.num_outputs
        next_states = {t.next for t in matching}
        for t in matching:
            for i, ch in enumerate(t.output):
                if ch == "1":
                    out_bits[i] = 1
        nxt = matching[0].next if len(next_states) == 1 else ""
        return (nxt, "".join(str(b) for b in out_bits))

    def reachable_states(self) -> set[str]:
        """States reachable from reset by any input sequence."""
        frontier = [self.reset_state]
        seen = {self.reset_state}
        while frontier:
            state = frontier.pop()
            for t in self.transitions:
                if t.present == state and t.next not in seen:
                    seen.add(t.next)
                    frontier.append(t.next)
        return seen

    def stats(self) -> dict[str, int]:
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "states": len(self.states),
            "terms": len(self.transitions),
        }
