"""Finite-state machines and their synthesis to combinational logic.

The paper evaluates "the combinational logic of MCNC finite-state machine
benchmarks": the FSM's next-state and output functions realized as a
gate-level circuit whose primary inputs are the FSM inputs plus the
present-state bits.  This package provides the FSM model
(:mod:`machine`), state encodings (:mod:`encoding`), PLA-cover cleanup
and exact two-level minimization (:mod:`minimize`), and the synthesis
into a normal-form :class:`~repro.circuit.netlist.Circuit`
(:mod:`synthesis`).
"""

from repro.fsm.machine import Fsm, Transition
from repro.fsm.encoding import StateEncoding, encode_states
from repro.fsm.minimize import (
    SopCube,
    merge_cover,
    quine_mccluskey,
)
from repro.fsm.simulate import (
    Trajectory,
    simulate_circuit_sequence,
    simulate_fsm_sequence,
    trajectories_match,
)
from repro.fsm.synthesis import synthesize_fsm

__all__ = [
    "Fsm",
    "Transition",
    "StateEncoding",
    "encode_states",
    "SopCube",
    "merge_cover",
    "quine_mccluskey",
    "Trajectory",
    "simulate_circuit_sequence",
    "simulate_fsm_sequence",
    "trajectories_match",
    "synthesize_fsm",
]
