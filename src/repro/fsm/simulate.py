"""Sequential (closed-loop) FSM simulation.

The analysis itself treats the FSM's combinational logic with the state
bits as free primary inputs, but validating the synthesis end-to-end
needs the *sequential* view: feed an input sequence, loop the next-state
outputs back into the state inputs, and compare against the behavioral
:meth:`~repro.fsm.machine.Fsm.step` trajectory.

:func:`simulate_fsm_sequence` runs the behavioral model;
:func:`simulate_circuit_sequence` runs the synthesized circuit with
state feedback; :func:`trajectories_match` cross-checks them (used by
tests and by the synthesis confidence checks in examples).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.fsm.encoding import StateEncoding, encode_states
from repro.fsm.machine import Fsm
from repro.simulation.twoval import output_values


@dataclass(frozen=True)
class Trajectory:
    """States visited and outputs produced by an input sequence."""

    states: tuple[str, ...]   # length = len(inputs) + 1 (includes start)
    outputs: tuple[str, ...]  # length = len(inputs)


def simulate_fsm_sequence(
    fsm: Fsm, inputs: list[int], start: str | None = None
) -> Trajectory:
    """Behavioral trajectory from the KISS2 cover.

    An unmatched (state, input) pair follows PLA semantics: the next
    state is the all-zero code (decoded through a binary encoding this
    is the first state) and outputs are 0.
    """
    state = start or fsm.reset_state
    if state not in fsm.states:
        raise SimulationError(f"unknown start state {state!r}")
    enc = encode_states(fsm.states, "binary")
    states = [state]
    outputs = []
    for x in inputs:
        if not 0 <= x < (1 << fsm.num_inputs):
            raise SimulationError(f"input {x} out of range")
        nxt, out = fsm.step(state, x)
        if nxt == "":
            nxt = enc.decode(0) or fsm.states[0]
        outputs.append(out)
        state = nxt
        states.append(state)
    return Trajectory(tuple(states), tuple(outputs))


def simulate_circuit_sequence(
    circuit: Circuit,
    fsm: Fsm,
    inputs: list[int],
    encoding: StateEncoding | None = None,
    start: str | None = None,
) -> Trajectory:
    """Trajectory of the synthesized combinational logic with feedback.

    The circuit must follow the synthesis conventions: primary inputs
    ``x0..x{i-1}, s0..s{b-1}``; outputs ``ns0..ns{b-1}, z0..z{o-1}``.
    Unused next-state codes decode to the first state (code 0 under the
    binary encoding), matching the PLA semantics of the behavioral model.
    """
    enc = encoding or encode_states(fsm.states, "binary")
    b = enc.num_bits
    state = start or fsm.reset_state
    code = enc.codes[state]
    states = [state]
    outputs = []
    for x in inputs:
        vector = (x << b) | code
        response = output_values(circuit, vector)
        ns_bits = response[:b]
        z_bits = response[b : b + fsm.num_outputs]
        code = 0
        for bit in ns_bits:
            code = (code << 1) | bit
        state = enc.decode(code)
        if state is None:
            state = enc.decode(0) or fsm.states[0]
            code = enc.codes[state]
        outputs.append("".join(map(str, z_bits)))
        states.append(state)
    return Trajectory(tuple(states), tuple(outputs))


def trajectories_match(
    fsm: Fsm,
    circuit: Circuit,
    inputs: list[int],
    encoding: StateEncoding | None = None,
) -> bool:
    """True when behavioral and gate-level trajectories agree."""
    behavioral = simulate_fsm_sequence(fsm, inputs)
    gate_level = simulate_circuit_sequence(
        circuit, fsm, inputs, encoding=encoding
    )
    return behavioral == gate_level
