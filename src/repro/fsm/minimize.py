"""Two-level (SOP) cover utilities and exact minimization.

Synthesis uses :func:`merge_cover` — a light, structure-preserving
cleanup of a PLA cover (duplicate removal, containment removal,
distance-1 merging).  :func:`quine_mccluskey` is an exact two-level
minimizer with don't-care support for small variable counts; it backs
the minimization tests and the synthesis-quality ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True, slots=True)
class SopCube:
    """A product term over ``width`` variables.

    ``care`` selects bound variables (bit ``width-1-i`` = variable ``i``,
    MSB-first like everything else); ``value`` holds their polarities.
    """

    width: int
    care: int
    value: int

    def __post_init__(self) -> None:
        mask = (1 << self.width) - 1
        if self.care & ~mask:
            raise ReproError("cube care mask wider than declared width")
        if self.value & ~self.care:
            object.__setattr__(self, "value", self.value & self.care)

    @classmethod
    def from_string(cls, text: str) -> "SopCube":
        care = value = 0
        for ch in text:
            care <<= 1
            value <<= 1
            if ch == "1":
                care |= 1
                value |= 1
            elif ch == "0":
                care |= 1
            elif ch != "-":
                raise ReproError(f"bad cube character {ch!r}")
        return cls(len(text), care, value)

    def to_string(self) -> str:
        chars = []
        for i in range(self.width - 1, -1, -1):
            if not (self.care >> i) & 1:
                chars.append("-")
            else:
                chars.append("1" if (self.value >> i) & 1 else "0")
        return "".join(chars)

    def contains(self, other: "SopCube") -> bool:
        """True when every minterm of ``other`` is inside ``self``."""
        if (self.care & other.care) != self.care:
            return False
        return (other.value & self.care) == self.value

    def covers_minterm(self, minterm: int) -> bool:
        return (minterm & self.care) == self.value

    def num_literals(self) -> int:
        return self.care.bit_count()

    def minterms(self) -> list[int]:
        free = [
            b for b in range(self.width) if not (self.care >> b) & 1
        ]
        out = []
        for combo in range(1 << len(free)):
            v = self.value
            for i, b in enumerate(free):
                if (combo >> i) & 1:
                    v |= 1 << b
            out.append(v)
        return sorted(out)


def _try_merge(a: SopCube, b: SopCube) -> SopCube | None:
    """Merge two cubes differing in exactly one bound literal."""
    if a.care != b.care:
        return None
    diff = a.value ^ b.value
    if diff.bit_count() != 1:
        return None
    return SopCube(a.width, a.care & ~diff, a.value & ~diff)


def merge_cover(cubes: list[SopCube]) -> list[SopCube]:
    """Cheap cover cleanup: dedupe, drop contained cubes, merge pairs.

    Iterates distance-1 merging to a fixed point.  The result covers
    exactly the same minterms as the input (no don't-care expansion), so
    it is safe as a pre-synthesis cleanup.
    """
    cover = list(dict.fromkeys(cubes))
    changed = True
    while changed:
        changed = False
        merged: list[SopCube] = []
        used = [False] * len(cover)
        for i, a in enumerate(cover):
            if used[i]:
                continue
            for j in range(i + 1, len(cover)):
                if used[j]:
                    continue
                m = _try_merge(a, cover[j])
                if m is not None:
                    merged.append(m)
                    used[i] = used[j] = True
                    changed = True
                    break
            if not used[i]:
                merged.append(a)
                used[i] = True
        # Containment removal.
        cover = []
        for c in merged:
            if not any(
                other is not c and other.contains(c) for other in merged
            ):
                if c not in cover:
                    cover.append(c)
    return cover


def quine_mccluskey(
    width: int,
    minterms: list[int],
    dont_cares: list[int] | None = None,
    max_width: int = 14,
) -> list[SopCube]:
    """Exact two-level minimization (primes + essential + greedy cover).

    Returns a minimal-ish cover of ``minterms`` (don't-cares may be used
    by the primes but need not be covered).  Exact prime generation with
    a greedy set cover after essential primes — the classic textbook
    compromise.
    """
    if width > max_width:
        raise ReproError(
            f"quine_mccluskey limited to {max_width} variables, got {width}"
        )
    limit = 1 << width
    onset = sorted(set(minterms))
    dcset = sorted(set(dont_cares or []))
    for m in onset + dcset:
        if not 0 <= m < limit:
            raise ReproError(f"minterm {m} out of range for width {width}")
    if not onset:
        return []
    if len(onset) + len(dcset) == limit:
        return [SopCube(width, 0, 0)]  # tautology

    full_care = limit - 1
    current = {(full_care, m) for m in onset + dcset}
    primes: set[tuple[int, int]] = set()
    while current:
        nxt: set[tuple[int, int]] = set()
        combined: set[tuple[int, int]] = set()
        items = sorted(current)
        by_care: dict[int, list[int]] = {}
        for care, value in items:
            by_care.setdefault(care, []).append(value)
        for care, values in by_care.items():
            vset = set(values)
            for value in values:
                for b in range(width):
                    bit = 1 << b
                    if not care & bit:
                        continue
                    partner = value ^ bit
                    if partner in vset:
                        nxt.add((care & ~bit, value & ~bit))
                        combined.add((care, value))
                        combined.add((care, partner))
        for item in items:
            if item not in combined:
                primes.add(item)
        current = nxt

    prime_cubes = [SopCube(width, care, value) for care, value in sorted(primes)]
    # Essential primes, then greedy cover of the rest.
    remaining = set(onset)
    cover: list[SopCube] = []
    coverage = {
        i: {m for m in onset if c.covers_minterm(m)}
        for i, c in enumerate(prime_cubes)
    }
    for m in onset:
        covering = [i for i, ms in coverage.items() if m in ms]
        if len(covering) == 1:
            i = covering[0]
            if prime_cubes[i] not in cover:
                cover.append(prime_cubes[i])
                remaining -= coverage[i]
    while remaining:
        best = max(
            coverage,
            key=lambda i: (len(coverage[i] & remaining), -prime_cubes[i].num_literals()),
        )
        gain = coverage[best] & remaining
        if not gain:
            raise ReproError("internal error: uncoverable minterms")
        if prime_cubes[best] not in cover:
            cover.append(prime_cubes[best])
        remaining -= gain
    return cover
