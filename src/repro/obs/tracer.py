"""Span tracing: structured JSONL trace events with remote stitching.

A :class:`Tracer` opens named spans (``with tracer.span("table_build",
circuit="lion"): ...``) and writes one JSON object per *finished* span
to a trace file.  Three properties drive the design:

**Zero overhead when off.**  The default tracer is :data:`NULL_TRACER`;
its ``span()`` hands back one shared no-op context manager and its
``event()`` returns immediately, so instrumented hot paths cost a
dictionary literal and an attribute call when tracing is disabled (the
``bench_obs`` benchmark holds this under 2% of a table build).  Tracing
turns on explicitly (``--trace PATH`` on the CLI, :func:`activate` in
code) or through the ``REPRO_TRACE_FILE`` environment variable, which
worker processes inherit.

**Deterministic content.**  Span ids are hierarchical decimal paths
("1", "1.2", "1.2.s3") allocated by per-parent counters, never random;
record keys are emitted sorted; and every timestamp flows through the
injected :class:`~repro.obs.clock.Clock`, so a trace produced under a
:class:`~repro.obs.clock.ManualClock` with a pinned trace id is
byte-for-byte reproducible.  Under the real clock, everything except
``t0``/``dur``/``proc`` is deterministic for a deterministic program.

**Cross-process stitching.**  A span's :meth:`Span.remote` context is a
plain ``(trace_id, span_id)`` tuple that travels inside pickled
:class:`~repro.parallel.worker.ShardTask` payloads and queue task
files.  A worker process (same host via the pool executor, any host via
``repro worker``) opens its shard span with that tuple as ``parent``:
the span adopts the *submitter's* trace id, so ``repro trace summary``
stitches worker-side spans into the submitting run's tree no matter
where they executed.  Shard spans use explicit ids derived from the
parent id and the shard index, so concurrent workers never collide.
"""

from __future__ import annotations

import contextvars
import json
import logging
import os
import threading
from types import TracebackType
from typing import IO, Mapping, Protocol, Union

from repro.obs.clock import Clock, system_clock

__all__ = [
    "JsonlTraceWriter",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "SpanContext",
    "Tracer",
    "activate",
    "current_tracer",
    "event",
    "reset",
    "span",
    "tracing_enabled",
]

#: Environment variable that switches tracing on for a whole process
#: tree (the CLI sets it when ``--trace PATH`` is given, so pool and
#: queue worker processes inherit the destination).
TRACE_FILE_ENV = "REPRO_TRACE_FILE"

#: Pins the trace id (CI fixtures diff traces byte-for-byte with this
#: plus a manual clock; the default id is unique per run).
TRACE_ID_ENV = "REPRO_TRACE_ID"

#: Structured one-line events also land here, so operators see worker
#: lease churn without a trace file (``repro worker`` attaches a
#: stderr handler at INFO).
EVENT_LOGGER = "repro.obs"

AttrValue = Union[str, int, float, bool, None]


class SpanContext:
    """The (trace id, span id) coordinates of one span."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def as_tuple(self) -> tuple[str, str]:
        return (self.trace_id, self.span_id)

    def __repr__(self) -> str:
        return f"SpanContext({self.trace_id!r}, {self.span_id!r})"


#: What ``span(parent=...)`` accepts: an in-process context, the plain
#: tuple form that travels through pickles, or None (ambient nesting).
ParentLike = Union[SpanContext, "tuple[str, str]", None]

_CURRENT: contextvars.ContextVar[SpanContext | None] = (
    contextvars.ContextVar("repro_obs_span", default=None)
)


def current_context() -> SpanContext | None:
    """The ambient span context of this thread/task (None at top level)."""
    return _CURRENT.get()


class TraceWriter(Protocol):
    """Destination for finished span records."""

    def write(self, record: Mapping[str, object]) -> None: ...

    def close(self) -> None: ...


class JsonlTraceWriter:
    """Append JSON lines to a trace file, one record per line.

    The file opens lazily on the first record (a worker that never
    builds a shard never creates it) in append mode, so submitter and
    worker processes sharing a filesystem interleave whole lines into
    one file.  ``truncate=True`` (the CLI root process) empties the
    file up front so each traced run starts a fresh trace.
    """

    def __init__(self, path: str, truncate: bool = False) -> None:
        self.path = path
        self._fh: IO[str] | None = None
        self._lock = threading.Lock()
        if truncate:
            with open(path, "w", encoding="utf-8"):
                pass

    def write(self, record: Mapping[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class ListTraceWriter:
    """Collect records in memory (tests, and the summary round-trip)."""

    def __init__(self) -> None:
        self.records: list[dict[str, object]] = []
        self._lock = threading.Lock()

    def write(self, record: Mapping[str, object]) -> None:
        with self._lock:
            self.records.append(dict(record))

    def close(self) -> None:
        pass


class Span:
    """One open span; a context manager that records itself on exit."""

    __slots__ = (
        "_tracer",
        "name",
        "context",
        "parent_id",
        "attrs",
        "_t0_wall",
        "_t0_mono",
        "duration",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        context: SpanContext,
        parent_id: str | None,
        attrs: dict[str, AttrValue],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.attrs = attrs
        self._t0_wall = 0.0
        self._t0_mono = 0.0
        self.duration: float | None = None
        self._token: contextvars.Token[SpanContext | None] | None = None

    def set(self, **attrs: AttrValue) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def remote(self) -> tuple[str, str]:
        """The picklable ``(trace_id, span_id)`` propagation form."""
        return self.context.as_tuple()

    def __enter__(self) -> "Span":
        clock = self._tracer.clock
        self._t0_wall = clock.wall()
        self._t0_mono = clock.monotonic()
        self._token = _CURRENT.set(self.context)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        clock = self._tracer.clock
        self.duration = clock.monotonic() - self._t0_mono
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer.emit_span(self)


class Tracer:
    """Allocates span ids, times spans, and writes finished records.

    Parameters
    ----------
    writer:
        Destination for records (:class:`JsonlTraceWriter` in
        production, :class:`ListTraceWriter` in tests).
    clock:
        Injected time source (default: the system clock).
    trace_id:
        Pinned trace id; default honours ``REPRO_TRACE_ID``, else
        derives a per-run unique id from the wall clock and pid.
    proc:
        Process label stamped on every record.  Default None resolves
        to the writing process's pid *at record time*, so fork-started
        pool workers that inherit an activated tracer stamp their own
        pid; pass an explicit label to pin it (deterministic tests).
    root_prefix:
        Namespace for *root* span ids (children inherit their parent's
        id, so only roots can collide).  A worker process that adopts a
        submitter's trace id allocates roots from the same ``1, 2,
        ...`` sequence as the submitter; a per-worker prefix
        (``"vm-1234-"``) keeps its local roots — reclaim events,
        shard-internal builds — unambiguous in the shared trace.
    """

    enabled = True

    def __init__(
        self,
        writer: TraceWriter,
        clock: Clock | None = None,
        trace_id: str | None = None,
        proc: str | None = None,
        root_prefix: str | None = None,
    ) -> None:
        self.writer = writer
        self.clock = clock if clock is not None else system_clock()
        if trace_id is None:
            trace_id = os.environ.get(TRACE_ID_ENV) or (
                f"{int(self.clock.wall() * 1e6):x}-{os.getpid():x}"
            )
        self.trace_id = trace_id
        self.proc = proc
        self.root_prefix = root_prefix
        self._lock = threading.Lock()
        self._children: dict[str | None, int] = {}

    # -- id allocation -------------------------------------------------
    def _child_id(self, parent_id: str | None) -> str:
        with self._lock:
            n = self._children.get(parent_id, 0) + 1
            self._children[parent_id] = n
        if parent_id is not None:
            return f"{parent_id}.{n}"
        if self.root_prefix:
            return f"{self.root_prefix}{n}"
        return str(n)

    @staticmethod
    def _resolve_parent(
        parent: ParentLike,
    ) -> tuple[str | None, str | None]:
        """``(trace_id, span_id)`` of the requested or ambient parent."""
        if parent is None:
            ambient = _CURRENT.get()
            if ambient is None:
                return None, None
            return ambient.trace_id, ambient.span_id
        if isinstance(parent, SpanContext):
            return parent.trace_id, parent.span_id
        trace_id, span_id = parent
        return trace_id, span_id

    # -- span creation -------------------------------------------------
    def span(
        self,
        name: str,
        parent: ParentLike = None,
        span_id: str | None = None,
        **attrs: AttrValue,
    ) -> Span:
        """Open a span (use as a context manager).

        ``parent`` defaults to the ambient span of this thread/task; a
        propagated ``(trace_id, span_id)`` tuple adopts the *remote*
        trace id so worker-side spans stitch into the submitter's
        trace.  ``span_id`` overrides the allocated id — shard builds
        use ``<parent>.s<index>`` so retried or concurrent workers
        produce predictable, non-colliding ids.
        """
        parent_trace, parent_span = self._resolve_parent(parent)
        trace_id = parent_trace if parent_trace is not None else self.trace_id
        sid = span_id if span_id is not None else self._child_id(parent_span)
        return Span(
            self, name, SpanContext(trace_id, sid), parent_span, dict(attrs)
        )

    def record(
        self,
        name: str,
        duration: float,
        parent: ParentLike = None,
        span_id: str | None = None,
        t0: float | None = None,
        **attrs: AttrValue,
    ) -> None:
        """Write a span whose duration was measured externally.

        Used for latencies that no single process observes end to end —
        e.g. queue wait measured as claim wall time minus enqueue wall
        time.
        """
        parent_trace, parent_span = self._resolve_parent(parent)
        trace_id = parent_trace if parent_trace is not None else self.trace_id
        sid = span_id if span_id is not None else self._child_id(parent_span)
        self.writer.write(
            self._base_record(
                "span", name, trace_id, sid, parent_span,
                self.clock.wall() if t0 is None else t0,
                attrs, duration=duration,
            )
        )

    def event(
        self,
        name: str,
        parent: ParentLike = None,
        **attrs: AttrValue,
    ) -> None:
        """Write a zero-duration point event under the ambient span."""
        parent_trace, parent_span = self._resolve_parent(parent)
        trace_id = parent_trace if parent_trace is not None else self.trace_id
        sid = self._child_id(parent_span)
        self.writer.write(
            self._base_record(
                "event", name, trace_id, sid, parent_span,
                self.clock.wall(), attrs,
            )
        )

    # -- record emission -----------------------------------------------
    def emit_span(self, span: Span) -> None:
        self.writer.write(
            self._base_record(
                "span",
                span.name,
                span.context.trace_id,
                span.context.span_id,
                span.parent_id,
                span._t0_wall,
                span.attrs,
                duration=span.duration,
            )
        )

    def _base_record(
        self,
        kind: str,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        t0: float,
        attrs: Mapping[str, AttrValue],
        duration: float | None = None,
    ) -> dict[str, object]:
        record: dict[str, object] = {
            "kind": kind,
            "name": name,
            "trace": trace_id,
            "span": span_id,
            "parent": parent_id,
            "t0": round(t0, 6),
            # Resolved per record, not per tracer: a fork-started pool
            # worker inherits the activated tracer and must stamp its
            # own pid (an explicit proc label stays pinned for tests).
            "proc": self.proc if self.proc is not None else str(os.getpid()),
        }
        if duration is not None:
            record["dur"] = round(duration, 6)
        if attrs:
            record["attrs"] = dict(sorted(attrs.items()))
        return record

    def close(self) -> None:
        self.writer.close()


class NullSpan:
    """The shared do-nothing span (tracing disabled)."""

    __slots__ = ()

    name = ""
    context: SpanContext | None = None
    parent_id: str | None = None
    duration: float | None = None

    def set(self, **attrs: AttrValue) -> None:
        pass

    def remote(self) -> None:
        return None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        pass


_NULL_SPAN = NullSpan()


class NullTracer:
    """The zero-overhead disabled tracer (the default)."""

    enabled = False
    trace_id = ""

    def span(
        self,
        name: str,
        parent: ParentLike = None,
        span_id: str | None = None,
        **attrs: AttrValue,
    ) -> NullSpan:
        return _NULL_SPAN

    def record(
        self,
        name: str,
        duration: float,
        parent: ParentLike = None,
        span_id: str | None = None,
        t0: float | None = None,
        **attrs: AttrValue,
    ) -> None:
        pass

    def event(
        self,
        name: str,
        parent: ParentLike = None,
        **attrs: AttrValue,
    ) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()

#: Either flavour, as consumers see it.
AnyTracer = Union[Tracer, NullTracer]

#: None means "not yet resolved": the first :func:`current_tracer` call
#: checks ``REPRO_TRACE_FILE`` — this is how pool and queue worker
#: processes, which inherit the submitter's environment, join a trace.
_ACTIVE: AnyTracer | None = None
_ACTIVE_LOCK = threading.Lock()


def current_tracer() -> AnyTracer:
    """The process-wide active tracer (NULL_TRACER when disabled)."""
    global _ACTIVE
    tracer = _ACTIVE
    if tracer is None:
        with _ACTIVE_LOCK:
            if _ACTIVE is None:
                path = os.environ.get(TRACE_FILE_ENV)
                _ACTIVE = (
                    Tracer(JsonlTraceWriter(path)) if path else NULL_TRACER
                )
            tracer = _ACTIVE
    return tracer


def tracing_enabled() -> bool:
    return current_tracer().enabled


def activate(tracer: AnyTracer) -> AnyTracer | None:
    """Install ``tracer`` process-wide; returns the previous resolution."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = tracer
    return previous


def reset(previous: AnyTracer | None = None) -> None:
    """Restore a previous resolution (None re-reads the environment)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = previous


def span(
    name: str,
    parent: ParentLike = None,
    span_id: str | None = None,
    **attrs: AttrValue,
) -> Span | NullSpan:
    """Open a span on the active tracer (the instrumentation entry)."""
    return current_tracer().span(
        name, parent=parent, span_id=span_id, **attrs
    )


def event(name: str, log: bool = True, **attrs: AttrValue) -> None:
    """Emit a structured point event: trace record + one log line.

    The log line is deterministic ``event=<name> k=v ...`` text (keys
    sorted) on the :data:`EVENT_LOGGER` logger, so worker lease churn is
    observable with plain logging even when no trace file is active.
    """
    current_tracer().event(name, **attrs)
    if log:
        fields = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        logging.getLogger(EVENT_LOGGER).info(
            "event=%s%s", name, f" {fields}" if fields else ""
        )
