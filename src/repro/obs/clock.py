"""Injected clocks: the only module allowed to touch ``time`` directly.

Every duration and timestamp the observability layer records flows
through a :class:`Clock`, so tests (and CI trace-diffing) can substitute
a :class:`ManualClock` and get byte-deterministic trace files.  The
reprolint rule RPL007 enforces the funnel: direct ``time.time()`` /
``time.monotonic()`` / ``time.perf_counter()`` calls anywhere else under
``repro.obs`` are findings — this module is the single audited
exemption.

Two time axes, deliberately separate:

``monotonic()``
    Span durations.  Never compared across processes or hosts.
``wall()``
    Event ordering and cross-process latency (queue enqueue → claim).
    Subject to clock skew between hosts; consumers that subtract wall
    times across processes must clamp at zero and say so.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "ManualClock", "SystemClock", "system_clock"]


@runtime_checkable
class Clock(Protocol):
    """The two time axes the observability layer consumes."""

    def monotonic(self) -> float:
        """Seconds on a monotonic axis (durations only)."""

    def wall(self) -> float:
        """Seconds since the Unix epoch (ordering, cross-process)."""


@dataclass(frozen=True)
class SystemClock:
    """The real clocks (``time.monotonic`` / ``time.time``)."""

    def monotonic(self) -> float:
        return time.monotonic()

    def wall(self) -> float:
        return time.time()


@dataclass
class ManualClock:
    """A settable clock for tests and deterministic trace fixtures.

    ``advance`` moves both axes together (a manual clock never skews
    against itself); ``now``/``epoch`` seed the two axes independently.
    """

    now: float = 0.0
    epoch: float = 1_000_000.0

    def monotonic(self) -> float:
        return self.now

    def wall(self) -> float:
        return self.epoch + self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} (negative)")
        self.now += seconds


_SYSTEM = SystemClock()


def system_clock() -> SystemClock:
    """The shared real-clock instance (module singleton)."""
    return _SYSTEM
