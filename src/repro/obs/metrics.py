"""Metrics: a process-wide registry of counters, gauges, histograms.

This generalizes the service's latency histograms (``serve/stats.py``
now builds on :class:`Histogram` from here) into one shared registry
that every layer — table builds, shard cache, queue executor, PPSFP
kernel, adaptive controller, HTTP service — writes into, and that
renders in two shapes:

* :meth:`MetricsRegistry.render` — Prometheus text exposition format
  (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` histogram series with ``_sum`` / ``_count``, and
  deterministic ordering (families by name, series by label values) so
  two snapshots of identical state are byte-identical.
* Per-instrument ``snapshot()`` dicts — the JSON shape ``/stats``
  already serves.

Unlike tracing, metrics are always on: every update is a guarded
in-place add on a plain attribute, cheap enough for per-build and
per-batch (not per-vector) call sites.  Instruments are created lazily
and cached by ``(name, labels)``, so hot paths call
``registry.counter("repro_build_total", kind="stuck_at").inc()``
without holding instrument handles.

Quantiles on an *empty* histogram are ``None`` (rendered as JSON
``null``), not the lowest bucket bound — an idle endpoint must not
report a fake 1 ms p99.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Union

__all__ = [
    "Counter",
    "DEFAULT_BOUNDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
]

#: Upper bucket bounds in seconds (1-2.5-5 per decade, 1 ms .. 100 s);
#: observations above the last bound land in the overflow bucket.
DEFAULT_BOUNDS: tuple[float, ...] = (
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 25.0, 50.0,
    100.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Label sets are stored sorted by key so the same labels in any kwarg
#: order address the same series.
Labels = tuple[tuple[str, str], ...]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, hot-tier size)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bound histogram with approximate quantiles.

    One bisect per observation; counts are per-bucket (cumulative sums
    are computed at render time, as the Prometheus format requires).
    """

    __slots__ = ("bounds", "counts", "count", "sum", "max", "_lock")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be increasing: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (seconds, for latency histograms)."""
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value

    def quantile(self, q: float) -> float | None:
        """Approximate q-quantile: the upper bound of the q-th bucket.

        The overflow bucket reports the observed maximum.  Returns
        ``None`` before the first observation — an empty histogram has
        no quantiles, and reporting the lowest bucket bound would
        invent a latency that was never measured.
        """
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for i, bucket in enumerate(self.counts):
            cumulative += bucket
            if cumulative >= rank and bucket:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max
        return self.max

    def snapshot(self) -> dict[str, object]:
        """JSON-ready summary (stable key order; empty quantiles null)."""
        buckets = {
            f"le_{bound:g}s": self.counts[i]
            for i, bound in enumerate(self.bounds)
        }
        buckets["overflow"] = self.counts[len(self.bounds)]
        return {
            "count": self.count,
            "sum_s": self.sum,
            "mean_s": self.sum / self.count if self.count else 0.0,
            "max_s": self.max,
            "p50_s": self.quantile(0.5),
            "p99_s": self.quantile(0.99),
            "buckets": buckets,
        }


Instrument = Union[Counter, Gauge, Histogram]


class _Family:
    """All series of one metric name (same kind, varying labels)."""

    __slots__ = ("name", "kind", "help", "bounds", "series")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        bounds: tuple[float, ...] | None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.bounds = bounds
        self.series: dict[Labels, Instrument] = {}


class MetricsRegistry:
    """Lazily-created, label-addressed instruments plus rendering."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- instrument access ---------------------------------------------
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        instrument = self._series(name, "counter", help, None, labels)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        instrument = self._series(name, "gauge", help, None, labels)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
        **labels: str,
    ) -> Histogram:
        instrument = self._series(name, "histogram", help, bounds, labels)
        assert isinstance(instrument, Histogram)
        return instrument

    def _series(
        self,
        name: str,
        kind: str,
        help_text: str,
        bounds: tuple[float, ...] | None,
        labels: dict[str, str],
    ) -> Instrument:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labels:
            if not _LABEL_NAME.match(label) or label == "le":
                raise ValueError(f"invalid label name: {label!r}")
        key: Labels = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, bounds)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            series = family.series.get(key)
            if series is None:
                if kind == "counter":
                    series = Counter()
                elif kind == "gauge":
                    series = Gauge()
                else:
                    series = Histogram(
                        bounds if bounds is not None else DEFAULT_BOUNDS
                    )
                family.series[key] = series
            return series

    def reset(self) -> None:
        """Drop every family (test isolation for the global registry)."""
        with self._lock:
            self._families.clear()

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition format 0.0.4, deterministic order."""
        lines: list[str] = []
        with self._lock:
            families = [self._families[n] for n in sorted(self._families)]
        for family in families:
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels in sorted(family.series):
                series = family.series[labels]
                if isinstance(series, (Counter, Gauge)):
                    lines.append(
                        f"{family.name}{_labels_text(labels)}"
                        f" {_fmt(series.value)}"
                    )
                else:
                    lines.extend(_histogram_lines(family.name, labels, series))
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, object]:
        """JSON-ready dump: ``{name: {labels-text: value-or-summary}}``."""
        out: dict[str, object] = {}
        with self._lock:
            families = [self._families[n] for n in sorted(self._families)]
        for family in families:
            per_series: dict[str, object] = {}
            for labels in sorted(family.series):
                series = family.series[labels]
                key = _labels_text(labels) or "{}"
                if isinstance(series, (Counter, Gauge)):
                    per_series[key] = series.value
                else:
                    per_series[key] = series.snapshot()
            out[family.name] = per_series
        return out


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(labels: Labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _fmt_bound(bound: float) -> str:
    return _fmt(bound) if bound == int(bound) else f"{bound:g}"


def _histogram_lines(
    name: str, labels: Labels, histogram: Histogram
) -> list[str]:
    lines: list[str] = []
    cumulative = 0
    for i, bound in enumerate(histogram.bounds):
        cumulative += histogram.counts[i]
        lines.append(
            f"{name}_bucket"
            f"{_labels_text(labels, (('le', _fmt_bound(bound)),))}"
            f" {cumulative}"
        )
    lines.append(
        f"{name}_bucket{_labels_text(labels, (('le', '+Inf'),))}"
        f" {histogram.count}"
    )
    lines.append(f"{name}_sum{_labels_text(labels)} {_fmt(histogram.sum)}")
    lines.append(f"{name}_count{_labels_text(labels)} {histogram.count}")
    return lines


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry the instrumented layers write into."""
    return _GLOBAL
