"""Trace analysis: span trees, per-name aggregates, critical paths.

Consumes the JSONL files :class:`~repro.obs.tracer.JsonlTraceWriter`
produces — possibly interleaved by several processes (submitter, pool
workers, ``repro worker`` fleets) — and reassembles them into one tree
per trace id.  Reassembly relies only on record content, never file
order: parent links come from span ids, sibling order from the
hierarchical id's natural sort, so the same trace written in any
interleaving renders identically.

Timing semantics:

* **total** — the span's own recorded duration.
* **self** — total minus the sum of direct children's totals, clamped
  at zero.  Children that ran *in parallel* (pool/queue shards) can sum
  past their parent; the clamp attributes that parent entirely to its
  children rather than inventing negative self time.
* **coverage** — the fraction of the root span's duration attributed to
  named child spans (1 − root self/total).  The acceptance bar for the
  instrumented CLI path is ≥95%.
* **critical path** — the greedy longest-child walk from the root; for
  sharded builds this surfaces the straggler shard.

Spans whose parent id never appears in the file (a worker span whose
submitter trace was written elsewhere) are promoted to roots, so a
partial trace still renders instead of vanishing.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.errors import AnalysisError

__all__ = [
    "SpanNode",
    "TraceSummary",
    "build_forest",
    "load_trace",
    "render_summary",
    "render_tree",
    "summarize",
]


@dataclass
class SpanNode:
    """One span (or point event) plus its reassembled children."""

    trace: str
    span_id: str
    parent_id: str | None
    name: str
    kind: str
    t0: float
    duration: float
    proc: str
    attrs: dict[str, object]
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.duration

    @property
    def self_time(self) -> float:
        """Duration not attributed to direct children (clamped at 0)."""
        covered = sum(c.duration for c in self.children if c.kind == "span")
        return max(0.0, self.duration - covered)


def load_trace(path: str) -> list[SpanNode]:
    """Parse a JSONL trace file into flat (childless) span nodes."""
    nodes: list[SpanNode] = []
    try:
        fh = open(path, encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read trace file: {exc}") from exc
    with fh:
        for lineno, line in enumerate(fh, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                raw = json.loads(text)
            except ValueError as exc:
                raise AnalysisError(
                    f"{path}:{lineno}: not a JSON trace record: {exc}"
                ) from exc
            if not isinstance(raw, dict):
                raise AnalysisError(
                    f"{path}:{lineno}: trace record must be an object"
                )
            nodes.append(_node_from(raw, f"{path}:{lineno}"))
    return nodes


def _node_from(raw: dict[str, object], where: str) -> SpanNode:
    try:
        trace = str(raw["trace"])
        span_id = str(raw["span"])
        name = str(raw["name"])
    except KeyError as exc:
        raise AnalysisError(f"{where}: record missing key {exc}") from exc
    parent = raw.get("parent")
    attrs = raw.get("attrs")
    return SpanNode(
        trace=trace,
        span_id=span_id,
        parent_id=None if parent is None else str(parent),
        name=name,
        kind=str(raw.get("kind", "span")),
        t0=float(raw.get("t0", 0.0)),  # type: ignore[arg-type]
        duration=float(raw.get("dur", 0.0)),  # type: ignore[arg-type]
        proc=str(raw.get("proc", "?")),
        attrs=dict(attrs) if isinstance(attrs, dict) else {},
    )


_ID_PART = re.compile(r"(\d+)")


def _id_sort_key(span_id: str) -> tuple[tuple[str, int], ...]:
    """Natural order for hierarchical ids: 1.2 < 1.10, s2 < s10."""
    key: list[tuple[str, int]] = []
    for part in span_id.split("."):
        pieces = _ID_PART.split(part)
        prefix = pieces[0]
        number = int(pieces[1]) if len(pieces) > 1 else -1
        key.append((prefix, number))
    return tuple(key)


def build_forest(nodes: list[SpanNode]) -> dict[str, list[SpanNode]]:
    """Link children to parents; return roots grouped by trace id.

    Children are ordered by the natural sort of their span ids, which
    is also allocation order within one process — file interleaving
    does not affect the result.
    """
    by_id: dict[tuple[str, str], SpanNode] = {}
    for node in nodes:
        node.children = []
        by_id[(node.trace, node.span_id)] = node
    roots: dict[str, list[SpanNode]] = {}
    for node in nodes:
        parent = (
            by_id.get((node.trace, node.parent_id))
            if node.parent_id is not None
            else None
        )
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.setdefault(node.trace, []).append(node)
    for node in nodes:
        node.children.sort(key=lambda n: _id_sort_key(n.span_id))
    for trace_roots in roots.values():
        trace_roots.sort(key=lambda n: _id_sort_key(n.span_id))
    return roots


@dataclass
class NameAggregate:
    """Rolled-up timing for every span sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0
    self_time: float = 0.0
    max_single: float = 0.0


@dataclass
class TraceSummary:
    """Everything ``repro trace summary`` renders for one trace."""

    trace_id: str
    roots: list[SpanNode]
    span_count: int
    event_count: int
    procs: list[str]
    wall: float
    coverage: float
    aggregates: list[NameAggregate]
    critical_path: list[SpanNode]


def _walk(node: SpanNode) -> list[SpanNode]:
    out = [node]
    for child in node.children:
        out.extend(_walk(child))
    return out


def summarize(nodes: list[SpanNode], trace_id: str | None = None) -> TraceSummary:
    """Aggregate one trace (the largest in the file, unless pinned)."""
    forest = build_forest(nodes)
    if not forest:
        raise AnalysisError("trace is empty: no span records found")
    if trace_id is None:
        trace_id = max(
            sorted(forest),
            key=lambda t: sum(len(_walk(r)) for r in forest[t]),
        )
    try:
        roots = forest[trace_id]
    except KeyError as exc:
        known = ", ".join(sorted(forest))
        raise AnalysisError(
            f"trace id {trace_id!r} not in file (found: {known})"
        ) from exc

    everything = [n for root in roots for n in _walk(root)]
    spans = [n for n in everything if n.kind == "span"]
    events = [n for n in everything if n.kind != "span"]

    aggregates: dict[str, NameAggregate] = {}
    for node in spans:
        agg = aggregates.setdefault(node.name, NameAggregate(node.name))
        agg.count += 1
        agg.total += node.duration
        agg.self_time += node.self_time
        agg.max_single = max(agg.max_single, node.duration)

    top_root = max(
        (r for r in roots if r.kind == "span"),
        key=lambda n: n.duration,
        default=None,
    )
    wall = top_root.duration if top_root is not None else 0.0
    coverage = (
        1.0 - top_root.self_time / top_root.duration
        if top_root is not None and top_root.duration > 0
        else 0.0
    )

    path: list[SpanNode] = []
    cursor = top_root
    while cursor is not None:
        path.append(cursor)
        cursor = max(
            (c for c in cursor.children if c.kind == "span"),
            key=lambda n: n.duration,
            default=None,
        )

    return TraceSummary(
        trace_id=trace_id,
        roots=roots,
        span_count=len(spans),
        event_count=len(events),
        procs=sorted({n.proc for n in everything}),
        wall=wall,
        coverage=coverage,
        aggregates=sorted(
            aggregates.values(), key=lambda a: (-a.total, a.name)
        ),
        critical_path=path,
    )


def _fmt_secs(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.2f}ms"


def _attr_text(attrs: dict[str, object], limit: int = 4) -> str:
    if not attrs:
        return ""
    parts = [f"{k}={attrs[k]}" for k in sorted(attrs)[:limit]]
    if len(attrs) > limit:
        parts.append("...")
    return " {" + " ".join(parts) + "}"


def render_summary(summary: TraceSummary, top: int = 10) -> str:
    """The ``repro trace summary`` report (deterministic text)."""
    lines = [
        f"trace {summary.trace_id}",
        f"  spans: {summary.span_count}"
        f"  events: {summary.event_count}"
        f"  procs: {len(summary.procs)}",
        f"  wall: {_fmt_secs(summary.wall)}"
        f"  attributed to child spans: {summary.coverage * 100:.1f}%",
        "",
        f"  {'span name':<24} {'count':>5} {'total':>10} "
        f"{'self':>10} {'max':>10}",
    ]
    for agg in summary.aggregates[:top]:
        lines.append(
            f"  {agg.name:<24} {agg.count:>5} "
            f"{_fmt_secs(agg.total):>10} {_fmt_secs(agg.self_time):>10} "
            f"{_fmt_secs(agg.max_single):>10}"
        )
    dropped = len(summary.aggregates) - top
    if dropped > 0:
        lines.append(f"  ... {dropped} more span name(s)")
    lines.append("")
    lines.append("  critical path:")
    for i, node in enumerate(summary.critical_path[: top + 2]):
        lines.append(
            f"  {'  ' * i}-> {node.name} {_fmt_secs(node.duration)}"
            f" [span {node.span_id}]"
        )
    return "\n".join(lines)


def render_tree(summary: TraceSummary, max_attrs: int = 4) -> str:
    """The ``repro trace tree`` report: the full indented span tree."""
    lines = [f"trace {summary.trace_id}"]

    def emit(node: SpanNode, depth: int) -> None:
        indent = "  " * (depth + 1)
        if node.kind == "span":
            lines.append(
                f"{indent}{node.name}"
                f"  total={_fmt_secs(node.duration)}"
                f" self={_fmt_secs(node.self_time)}"
                f" [span {node.span_id} proc {node.proc}]"
                f"{_attr_text(node.attrs, max_attrs)}"
            )
        else:
            lines.append(
                f"{indent}* {node.name}"
                f" [event proc {node.proc}]{_attr_text(node.attrs, max_attrs)}"
            )
        for child in node.children:
            emit(child, depth + 1)

    for root in summary.roots:
        emit(root, 0)
    return "\n".join(lines)
