"""repro.obs — tracing, metrics, and trace analysis for the stack.

Three stdlib-only modules:

* :mod:`repro.obs.clock` — injected monotonic/wall clocks (the single
  audited ``time`` call site; RPL007 enforces the funnel).
* :mod:`repro.obs.tracer` — span tracer writing JSONL trace events,
  with ``(trace_id, span_id)`` propagation through pickled shard tasks
  and queue files so distributed builds stitch into one trace.
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  rendered as Prometheus text exposition (``GET /metrics``) and JSON
  (``/stats``).

The facade here is what instrumented modules import::

    from repro import obs

    with obs.span("table_build", circuit=name, kind="stuck_at") as sp:
        ...
    obs.metrics().counter("repro_build_total", kind="stuck_at").inc()

Tracing is off by default (:func:`span` is a shared no-op) and enabled
per run via ``--trace PATH`` / ``REPRO_TRACE_FILE``; metrics are always
on and cheap (per-build, not per-vector, call sites).
"""

from __future__ import annotations

from repro.obs.clock import Clock, ManualClock, SystemClock, system_clock
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlTraceWriter,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    activate,
    current_context,
    current_tracer,
    event,
    reset,
    span,
    tracing_enabled,
)

__all__ = [
    "Clock",
    "JsonlTraceWriter",
    "ManualClock",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanContext",
    "SystemClock",
    "Tracer",
    "activate",
    "current_context",
    "current_tracer",
    "event",
    "global_registry",
    "metrics",
    "reset",
    "span",
    "system_clock",
    "tracing_enabled",
]


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry (alias of ``global_registry``)."""
    return global_registry()
