"""Table 6 — average-case detection under Definition 1 vs Definition 2.

Same rows as Table 5, but each circuit gets two histogram lines: test
sets built by Procedure 1 with standard counting (Definition 1) and with
the sufficiently-different counting of Definition 2.  The paper's claim —
Definition 2 shifts probability mass upward — is checked by the test
suite on the structural level (the Def. 2 histogram dominates at most
thresholds).

The paper uses K = 1000; the default here is K = 200 because every
Definition 2 iteration runs 3-valued ``tij`` fault simulations (batched,
but still the dominant cost).  Override with ``k=...`` or ``REPRO_K``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.average_case import TABLE5_THRESHOLDS, AverageCaseAnalysis
from repro.core.procedure1 import build_random_ndetection_sets
from repro.experiments.common import (
    NMAX_DEFAULT,
    PAPER_TABLE6_CIRCUITS,
    THRESHOLD_NOT_GUARANTEED,
    env_int,
    get_universe,
    get_worst_case,
    render_rows,
    suite_circuits,
)
from repro.experiments.table5 import Table5Row


@dataclass
class Table6Row:
    circuit: str
    num_faults: int
    def1: Table5Row
    def2: Table5Row


@dataclass
class Table6Result:
    n: int
    num_sets: int
    rows: list[Table6Row]

    def render(self) -> str:
        header = ["circuit", "faults", "def"] + [
            f">={t:g}" for t in TABLE5_THRESHOLDS
        ]
        body = []
        for row in self.rows:
            body.append(
                [row.circuit, str(row.num_faults), "1"] + row.def1.cells()
            )
            body.append(["", "", "2"] + row.def2.cells())
        return (
            f"Table 6: average-case probabilities under Definitions 1 and 2 "
            f"(p({self.n},gj), K={self.num_sets})\n"
            + render_rows(header, body)
            + "\n"
        )


def run_table6(
    circuits: list[str] | None = None,
    k: int | None = None,
    n_max: int | None = None,
    seed: int = 2005,
) -> Table6Result:
    """Regenerate Table 6 (Definition 1 vs Definition 2)."""
    num_sets = k if k is not None else env_int("REPRO_K", 200)
    nmax = n_max if n_max is not None else env_int("REPRO_NMAX", NMAX_DEFAULT)
    names = (
        circuits
        if circuits is not None
        else suite_circuits(PAPER_TABLE6_CIRCUITS)
    )
    rows = []
    for name in names:
        analysis = get_worst_case(name)
        hard = analysis.indices_at_least(THRESHOLD_NOT_GUARANTEED)
        if not hard:
            continue
        universe = get_universe(name)
        row_halves = []
        for counting in ("def1", "def2"):
            family = build_random_ndetection_sets(
                universe.target_table,
                n_max=nmax,
                num_sets=num_sets,
                seed=seed,
                counting=counting,
            )
            avg = AverageCaseAnalysis(
                family, universe.untargeted_table, fault_indices=hard
            )
            probs = avg.probabilities(nmax)
            row_halves.append(
                Table5Row(
                    circuit=name,
                    num_faults=len(hard),
                    histogram=avg.histogram(nmax),
                    min_probability=min(probs),
                )
            )
        rows.append(
            Table6Row(
                circuit=name,
                num_faults=len(hard),
                def1=row_halves[0],
                def2=row_halves[1],
            )
        )
    return Table6Result(n=nmax, num_sets=num_sets, rows=rows)
