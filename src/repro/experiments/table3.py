"""Table 3 — worst-case numbers of faults needing large ``n``.

Per circuit: the number (and percentage) of untargeted faults with
``nmin(g) >= 100``, ``>= 20`` and ``>= 11``.  Following the paper, only
circuits that have at least one fault with ``nmin >= 11`` appear.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    THRESHOLD_NOT_GUARANTEED,
    get_worst_case,
    render_rows,
    suite_circuits,
)

THRESHOLDS: tuple[int, ...] = (100, 20, 11)


@dataclass
class Table3Row:
    circuit: str
    num_faults: int
    counts: list[int]  # aligned with THRESHOLDS

    def percentage(self, i: int) -> float:
        if self.num_faults == 0:
            return 0.0
        return 100.0 * self.counts[i] / self.num_faults


@dataclass
class Table3Result:
    rows: list[Table3Row]

    def render(self) -> str:
        header = ["circuit", "faults"] + [f">={t}" for t in THRESHOLDS]
        body = []
        for row in self.rows:
            cells = [row.circuit, str(row.num_faults)]
            for i in range(len(THRESHOLDS)):
                cells.append(f"{row.counts[i]} ({row.percentage(i):.2f})")
            body.append(cells)
        return (
            "Table 3: worst-case numbers of detected faults (large n)\n"
            + render_rows(header, body)
            + "\n"
        )


def run_table3(circuits: list[str] | None = None) -> Table3Result:
    """Regenerate Table 3 (circuits with nmin >= 11 faults only)."""
    names = circuits if circuits is not None else suite_circuits()
    rows = []
    for name in names:
        analysis = get_worst_case(name)
        if analysis.count_at_least(THRESHOLD_NOT_GUARANTEED) == 0:
            continue
        rows.append(
            Table3Row(
                circuit=name,
                num_faults=len(analysis),
                counts=[analysis.count_at_least(t) for t in THRESHOLDS],
            )
        )
    return Table3Result(rows)
