"""Table 4 — random n-detection test sets for the example circuit.

K = 10 test sets for n = 1 and n = 2, built by Procedure 1 on the
Figure 1 circuit.  The paper's concrete vectors arise from the authors'
RNG; ours are seeded and deterministic, with the same structural
properties (every set is an n-detection set; the n=2 set of each k
contains the n=1 set).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench_suite.example import paper_example
from repro.core.procedure1 import NDetectionFamily, build_random_ndetection_sets
from repro.experiments.common import render_rows
from repro.faults.universe import FaultUniverse


@dataclass
class Table4Result:
    family: NDetectionFamily

    def render(self) -> str:
        header = ["k", "n=1", "n=2"]
        body = []
        for k in range(self.family.num_sets):
            body.append(
                [
                    str(k),
                    " ".join(map(str, self.family.test_set(1, k))),
                    " ".join(map(str, self.family.test_set(2, k))),
                ]
            )
        return (
            "Table 4: test sets for example circuit (Procedure 1, seeded)\n"
            + render_rows(header, body)
            + "\n"
        )


def run_table4(num_sets: int = 10, seed: int = 2005) -> Table4Result:
    """Regenerate Table 4 (K seeded random 1-/2-detection sets)."""
    universe = FaultUniverse(paper_example())
    family = build_random_ndetection_sets(
        universe.target_table, n_max=2, num_sets=num_sets, seed=seed
    )
    return Table4Result(family)
