"""Regeneration of every table and figure of the paper.

One module per artifact:

========= ===========================================================
module    paper artifact
========= ===========================================================
table1    Table 1 — example-circuit overlap analysis for ``g0``
table2    Table 2 — worst-case % detected for small ``n`` (suite)
table3    Table 3 — worst-case counts for large ``n`` (suite)
table4    Table 4 — K=10 random 1-/2-detection sets (example circuit)
table5    Table 5 — average-case ``p(10, g)`` histograms (Def. 1)
table6    Table 6 — Definition 1 vs Definition 2 histograms
figure2   Figure 2 — distribution of ``nmin(g)`` (heavy-tail circuit)
========= ===========================================================

Every experiment returns a structured result object with a ``render()``
method producing a text table in the paper's row format; the benches in
``benchmarks/`` and the CLI both go through these entry points.
"""

from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import Table5Result, run_table5
from repro.experiments.table6 import Table6Result, run_table6
from repro.experiments.figure2 import Figure2Result, run_figure2

__all__ = [
    "Table1Result",
    "run_table1",
    "Table2Result",
    "run_table2",
    "Table3Result",
    "run_table3",
    "Table4Result",
    "run_table4",
    "Table5Result",
    "run_table5",
    "Table6Result",
    "run_table6",
    "Figure2Result",
    "run_figure2",
]
