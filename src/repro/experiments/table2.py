"""Table 2 — worst-case percentages of detected faults (small ``n``).

Per circuit: the percentage of untargeted faults ``g`` with
``nmin(g) <= n`` for ``n ∈ {1, 2, 3, 4, 5, 10}``.  Following the paper,
once a column reaches 100% the larger-``n`` columns are left blank, and
rows are grouped by the smallest ``n`` achieving 100% coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    get_worst_case,
    render_rows,
    suite_circuits,
)

N_COLUMNS: tuple[int, ...] = (1, 2, 3, 4, 5, 10)


@dataclass
class Table2Row:
    circuit: str
    num_faults: int
    percentages: list[float]  # aligned with N_COLUMNS

    def full_coverage_n(self) -> int | None:
        """Smallest column n with 100% coverage (None if never)."""
        for n, pct in zip(N_COLUMNS, self.percentages, strict=True):
            if pct >= 100.0 - 1e-9:
                return n
        return None


@dataclass
class Table2Result:
    rows: list[Table2Row]

    def render(self) -> str:
        header = ["circuit", "faults"] + [f"<={n}" for n in N_COLUMNS]
        body = []
        # Paper grouping: circuits reaching 100% at smaller n first.
        def sort_key(row: Table2Row):
            full = row.full_coverage_n()
            return (full if full is not None else 10**9, row.circuit)

        for row in sorted(self.rows, key=sort_key):
            cells = [row.circuit, str(row.num_faults)]
            done = False
            for pct in row.percentages:
                if done:
                    cells.append("")
                    continue
                if pct >= 100.0 - 1e-9:
                    cells.append("100.00")
                    done = True
                else:
                    # Never round a partial percentage up to 100.00 —
                    # that would misreport completeness (e.g. 99.998%).
                    cells.append(f"{min(pct, 99.99):.2f}")
            body.append(cells)
        return (
            "Table 2: worst-case percentages of detected faults (small n)\n"
            + render_rows(header, body)
            + "\n"
        )


def run_table2(circuits: list[str] | None = None) -> Table2Result:
    """Regenerate Table 2 over the suite (or a subset)."""
    names = circuits if circuits is not None else suite_circuits()
    rows = []
    for name in names:
        analysis = get_worst_case(name)
        rows.append(
            Table2Row(
                circuit=name,
                num_faults=len(analysis),
                percentages=analysis.coverage_curve(list(N_COLUMNS)),
            )
        )
    return Table2Result(rows)
