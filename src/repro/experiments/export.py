"""Structured exports of experiment results (CSV and Markdown).

The text renderers in each experiment module mirror the paper's layout;
downstream users usually want the data machine-readable instead.  Every
result object gets a ``(header, rows)`` extraction here, plus generic
CSV/Markdown serializers used by the CLI's ``--format`` option.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

from repro.core.average_case import TABLE5_THRESHOLDS
from repro.errors import ReproError
from repro.experiments.figure2 import Figure2Result
from repro.experiments.table1 import Table1Result
from repro.experiments.table2 import N_COLUMNS, Table2Result
from repro.experiments.table3 import THRESHOLDS, Table3Result
from repro.experiments.table4 import Table4Result
from repro.experiments.table5 import Table5Result
from repro.experiments.table6 import Table6Result

Rows = tuple[list[str], list[list[str]]]


def _table1_rows(result: Table1Result) -> Rows:
    header = ["index", "fault", "vectors", "nmin"]
    rows = [
        [str(r.index), r.fault, " ".join(map(str, r.vectors)), str(r.nmin)]
        for r in result.rows
    ]
    return header, rows


def _table2_rows(result: Table2Result) -> Rows:
    header = ["circuit", "faults"] + [f"pct_le_{n}" for n in N_COLUMNS]
    rows = [
        [r.circuit, str(r.num_faults)]
        + [f"{p:.4f}" for p in r.percentages]
        for r in result.rows
    ]
    return header, rows


def _table3_rows(result: Table3Result) -> Rows:
    header = ["circuit", "faults"] + [f"count_ge_{t}" for t in THRESHOLDS]
    rows = [
        [r.circuit, str(r.num_faults)] + [str(c) for c in r.counts]
        for r in result.rows
    ]
    return header, rows


def _table4_rows(result: Table4Result) -> Rows:
    header = ["k", "n", "tests"]
    rows = []
    fam = result.family
    for k in range(fam.num_sets):
        for n in range(1, fam.n_max + 1):
            rows.append(
                [str(k), str(n), " ".join(map(str, fam.test_set(n, k)))]
            )
    return header, rows


def _table5_rows(result: Table5Result) -> Rows:
    header = ["circuit", "faults"] + [
        f"count_p_ge_{t:g}" for t in TABLE5_THRESHOLDS
    ]
    rows = [
        [r.circuit, str(r.num_faults)] + [str(c) for c in r.histogram]
        for r in result.rows
    ]
    return header, rows


def _table6_rows(result: Table6Result) -> Rows:
    header = ["circuit", "faults", "definition"] + [
        f"count_p_ge_{t:g}" for t in TABLE5_THRESHOLDS
    ]
    rows = []
    for r in result.rows:
        rows.append(
            [r.circuit, str(r.num_faults), "1"]
            + [str(c) for c in r.def1.histogram]
        )
        rows.append(
            [r.circuit, str(r.num_faults), "2"]
            + [str(c) for c in r.def2.histogram]
        )
    return header, rows


def _figure2_rows(result: Figure2Result) -> Rows:
    header = ["nmin", "count"]
    rows = [[str(v), str(c)] for v, c in result.series]
    return header, rows


_EXTRACTORS = {
    Table1Result: _table1_rows,
    Table2Result: _table2_rows,
    Table3Result: _table3_rows,
    Table4Result: _table4_rows,
    Table5Result: _table5_rows,
    Table6Result: _table6_rows,
    Figure2Result: _figure2_rows,
}


def result_rows(result) -> Rows:
    """(header, rows) for any experiment result object."""
    extractor = _EXTRACTORS.get(type(result))
    if extractor is None:
        raise ReproError(
            f"no exporter for result type {type(result).__name__}"
        )
    return extractor(result)


def to_csv(result) -> str:
    """Serialize an experiment result as CSV text."""
    header, rows = result_rows(result)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


def to_markdown(result) -> str:
    """Serialize an experiment result as a Markdown table."""
    header, rows = result_rows(result)
    return render_markdown_table(header, rows)


def render_markdown_table(
    header: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Generic GitHub-flavoured Markdown table."""
    def esc(cell: str) -> str:
        return cell.replace("|", "\\|")

    lines = ["| " + " | ".join(esc(h) for h in header) + " |"]
    lines.append("|" + "|".join(" --- " for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(esc(c) for c in row) + " |")
    return "\n".join(lines) + "\n"
