"""Table 1 — the example-circuit overlap analysis for ``g0 = (9,0,10,1)``.

For every collapsed target fault ``fi`` with ``T(fi) ∩ T(g0) ≠ ∅`` the
table lists ``T(fi)`` and ``nmin(g0, fi)``; the paper's published values
(including the fault indices) are reproduced exactly, and the test suite
pins them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench_suite.example import paper_example
from repro.core.worst_case import WorstCaseAnalysis
from repro.experiments.common import render_rows
from repro.faults.universe import FaultUniverse
from repro.logic.bitops import set_bits


@dataclass
class Table1Row:
    index: int
    fault: str
    vectors: list[int]
    nmin: int


@dataclass
class Table1Result:
    g_name: str
    g_vectors: list[int]
    rows: list[Table1Row]
    nmin_g: int

    def render(self) -> str:
        header = ["i", "fi", "T(fi)", "nmin(g0,fi)"]
        body = [
            [
                str(r.index),
                r.fault,
                " ".join(map(str, r.vectors)),
                str(r.nmin),
            ]
            for r in self.rows
        ]
        table = render_rows(header, body)
        return (
            f"Table 1: faults with test vectors that overlap "
            f"T(g0) = {{{', '.join(map(str, self.g_vectors))}}} "
            f"for g0 = {self.g_name}\n{table}\n"
            f"nmin(g0) = {self.nmin_g}\n"
        )


def run_table1(untargeted_index: int = 0) -> Table1Result:
    """Regenerate Table 1 (``untargeted_index`` selects the g fault)."""
    circuit = paper_example()
    universe = FaultUniverse(circuit)
    targets = universe.target_table
    untargeted = universe.untargeted_table
    g_sig = untargeted.signatures[untargeted_index]
    counts = targets.counts()
    rows = []
    for i, f_sig in enumerate(targets.signatures):
        overlap = (f_sig & g_sig).bit_count()
        if overlap == 0:
            continue
        rows.append(
            Table1Row(
                index=i,
                fault=targets.fault_name(i),
                vectors=set_bits(f_sig),
                nmin=counts[i] - overlap + 1,
            )
        )
    analysis = WorstCaseAnalysis(targets, untargeted)
    nmin_g = analysis.records[untargeted_index].nmin
    return Table1Result(
        g_name=untargeted.fault_name(untargeted_index),
        g_vectors=set_bits(g_sig),
        rows=rows,
        nmin_g=nmin_g,
    )
