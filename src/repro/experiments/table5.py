"""Table 5 — average-case probabilities of detection (Definition 1).

For every circuit that has untargeted faults with ``nmin(g) >= 11``
(faults not guaranteed detected by a 10-detection test set), Procedure 1
builds K random 10-detection test sets and the row reports how many of
those faults have ``p(10, g) >= 1, 0.9, ..., 0.1, 0``.

The paper uses K = 10000; the default here is K = 1000 (override with
``k=...`` or the ``REPRO_K`` environment variable) — at K = 1000 the
estimator's standard error is at most 0.016, far below the 0.1-wide
histogram buckets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.average_case import (
    TABLE5_THRESHOLDS,
    AverageCaseAnalysis,
)
from repro.core.procedure1 import build_random_ndetection_sets
from repro.experiments.common import (
    NMAX_DEFAULT,
    PAPER_TABLE5_CIRCUITS,
    THRESHOLD_NOT_GUARANTEED,
    env_int,
    get_universe,
    get_worst_case,
    render_rows,
    suite_circuits,
)


@dataclass
class Table5Row:
    circuit: str
    num_faults: int          # faults with nmin >= 11
    histogram: list[int]     # counts at TABLE5_THRESHOLDS
    min_probability: float

    def cells(self) -> list[str]:
        """Histogram cells with the paper's blank-after-saturation rule."""
        out: list[str] = []
        saturated = False
        for count in self.histogram:
            if saturated:
                out.append("")
                continue
            out.append(str(count))
            if count >= self.num_faults:
                saturated = True
        return out


@dataclass
class Table5Result:
    n: int
    num_sets: int
    rows: list[Table5Row]

    def render(self) -> str:
        header = ["circuit", "faults"] + [
            f">={t:g}" for t in TABLE5_THRESHOLDS
        ]
        body = [
            [row.circuit, str(row.num_faults)] + row.cells()
            for row in self.rows
        ]
        return (
            f"Table 5: average-case probabilities of detection "
            f"(p({self.n},gj), K={self.num_sets})\n"
            + render_rows(header, body)
            + "\n"
        )


def run_table5(
    circuits: list[str] | None = None,
    k: int | None = None,
    n_max: int | None = None,
    seed: int = 2005,
) -> Table5Result:
    """Regenerate Table 5 (Definition 1 average-case analysis)."""
    num_sets = k if k is not None else env_int("REPRO_K", 1000)
    nmax = n_max if n_max is not None else env_int("REPRO_NMAX", NMAX_DEFAULT)
    names = (
        circuits
        if circuits is not None
        else suite_circuits(PAPER_TABLE5_CIRCUITS)
    )
    rows = []
    for name in names:
        analysis = get_worst_case(name)
        hard = analysis.indices_at_least(THRESHOLD_NOT_GUARANTEED)
        if not hard:
            continue
        universe = get_universe(name)
        family = build_random_ndetection_sets(
            universe.target_table, n_max=nmax, num_sets=num_sets, seed=seed
        )
        avg = AverageCaseAnalysis(
            family, universe.untargeted_table, fault_indices=hard
        )
        probs = avg.probabilities(nmax)
        rows.append(
            Table5Row(
                circuit=name,
                num_faults=len(hard),
                histogram=avg.histogram(nmax),
                min_probability=min(probs),
            )
        )
    return Table5Result(n=nmax, num_sets=num_sets, rows=rows)
