"""Figure 2 — the distribution of ``nmin(gj)`` for a heavy-tail circuit.

The paper plots, for ``dvram``, the number of faults at each ``nmin``
value of at least 100.  The experiment produces the ``(nmin, count)``
series and an ASCII rendering; when the chosen circuit has no such
faults the result says so instead of an empty chart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distribution import nmin_distribution, render_ascii_histogram
from repro.experiments.common import get_worst_case


@dataclass
class Figure2Result:
    circuit: str
    minimum: int
    series: list[tuple[int, int]]
    unbounded: int  # faults with no finite nmin (no guarantee at any n)

    def render(self) -> str:
        head = (
            f"Figure 2: distribution of nmin(gj) >= {self.minimum} "
            f"for {self.circuit}\n"
        )
        if not self.series and not self.unbounded:
            return head + f"(no faults with nmin >= {self.minimum})\n"
        chart = render_ascii_histogram(self.series)
        tail = (
            f"\n({self.unbounded} faults have no finite nmin)\n"
            if self.unbounded
            else "\n"
        )
        return head + chart + tail


def run_figure2(circuit: str = "dvram", minimum: int = 100) -> Figure2Result:
    """Regenerate Figure 2 for a circuit (default: the paper's dvram)."""
    analysis = get_worst_case(circuit)
    values = analysis.nmin_values()
    series = nmin_distribution(values, minimum=minimum)
    unbounded = sum(1 for v in values if v is None)
    return Figure2Result(
        circuit=circuit, minimum=minimum, series=series, unbounded=unbounded
    )
