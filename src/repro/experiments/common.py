"""Shared infrastructure for the experiment harness.

Universes and worst-case analyses are memoized per circuit name with a
small LRU (detection tables of the largest suite circuits weigh tens of
megabytes, so an unbounded cache is not an option).  Default circuit
lists mirror the paper's tables; heavyweight parameters (``K``, ``nmax``)
accept environment overrides so benches can run quick while the CLI can
reproduce the full-size experiment:

``REPRO_K``          overrides the number of random test sets.
``REPRO_NMAX``       overrides nmax (paper: 10).
``REPRO_CIRCUITS``   comma-separated circuit subset for suite tables.
``REPRO_BACKEND``    detection-table engine
                     (exhaustive|sampled|serial|packed|adaptive).
``REPRO_SAMPLES``    sampled/packed backends: number of vectors K
                     (optional for packed, which is exhaustive without it).
``REPRO_SEED``       sampled/packed/adaptive backends: universe draw seed.
``REPRO_JOBS``       worker processes for detection-table construction
                     (> 1 shards every table build across a process
                     pool; composes with any REPRO_BACKEND engine —
                     the adaptive engine takes the worker count into
                     its per-round sharded builds).
``REPRO_EXECUTOR``   shard execution substrate
                     (inline|pool|queue); overrides the REPRO_JOBS
                     pool sugar.  ``queue`` distributes shard tasks
                     through the work-queue directory to independent
                     ``repro worker`` processes on any host.
``REPRO_QUEUE_DIR``  work-queue directory for REPRO_EXECUTOR=queue
                     (and the default of ``repro worker --queue`` /
                     ``repro queue``).
``REPRO_TABLE_LRU``  capacity of the in-memory universe / worst-case
                     LRUs (default 40 — holds the whole 35-circuit
                     suite).  The analysis service's hot tier reads
                     the same knob.
``REPRO_TARGET_HALFWIDTH``  adaptive backend: relative CI precision
                     target (default 0.05).
``REPRO_MAX_SAMPLES``       adaptive backend: total vector budget.
``REPRO_STRATIFY``          adaptive backend: ``bridging`` for the
                     rare-activation importance strata.

Backends are frozen dataclasses, so the universe / worst-case caches key
on the exact backend configuration — ``REPRO_BACKEND=packed`` tables
never alias the big-int ones.  One deliberate exception: a
parallel-wrapped backend produces tables *bit-for-bit identical* to its
base engine's, so the caches key on the unwrapped base — the cache key
is executor-normalized, meaning a ``jobs=4`` run, a queue-distributed
run, and a single-process run of the same engine all share one
in-memory table instead of holding identical multi-hundred-MB copies.
"""

from __future__ import annotations

import os

from repro.bench_suite.registry import get_circuit, suite_table_groups
from repro.caching import LRUCache, table_lru_capacity
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import (
    DetectionBackend,
    ExhaustiveBackend,
    make_backend,
    table_identity,
)
from repro.parallel import (
    maybe_parallel,
    resolve_executor,
    resolve_jobs,
)

#: The paper reports Tables 3/5/6 only for circuits that have faults with
#: nmin >= 11; these are the Table 5 rows of the paper (the analogues in
#: our suite are discovered dynamically, but the defaults start here).
PAPER_TABLE5_CIRCUITS: tuple[str, ...] = (
    "beecount",
    "ex2",
    "ex3",
    "ex6",
    "mark1",
    "bbara",
    "ex4",
    "keyb",
    "opus",
    "bbsse",
    "cse",
    "dvram",
    "fetch",
    "log",
    "rie",
    "s1a",
)

#: Table 6 of the paper uses the same circuits with K = 1000.
PAPER_TABLE6_CIRCUITS = PAPER_TABLE5_CIRCUITS

NMAX_DEFAULT = 10
THRESHOLD_NOT_GUARANTEED = 11  # faults with nmin >= 11 escape a 10-detection set


def backend_from_env() -> DetectionBackend | None:
    """Detection backend from the REPRO_BACKEND family of env overrides.

    Returns None (caller default: exhaustive) when none of
    REPRO_BACKEND / REPRO_JOBS / REPRO_EXECUTOR is set, so the cached
    layers keep their zero-config behavior.  ``REPRO_JOBS > 1`` wraps
    the engine (default: exhaustive) in a sharded
    :class:`~repro.parallel.ParallelBackend`; ``REPRO_EXECUTOR``
    selects the shard substrate explicitly (``queue`` reads the
    work-queue directory from ``REPRO_QUEUE_DIR``).
    """
    name = os.environ.get("REPRO_BACKEND")
    jobs = resolve_jobs(None)
    # jobs=None: the executor factory consults REPRO_JOBS itself, so a
    # bare REPRO_EXECUTOR=pool still means a real pool (of 2), not a
    # degenerate single-process "pool".
    executor = resolve_executor()
    if not name:
        if jobs <= 1 and executor is None:
            return None
        return maybe_parallel(ExhaustiveBackend(), jobs, executor=executor)
    samples = os.environ.get("REPRO_SAMPLES")
    halfwidth = os.environ.get("REPRO_TARGET_HALFWIDTH")
    max_samples = os.environ.get("REPRO_MAX_SAMPLES")
    return make_backend(
        name,
        samples=int(samples) if samples else None,
        seed=env_int("REPRO_SEED", 0),
        jobs=jobs,
        executor=executor,
        target_halfwidth=float(halfwidth) if halfwidth else None,
        max_samples=int(max_samples) if max_samples else None,
        stratify=os.environ.get("REPRO_STRATIFY") or None,
    )


def get_universe(
    name: str, backend: DetectionBackend | None = None
) -> FaultUniverse:
    """Fault universe (with detection tables) for a suite circuit.

    ``backend`` defaults to the REPRO_BACKEND / REPRO_JOBS env
    overrides, then the exhaustive engine.  The env overrides are
    resolved *before* the cache lookup, so changing them mid-process
    switches universes instead of silently replaying the first
    backend's cached tables.
    """
    backend = backend or backend_from_env()
    key = (name, table_identity(backend))
    universe = _UNIVERSE_CACHE.get(key)
    if universe is None:
        universe = FaultUniverse(get_circuit(name), backend=backend)
        # Touch the tables so the cache holds fully-built universes.
        universe.target_table
        universe.untargeted_table
        _UNIVERSE_CACHE.put(key, universe)
    return universe


#: Backend-identity-keyed LRUs (backends are frozen dataclasses; the
#: identity normalization lives in
#: :func:`repro.faultsim.backends.table_identity`).  The bounded LRU
#: itself is :class:`repro.caching.LRUCache` — the same implementation
#: the analysis service (:mod:`repro.serve`) uses as its hot tier —
#: sized by ``REPRO_TABLE_LRU`` (default 40: the whole 35-circuit
#: suite; total footprint stays within a few GB).
_UNIVERSE_CACHE: LRUCache = LRUCache(table_lru_capacity())
_WORST_CASE_CACHE: LRUCache = LRUCache(table_lru_capacity())


def get_worst_case(
    name: str, backend: DetectionBackend | None = None
) -> WorstCaseAnalysis:
    """Worst-case analysis for a suite circuit (cached)."""
    backend = backend or backend_from_env()
    key = (name, table_identity(backend))
    analysis = _WORST_CASE_CACHE.get(key)
    if analysis is None:
        u = get_universe(name, backend)
        analysis = WorstCaseAnalysis(u.target_table, u.untargeted_table)
        _WORST_CASE_CACHE.put(key, analysis)
    return analysis


def env_int(var: str, default: int) -> int:
    """Integer environment override with a fallback."""
    raw = os.environ.get(var)
    if raw is None:
        return default
    return int(raw)


def suite_circuits(default: tuple[str, ...] | None = None) -> list[str]:
    """Circuit list for suite-wide tables (REPRO_CIRCUITS override)."""
    raw = os.environ.get("REPRO_CIRCUITS")
    if raw:
        return [c.strip() for c in raw.split(",") if c.strip()]
    if default is not None:
        return list(default)
    return list(suite_table_groups())


def render_rows(
    header: list[str], rows: list[list[str]], indent: str = ""
) -> str:
    """Fixed-width text table (right-aligned data columns)."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append(
        indent
        + "  ".join(h.ljust(widths[i]) if i == 0 else h.rjust(widths[i])
                    for i, h in enumerate(header))
    )
    lines.append(indent + "-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        lines.append(
            indent
            + "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)
