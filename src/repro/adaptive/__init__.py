"""Adaptive sampling: grow ``K`` until the estimates are certified.

The sampled backends of :mod:`repro.faultsim` estimate ``N(f)`` and
``nmin`` from a *fixed* ``K``-vector draw; this package closes the loop
on choosing ``K``:

``controller``
    :class:`AdaptiveSampler` / :class:`StoppingRule` — seeded rounds of
    incremental universe growth (old vectors are never re-simulated, in
    both big-int and numpy-packed representations; each round's delta
    build can shard across worker processes) until the confidence
    intervals of the ``k``-smallest ``N(f)`` estimates meet a target
    half-width or the budget runs out; returns an
    :class:`AdaptiveReport` with the per-round trajectory.
``strata``
    :class:`StrataPlan` / :class:`StratifiedVectorUniverse` — a
    partition of ``U`` by rare bridging-fault activation predicates
    (exact populations from enumerated support cones), per-stratum
    Neyman sample allocation, and finite-population-corrected
    estimators that recombine into unbiased ``N(f)`` estimates.
``backend``
    :class:`AdaptiveBackend` — the controller behind the standard
    :class:`~repro.faultsim.backends.DetectionBackend` protocol (CLI:
    ``--backend adaptive --target-halfwidth H [--stratify bridging]``).

Entry points: ``repro analyze CIRCUIT --backend adaptive``,
``make_backend("adaptive", ...)``, ``FaultUniverse(circuit,
backend=AdaptiveBackend(...))``, and ``REPRO_BACKEND=adaptive`` in the
experiment harness.
"""

from repro.adaptive.backend import AdaptiveBackend
from repro.adaptive.controller import (
    DEFAULT_RULE,
    STRATIFY_SCHEMES,
    AdaptiveReport,
    AdaptiveRound,
    AdaptiveSampler,
    FocusEstimate,
    StoppingRule,
)
from repro.adaptive.strata import (
    ActivationPredicate,
    StrataPlan,
    StratifiedVectorUniverse,
    Stratum,
    build_bridging_strata,
    neyman_allocation,
    stratified_interval,
)

__all__ = [
    "AdaptiveBackend",
    "DEFAULT_RULE",
    "STRATIFY_SCHEMES",
    "AdaptiveReport",
    "AdaptiveRound",
    "AdaptiveSampler",
    "FocusEstimate",
    "StoppingRule",
    "ActivationPredicate",
    "StrataPlan",
    "StratifiedVectorUniverse",
    "Stratum",
    "build_bridging_strata",
    "neyman_allocation",
    "stratified_interval",
]
