"""The adaptive sampling controller: grow ``K`` until the CI is tight.

A fixed ``--samples K`` draw (PR 1) forces the user to guess the sample
size that makes the smallest ``N(f)`` estimates trustworthy — and the
guess is unfalsifiable from inside the run.  The
:class:`AdaptiveSampler` replaces the guess with a *stopping rule*: it
draws a small seeded universe, builds detection tables for both fault
models, inspects the confidence intervals of the current ``k``-smallest
``N(f)`` set, and keeps growing the universe geometrically until the
intervals meet a target half-width or the sample budget is exhausted.

Two properties make the controller cheap and reproducible:

**Incremental growth.**  Rounds extend one universe; previously drawn
vectors are *never re-simulated*.  Each round builds signatures only
for the fresh vectors (through a
:class:`~repro.faultsim.backends.FixedUniverseBackend`, optionally
sharded across worker processes by
:class:`~repro.parallel.ParallelBackend` — reusing the shard plan and
persistent shard cache machinery), then splices the new columns into
the accumulated signatures.  The splice exists in both representations:
big-int signatures take the fresh bits via shifted ORs, numpy-packed
blocks via :func:`~repro.logic.packed.widen_matrix` /
:func:`~repro.logic.packed.scatter_columns`.  Total simulation cost at
final size ``K`` is therefore one ``K``-vector build, not the
``K + K/2 + K/4 + …`` a restart-based search pays.

**Determinism.**  Draws come from seeded streams (one per stratum in
stratified mode), allocations are integer-deterministic, and the
per-round table builds inherit the parallel subsystem's bit-for-bit
identity guarantee — so the whole trajectory (round sizes, allocations,
intervals, final tables) is identical at any ``jobs`` value, and a run
whose budget covers ``2**p`` canonicalizes to the *exact* exhaustive
result, like the fixed sampled engine does.

Stopping rule semantics (``StoppingRule``): every fault's interval must
satisfy the *absolute* criterion ``half_width <= target * |U|``, and the
``k``-smallest positive estimates of the *focus pool* must additionally
satisfy the *relative* criterion ``half_width <= target * estimate`` —
the rare-event precision that drives the worst-case conclusions.  The
focus pool is every detectable fault under uniform growth, and the
importance-covered bridging faults under ``stratify="bridging"`` (a
fault whose activation region lies inside the sampled strata is exactly
one whose relative precision the plan can certify).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.adaptive.strata import (
    StrataPlan,
    StratifiedVectorUniverse,
    build_bridging_strata,
    neyman_allocation,
)
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.faults.bridging import four_way_bridging_faults
from repro.faults.stuck_at import collapsed_stuck_at_faults
from repro.faultsim.backends import FixedUniverseBackend
from repro.faultsim.detection import DetectionTable
from repro.faultsim.sampling import (
    CountEstimate,
    VectorUniverse,
    confidence_z,
    count_interval,
)
from repro.logic.bitops import iter_set_bits

#: Stratification schemes accepted by the controller / CLI.
STRATIFY_SCHEMES: tuple[str, ...] = ("bridging",)


@dataclass(frozen=True)
class StoppingRule:
    """When is the sampled universe big enough?

    Attributes
    ----------
    target_halfwidth:
        Relative precision target in ``(0, 1]``; both criteria scale by
        it (absolute: fraction of ``|U|``; relative: fraction of the
        estimate).
    confidence:
        Interval confidence level, in the open interval ``(0, 1)``
        (``1.0`` would demand an infinite normal interval and raises).
    k_smallest:
        Size of the focus set — the ``k`` smallest positive ``N(f)``
        estimates whose intervals must meet the relative criterion.
        Must be ``>= 1``: a zero-fault focus would declare victory
        without certifying anything.
    initial_samples / max_samples:
        First-round draw and total budget (``K`` never exceeds
        ``min(max_samples, 2**p)``; reaching ``2**p`` is the exact
        degenerate case).
    growth:
        Geometric factor between rounds (``>= 2``).
    """

    target_halfwidth: float = 0.05
    confidence: float = 0.95
    k_smallest: int = 8
    initial_samples: int = 64
    max_samples: int = 1 << 14
    growth: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.target_halfwidth <= 1.0:
            raise AnalysisError(
                f"target_halfwidth must be in (0, 1], got "
                f"{self.target_halfwidth}"
            )
        confidence_z(self.confidence)  # raises outside (0, 1)
        if self.k_smallest < 1:
            raise AnalysisError(
                f"k_smallest must be >= 1, got {self.k_smallest} "
                f"(an empty focus set certifies nothing)"
            )
        if self.initial_samples < 1:
            raise AnalysisError(
                f"initial_samples must be >= 1, got {self.initial_samples}"
            )
        if self.max_samples < self.initial_samples:
            raise AnalysisError(
                f"max_samples ({self.max_samples}) must be >= "
                f"initial_samples ({self.initial_samples})"
            )
        if self.growth < 2:
            raise AnalysisError(
                f"growth must be >= 2, got {self.growth}"
            )


#: The defaults the CLI / ``make_backend`` fall back to.
DEFAULT_RULE = StoppingRule()


@dataclass(frozen=True)
class FocusEstimate:
    """One focus fault's interval at a given round."""

    kind: str  # "stuck_at" | "bridging"
    fault_index: int
    estimate: CountEstimate

    @property
    def relative_halfwidth(self) -> float:
        if self.estimate.estimate <= 0.0:
            return math.inf
        return self.estimate.half_width / self.estimate.estimate


@dataclass
class AdaptiveRound:
    """Trajectory record of one growth round."""

    index: int
    k_before: int
    k_new: int
    k_total: int
    allocation: tuple[int, ...] | None
    absolute_worst: float
    relative_worst: float | None
    focus_size: int
    met: bool

    def render(self, target: float) -> str:
        rel = (
            "n/a"
            if self.relative_worst is None
            else f"{self.relative_worst:.4f}"
        )
        alloc = (
            ""
            if self.allocation is None
            else f"  strata+={list(self.allocation)}"
        )
        return (
            f"round {self.index}: K={self.k_total} (+{self.k_new})  "
            f"abs hw/|U|={self.absolute_worst:.4f}  "
            f"focus hw/est={rel}  target={target}  "
            f"{'met' if self.met else 'not met'}{alloc}"
        )


@dataclass
class AdaptiveReport:
    """Everything an adaptive run produced.

    ``untargeted_table`` is *undropped* (every four-way bridging fault,
    detectable or not, so rounds stay aligned); consumers wanting the
    paper's ``G`` apply the detectability filter —
    :class:`~repro.adaptive.backend.AdaptiveBackend` does this when
    serving ``build_bridging``.
    """

    circuit: Circuit
    rule: StoppingRule
    seed: int
    representation: str
    plan: StrataPlan | None
    rounds: list[AdaptiveRound]
    universe: VectorUniverse
    target_table: DetectionTable
    untargeted_table: DetectionTable
    focus: list[FocusEstimate]
    met: bool
    reason: str

    @property
    def total_vectors(self) -> int:
        """Distinct vectors simulated over the whole run (== final K)."""
        return self.universe.size

    @property
    def stratified(self) -> bool:
        return self.plan is not None and self.plan.num_strata > 1

    def trajectory_lines(self) -> list[str]:
        lines = [r.render(self.rule.target_halfwidth) for r in self.rounds]
        lines.append(
            f"{self.reason}: {self.total_vectors} vectors simulated in "
            f"{len(self.rounds)} round(s)"
        )
        return lines


class AdaptiveSampler:
    """Run the adaptive growth loop for one circuit.

    Parameters
    ----------
    circuit:
        Any normal-form circuit (no input cap — this is a sampling
        engine).
    rule:
        The stopping rule (default :data:`DEFAULT_RULE`).
    seed:
        Master seed for every draw stream.
    stratify:
        ``None`` for uniform growth, ``"bridging"`` for the
        rare-activation strata of :func:`build_bridging_strata` (falls
        back to uniform when the circuit has no enumerable rare event —
        recorded in the report's ``plan``).
    representation:
        ``"bigint"``, ``"packed"``, or ``"auto"`` (packed when numpy is
        available).  Both representations produce bit-identical tables.
    jobs:
        Worker processes for each round's delta table build (sharded
        through :class:`~repro.parallel.ParallelBackend`; results are
        identical at any value).
    executor:
        Optional :class:`~repro.parallel.executors.ShardExecutor` for
        the round delta builds — with a queue executor, every round's
        shards distribute across ``repro worker`` processes; results
        stay bit-identical on any substrate.
    use_cache:
        Whether delta builds may use the persistent shard cache.
    on_round:
        Optional observer called with each :class:`AdaptiveRound` as
        soon as the round is evaluated (the analysis service streams
        these as chunked progress lines).  Purely observational: the
        trajectory is bit-identical with or without it.
    """

    def __init__(
        self,
        circuit: Circuit,
        rule: StoppingRule | None = None,
        seed: int = 0,
        stratify: str | None = None,
        representation: str = "auto",
        jobs: int = 1,
        executor: object | None = None,
        use_cache: bool = True,
        on_round: "Callable[[AdaptiveRound], None] | None" = None,
    ):
        if stratify is not None and stratify not in STRATIFY_SCHEMES:
            raise AnalysisError(
                f"unknown stratification scheme {stratify!r}; choose "
                f"from {', '.join(STRATIFY_SCHEMES)} (or omit it)"
            )
        if representation not in ("auto", "bigint", "packed"):
            raise AnalysisError(
                f"representation must be auto|bigint|packed, got "
                f"{representation!r}"
            )
        if jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {jobs}")
        if representation == "auto":
            from repro.logic.packed import have_numpy

            representation = "packed" if have_numpy() else "bigint"
        elif representation == "packed":
            from repro.logic.packed import require_numpy

            require_numpy()
        self.circuit = circuit
        self.rule = rule if rule is not None else DEFAULT_RULE
        self.seed = seed
        self.stratify = stratify
        self.representation = representation
        self.jobs = jobs
        self.executor = executor
        self.use_cache = use_cache
        self.on_round = on_round

    # -- draw streams --------------------------------------------------
    def _stream(self, stratum: int) -> random.Random:
        # Distinct deterministic stream per stratum (PYTHONHASHSEED-free).
        return random.Random(self.seed * 1_000_003 + 7919 * stratum + 1)

    # ------------------------------------------------------------------
    def run(self) -> AdaptiveReport:
        circuit = self.circuit
        rule = self.rule
        p = circuit.num_inputs
        space = 1 << p
        budget = min(rule.max_samples, space)
        plan: StrataPlan | None = None
        if self.stratify == "bridging":
            plan = build_bridging_strata(circuit)
        stratified = plan is not None and plan.num_strata > 1
        faults_f = collapsed_stuck_at_faults(circuit)
        faults_g = four_way_bridging_faults(circuit)
        state = _GrowthState(circuit, len(faults_f), len(faults_g),
                             self.representation)
        num_strata = plan.num_strata if stratified else 1
        if stratified:
            state.stratum_draws = [0] * num_strata
        streams = [self._stream(h) for h in range(num_strata)]
        covered: dict[int, tuple[int, ...]] | None = None
        if stratified:
            index_of = {g: j for j, g in enumerate(faults_g)}
            covered = {}
            for g, touched in plan.covered_fault_strata().items():
                j = index_of.get(g)
                if j is not None:
                    covered[j] = touched
        evaluator = _RuleEvaluator(rule, space, plan if stratified else None,
                                   covered)
        rounds: list[AdaptiveRound] = []
        sigma: list[float] | None = None
        k_total = 0
        while True:
            # One span per growth round: the round's table builds (and,
            # under a parallel backend, their shard spans) nest inside,
            # so a trace shows where each K-doubling spent its time.
            with obs.span(
                "adaptive_round",
                index=len(rounds),
                circuit=circuit.name,
            ) as round_span:
                k_target = (
                    min(rule.initial_samples, budget)
                    if k_total == 0
                    else min(k_total * rule.growth, budget)
                )
                k_new = k_target - k_total
                allocation = None
                if k_target >= space:
                    # Completion round: the budget covers all of U —
                    # finish the universe deterministically and exactly.
                    new_vectors = sorted(
                        set(range(space)) - state.seen
                    )
                elif stratified:
                    allocation = self._allocate(plan, k_new, sigma, state)
                    new_vectors = self._draw_stratified(
                        plan, allocation, streams, state
                    )
                else:
                    new_vectors = self._draw_uniform(
                        k_new, space, streams[0], state
                    )
                self._extend(faults_f, faults_g, new_vectors, state)
                k_total = len(state.drawn)
                evaluation = evaluator.evaluate(state)
                sigma = evaluation.sigma
                met = evaluation.met
                rounds.append(
                    AdaptiveRound(
                        index=len(rounds),
                        k_before=k_total - len(new_vectors),
                        k_new=len(new_vectors),
                        k_total=k_total,
                        allocation=(
                            tuple(allocation)
                            if allocation is not None
                            else None
                        ),
                        absolute_worst=evaluation.absolute_worst,
                        relative_worst=evaluation.relative_worst,
                        focus_size=len(evaluation.focus),
                        met=met,
                    )
                )
                round_span.set(
                    k_new=len(new_vectors),
                    k_total=k_total,
                    absolute_worst=evaluation.absolute_worst,
                    relative_worst=evaluation.relative_worst,
                    met=met,
                )
            obs.metrics().counter(
                "repro_adaptive_rounds_total",
                help="Growth rounds executed by the adaptive sampler",
            ).inc()
            if self.on_round is not None:
                self.on_round(rounds[-1])
            if met:
                reason = (
                    "exact (universe exhausted)"
                    if k_total == space
                    else "target met"
                )
                break
            if k_total >= budget:
                reason = "sample budget exhausted"
                break
        universe, sigs_f, sigs_g, packed_f, packed_g = state.finalize(
            plan if stratified else None
        )
        if self.representation == "packed":
            from repro.faultsim.packed_table import PackedDetectionTable

            target_table: DetectionTable = PackedDetectionTable(
                circuit, list(faults_f), sigs_f, universe, packed_f
            )
            untargeted_table: DetectionTable = PackedDetectionTable(
                circuit, list(faults_g), sigs_g, universe, packed_g
            )
        else:
            target_table = DetectionTable(
                circuit, list(faults_f), sigs_f, universe
            )
            untargeted_table = DetectionTable(
                circuit, list(faults_g), sigs_g, universe
            )
        return AdaptiveReport(
            circuit=circuit,
            rule=rule,
            seed=self.seed,
            representation=self.representation,
            plan=plan,
            rounds=rounds,
            universe=universe,
            target_table=target_table,
            untargeted_table=untargeted_table,
            focus=evaluation.focus,
            met=met,
            reason=reason,
        )

    # -- drawing -------------------------------------------------------
    @staticmethod
    def _draw_uniform(k_new, space, rng, state) -> list[int]:
        out: list[int] = []
        seen = state.seen
        while len(out) < k_new:
            v = rng.randrange(space)
            if v in seen:
                continue
            seen.add(v)
            out.append(v)
        return out

    @staticmethod
    def _allocate(plan, k_new, sigma, state) -> list[int]:
        if sigma is None:
            # Round 0: equal split — maximal importance boost while no
            # variance information exists (weights N_h * 1/N_h == 1).
            sigma = [
                1.0 / max(1, s.population) for s in plan.strata
            ]
        return neyman_allocation(
            plan, k_new, sigma, list(state.stratum_draws)
        )

    @staticmethod
    def _draw_stratified(plan, allocation, streams, state) -> list[int]:
        out: list[int] = []
        seen = state.seen
        for h, quota in enumerate(allocation):
            rng = streams[h]
            got = 0
            while got < quota:
                v = plan.draw_from_stratum(h, rng)
                if v in seen:
                    continue
                seen.add(v)
                out.append(v)
                state.stratum_draws[h] += 1
                got += 1
        return out

    # -- incremental extension -----------------------------------------
    def _extend(self, faults_f, faults_g, new_vectors, state) -> None:
        if not new_vectors:
            return
        delta_sorted = tuple(sorted(new_vectors))
        backend = FixedUniverseBackend(
            self.circuit.num_inputs,
            delta_sorted,
            packed=self.representation == "packed",
        )
        if self.jobs > 1 or self.executor is not None:
            from repro.parallel import maybe_parallel

            engine = maybe_parallel(
                backend, self.jobs, use_cache=self.use_cache,
                executor=self.executor,
            )
        else:
            engine = backend
        base = backend.line_signatures(self.circuit)
        table_f = engine.build_stuck_at(
            self.circuit, faults=list(faults_f), base_signatures=base,
            drop_undetectable=False,
        )
        table_g = engine.build_bridging(
            self.circuit, faults=list(faults_g), base_signatures=base,
            drop_undetectable=False,
        )
        state.splice(new_vectors, delta_sorted, table_f, table_g)


class _GrowthState:
    """Accumulated draw-order signatures, in one of two representations.

    Signature bit ``d`` refers to ``drawn[d]`` — *draw order*, not
    sorted order, so extension is append-only and never moves an
    existing bit.  :meth:`finalize` permutes the columns into the sorted
    order a :class:`VectorUniverse` requires, once.
    """

    def __init__(self, circuit, num_f, num_g, representation):
        self.circuit = circuit
        self.representation = representation
        self.drawn: list[int] = []
        self.seen: set[int] = set()
        self.stratum_draws: list[int] = []
        if representation == "packed":
            from repro.logic.packed import PackedSignatureMatrix, _np

            self.acc_f = PackedSignatureMatrix(
                _np.zeros((num_f, 1), dtype=_np.uint64), 0
            )
            self.acc_g = PackedSignatureMatrix(
                _np.zeros((num_g, 1), dtype=_np.uint64), 0
            )
        else:
            self.acc_f = [0] * num_f
            self.acc_g = [0] * num_g

    def splice(self, new_vectors, delta_sorted, table_f, table_g) -> None:
        base = len(self.drawn)
        position_of = {v: base + i for i, v in enumerate(new_vectors)}
        positions = [position_of[v] for v in delta_sorted]
        self.drawn.extend(new_vectors)
        if self.representation == "packed":
            from repro.logic.packed import scatter_columns, widen_matrix

            self.acc_f = widen_matrix(self.acc_f, len(self.drawn))
            self.acc_g = widen_matrix(self.acc_g, len(self.drawn))
            scatter_columns(self.acc_f, table_f.packed, positions)
            scatter_columns(self.acc_g, table_g.packed, positions)
        else:
            self._splice_bigint(self.acc_f, table_f.signatures, positions)
            self._splice_bigint(self.acc_g, table_g.signatures, positions)

    @staticmethod
    def _splice_bigint(acc, delta_signatures, positions) -> None:
        for i, sig in enumerate(delta_signatures):
            if not sig:
                continue
            add = 0
            for b in iter_set_bits(sig):
                add |= 1 << positions[b]
            acc[i] |= add

    # -- queries the rule evaluator needs ------------------------------
    def counts(self) -> tuple[list[int], list[int]]:
        """Draw-order popcounts (``N`` in sample space) per table."""
        if self.representation == "packed":
            return (
                [int(c) for c in self.acc_f.popcount_rows()],
                [int(c) for c in self.acc_g.popcount_rows()],
            )
        return (
            [s.bit_count() for s in self.acc_f],
            [s.bit_count() for s in self.acc_g],
        )

    def stratum_count_arrays(self, masks) -> tuple[list, list]:
        """Per-stratum popcounts: ``out[h][i]`` for each table."""
        if self.representation == "packed":
            from repro.logic.packed import pack_signature

            size = max(1, len(self.drawn))
            out_f, out_g = [], []
            for mask in masks:
                row = pack_signature(mask, size)
                out_f.append(
                    [int(c) for c in self.acc_f.and_popcount(row)]
                )
                out_g.append(
                    [int(c) for c in self.acc_g.and_popcount(row)]
                )
            return out_f, out_g
        out_f = [
            [(s & mask).bit_count() for s in self.acc_f] for mask in masks
        ]
        out_g = [
            [(s & mask).bit_count() for s in self.acc_g] for mask in masks
        ]
        return out_f, out_g

    def finalize(self, plan):
        """Sorted-order universe + signatures (both representations)."""
        p = self.circuit.num_inputs
        space = 1 << p
        sorted_vectors = sorted(self.drawn)
        exhausted = len(sorted_vectors) == space
        if exhausted:
            universe: VectorUniverse = VectorUniverse(p)
        elif plan is not None:
            universe = StratifiedVectorUniverse(
                p, tuple(sorted_vectors), plan=plan
            )
        else:
            universe = VectorUniverse(p, tuple(sorted_vectors))
        draw_position = {v: d for d, v in enumerate(self.drawn)}
        order = [draw_position[v] for v in sorted_vectors]
        if self.representation == "packed":
            from repro.logic.packed import gather_columns

            packed_f = gather_columns(self.acc_f, order)
            packed_g = gather_columns(self.acc_g, order)
            return (
                universe,
                packed_f.to_bigints(),
                packed_g.to_bigints(),
                packed_f,
                packed_g,
            )
        new_bit = [0] * len(order)
        for sorted_bit, draw_bit in enumerate(order):
            new_bit[draw_bit] = sorted_bit
        sigs_f = [self._permute(s, new_bit) for s in self.acc_f]
        sigs_g = [self._permute(s, new_bit) for s in self.acc_g]
        return universe, sigs_f, sigs_g, None, None

    @staticmethod
    def _permute(signature, new_bit) -> int:
        out = 0
        for b in iter_set_bits(signature):
            out |= 1 << new_bit[b]
        return out


@dataclass
class _Evaluation:
    met: bool
    absolute_worst: float
    relative_worst: float | None
    focus: list[FocusEstimate]
    sigma: list[float] | None


class _RuleEvaluator:
    """Applies the stopping rule to the accumulated draw-order state."""

    def __init__(self, rule, space, plan, covered):
        self.rule = rule
        self.space = space
        self.plan = plan
        self.covered = covered  # bridging indices, stratified mode only
        self.z = confidence_z(rule.confidence)

    def evaluate(self, state: _GrowthState) -> _Evaluation:
        if self.plan is None:
            return self._evaluate_uniform(state)
        return self._evaluate_stratified(state)

    @staticmethod
    def _select_focus(pool, k_smallest) -> list[FocusEstimate]:
        """The ``k`` smallest positive estimates (deterministic order)."""
        pool.sort(
            key=lambda fe: (fe.estimate.estimate, fe.kind, fe.fault_index)
        )
        return pool[:k_smallest]

    # -- uniform -------------------------------------------------------
    def _evaluate_uniform(self, state) -> _Evaluation:
        universe = VectorUniverse(
            state.circuit.num_inputs, tuple(sorted(state.drawn))
        )
        counts_f, counts_g = state.counts()
        intervals: dict[int, CountEstimate] = {}

        def interval(count) -> CountEstimate:
            found = intervals.get(count)
            if found is None:
                found = count_interval(
                    universe, count, self.rule.confidence
                )
                intervals[count] = found
            return found

        absolute_worst = 0.0
        pool: list[FocusEstimate] = []
        for kind, counts in (
            ("stuck_at", counts_f), ("bridging", counts_g)
        ):
            for i, count in enumerate(counts):
                est = interval(count)
                rel_hw = est.half_width / self.space
                if rel_hw > absolute_worst:
                    absolute_worst = rel_hw
                if est.estimate > 0.0:
                    pool.append(FocusEstimate(kind, i, est))
        target = self.rule.target_halfwidth
        focus = self._select_focus(pool, self.rule.k_smallest)
        relative_worst = (
            max(fe.relative_halfwidth for fe in focus) if focus else None
        )
        met = absolute_worst <= target and (
            relative_worst is None or relative_worst <= target
        )
        return _Evaluation(met, absolute_worst, relative_worst, focus, None)

    # -- stratified ----------------------------------------------------
    def _evaluate_stratified(self, state) -> _Evaluation:
        plan = self.plan
        masks = self._draw_order_masks(state)
        draws = [m.bit_count() for m in masks]
        per_f, per_g = state.stratum_count_arrays(masks)
        z = self.z
        z2 = z * z
        populations = [s.population for s in plan.strata]
        # Per-stratum terms shared by every fault this round.
        scale = [
            pop / d if d else 0.0 for pop, d in zip(populations, draws, strict=True)
        ]
        var_factor = []
        for pop, d in zip(populations, draws, strict=True):
            if d == 0 or d >= pop:
                var_factor.append(0.0)
            else:
                fpc = (pop - d) / (pop - 1) if pop > 1 else 0.0
                var_factor.append(pop * pop / d * fpc)
        num_strata = plan.num_strata
        sigma = [0.0] * num_strata
        absolute_worst = 0.0
        pool: list[tuple[FocusEstimate, list[float]]] = []
        covered = self.covered or {}
        target = self.rule.target_halfwidth

        def build(kind, i, per_stratum, allowed):
            # ``allowed`` restricts the estimator to the strata a
            # covered fault's detection set can actually touch — its
            # activation region is disjoint from every other stratum, a
            # structural fact of the plan, so those contribute neither
            # estimate nor variance.
            est = 0.0
            var = 0.0
            sample_count = 0
            sds = [0.0] * num_strata
            fault_slack = 0.0
            for h in range(num_strata) if allowed is None else allowed:
                k_h = per_stratum[h][i]
                sample_count += k_h
                d = draws[h]
                if d == 0:
                    sds[h] = 0.5  # nothing known about this stratum
                    fault_slack += populations[h]
                    continue
                est += k_h * scale[h]
                smoothed = (k_h + z2 / 2.0) / (d + z2)
                sds[h] = math.sqrt(smoothed * (1.0 - smoothed))
                var += var_factor[h] * smoothed * (1.0 - smoothed)
            half = z * math.sqrt(var) if var > 0.0 else 0.0
            ce = CountEstimate(
                sample_count,
                est,
                max(0.0, est - half),
                min(float(self.space), est + half + fault_slack),
                self.rule.confidence,
            )
            return FocusEstimate(kind, i, ce), sds

        for kind, per_stratum, faults in (
            ("stuck_at", per_f, len(per_f[0])),
            ("bridging", per_g, len(per_g[0])),
        ):
            for i in range(faults):
                allowed = covered.get(i) if kind == "bridging" else None
                fe, sds = build(kind, i, per_stratum, allowed)
                rel_hw = fe.estimate.half_width / self.space
                if rel_hw > absolute_worst:
                    absolute_worst = rel_hw
                if rel_hw > target:
                    # Absolute criterion unmet: this fault's variance
                    # profile steers the next round's allocation.
                    for h, sd in enumerate(sds):
                        if sd > sigma[h]:
                            sigma[h] = sd
                if kind == "bridging" and allowed is not None:
                    if fe.estimate.estimate > 0.0:
                        pool.append((fe, sds))
        focus_pool = [fe for fe, _ in pool]
        focus = self._select_focus(focus_pool, self.rule.k_smallest)
        sds_of = {id(fe): sds for fe, sds in pool}
        relative_worst = (
            max(fe.relative_halfwidth for fe in focus) if focus else None
        )
        for fe in focus:
            if fe.relative_halfwidth > target:
                # Unmet focus faults steer the allocation toward *their*
                # strata — the importance half of the controller.
                for h, sd in enumerate(sds_of[id(fe)]):
                    if sd > sigma[h]:
                        sigma[h] = sd
        met = absolute_worst <= target and (
            relative_worst is None or relative_worst <= target
        )
        return _Evaluation(
            met, absolute_worst, relative_worst, focus, sigma
        )

    def _draw_order_masks(self, state) -> list[int]:
        plan = self.plan
        masks = [0] * plan.num_strata
        for bit, vector in enumerate(state.drawn):
            masks[plan.stratum_of(vector)] |= 1 << bit
        return masks
