"""``AdaptiveBackend``: the controller behind the backend protocol.

The adaptive controller inherently couples the two table builds — one
growth trajectory serves both ``F`` and ``G`` — while the
:class:`~repro.faultsim.backends.DetectionBackend` protocol asks for
them one at a time.  The backend therefore runs the controller once per
circuit (memoized on the instance) and serves both builds, the final
universe, and the line signatures from the same
:class:`~repro.adaptive.controller.AdaptiveReport`.

Parallelism is *internal*: each growth round shards its delta build
through :class:`~repro.parallel.ParallelBackend`, so the backend
exposes :meth:`with_execution` (and the older :meth:`with_jobs` sugar)
and must never itself be wrapped in a parallel backend (wrapping would
re-run the whole controller once per fault shard;
:func:`repro.parallel.maybe_parallel` knows to inject the worker count
and shard executor here instead).  With a
:class:`~repro.parallel.executors.QueueExecutor` injected, every
round's delta build distributes across ``repro worker`` processes —
the trajectory stays bit-identical, only the substrate changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.adaptive.controller import (
    AdaptiveReport,
    AdaptiveRound,
    AdaptiveSampler,
    StoppingRule,
)
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.faults.bridging import BridgingFault
from repro.faults.stuck_at import StuckAtFault
from repro.faultsim.detection import (
    DetectionTable,
    universe_line_signatures,
)
from repro.faultsim.sampling import VectorUniverse


@dataclass(frozen=True)
class AdaptiveBackend:
    """Adaptive-``K`` detection tables behind the standard protocol.

    Frozen and hashable like every other engine, so the experiment-layer
    caches key on the full configuration.  ``jobs`` and ``executor`` are
    excluded from equality/hash on purpose: the trajectory is
    bit-identical on any execution substrate (the adaptive differential
    suite enforces this), so a ``jobs=4`` or queue-distributed run must
    share cached tables with a single-process run.
    """

    target_halfwidth: float = 0.05
    confidence: float = 0.95
    k_smallest: int = 8
    initial_samples: int = 64
    max_samples: int = 1 << 14
    growth: int = 2
    seed: int = 0
    stratify: str | None = None
    representation: str = "auto"
    jobs: int = field(default=1, compare=False)
    executor: object | None = field(default=None, compare=False)
    use_cache: bool = field(default=True, compare=False)
    #: Optional per-round observer (see AdaptiveSampler.on_round).
    #: Excluded from equality *and* repr: a streamed service run must
    #: share cache keys — in-memory and content-addressed — with an
    #: unobserved run of the same configuration.
    on_round: Callable[[AdaptiveRound], None] | None = field(
        default=None, compare=False, repr=False
    )
    name: str = "adaptive"
    needs_base_signatures = False

    def __post_init__(self) -> None:
        self.rule  # validates every rule parameter eagerly
        if self.jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {self.jobs}")
        object.__setattr__(self, "_reports", {})

    # -- configuration -------------------------------------------------
    @property
    def rule(self) -> StoppingRule:
        return StoppingRule(
            target_halfwidth=self.target_halfwidth,
            confidence=self.confidence,
            k_smallest=self.k_smallest,
            initial_samples=self.initial_samples,
            max_samples=self.max_samples,
            growth=self.growth,
        )

    def with_jobs(self, jobs: int) -> "AdaptiveBackend":
        """Copy with the worker count for the internal round builds."""
        return self.with_execution(jobs=jobs)

    def with_execution(
        self, jobs: int | None = None, executor: object | None = None
    ) -> "AdaptiveBackend":
        """Copy with the execution substrate for the round delta builds.

        This is the injection point :func:`repro.parallel.maybe_parallel`
        uses instead of wrapping the controller in a
        :class:`~repro.parallel.ParallelBackend`.
        """
        return replace(
            self,
            jobs=self.jobs if jobs is None else jobs,
            executor=self.executor if executor is None else executor,
        )

    # -- the memoized controller run -----------------------------------
    def report_for(self, circuit: Circuit) -> AdaptiveReport:
        """The adaptive run for ``circuit`` (executed once, then cached)."""
        key = id(circuit)
        cached = self._reports.get(key)
        if cached is not None and cached[0] is circuit:
            return cached[1]
        report = AdaptiveSampler(
            circuit,
            rule=self.rule,
            seed=self.seed,
            stratify=self.stratify,
            representation=self.representation,
            jobs=self.jobs,
            executor=self.executor,
            use_cache=self.use_cache,
            on_round=self.on_round,
        ).run()
        self._reports[key] = (circuit, report)
        return report

    @property
    def builds_packed(self) -> bool:
        if self.representation == "packed":
            return True
        if self.representation == "bigint":
            return False
        from repro.logic.packed import have_numpy

        return have_numpy()

    # -- protocol ------------------------------------------------------
    def universe_for(self, circuit: Circuit) -> VectorUniverse:
        return self.report_for(circuit).universe

    def line_signatures(self, circuit: Circuit) -> list[int]:
        return universe_line_signatures(
            circuit, self.universe_for(circuit)
        )

    def build_stuck_at(
        self,
        circuit: Circuit,
        faults: list[StuckAtFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = False,
    ) -> DetectionTable:
        report = self.report_for(circuit)
        table = report.target_table
        self._check_faults(circuit, faults, table.faults, "stuck-at")
        if drop_undetectable:
            return self._dropped(table)
        return table

    def build_bridging(
        self,
        circuit: Circuit,
        faults: list[BridgingFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = True,
    ) -> DetectionTable:
        report = self.report_for(circuit)
        table = report.untargeted_table
        self._check_faults(circuit, faults, table.faults, "bridging")
        if drop_undetectable:
            return self._dropped(table)
        return table

    @staticmethod
    def _check_faults(circuit, requested, available, kind) -> None:
        if requested is not None and list(requested) != list(available):
            raise AnalysisError(
                f"the adaptive backend builds the standard {kind} fault "
                f"set of {circuit.name!r} in one coupled run; pass "
                f"faults=None (or exactly the standard list)"
            )

    @staticmethod
    def _dropped(table: DetectionTable) -> DetectionTable:
        kept = [
            (f, s)
            for f, s in zip(table.faults, table.signatures, strict=True)
            if s
        ]
        faults = [f for f, _ in kept]
        signatures = [s for _, s in kept]
        if type(table) is not DetectionTable:
            # Numpy-packed tables re-derive the packed block from the
            # filtered signatures (same class, same universe).
            return type(table)(
                table.circuit, faults, signatures, table.universe
            )
        return DetectionTable(
            table.circuit, faults, signatures, table.universe
        )
