"""Stratified / importance strata for rare-activation bridging faults.

The heavy-``nmin`` tail of the worst-case analysis lives exactly where
uniform sampling is weakest: bridging faults whose *activation* event
(fault-free ``l1 = a1`` and ``l2 = a2``) holds on a tiny fraction of
``U``.  A uniform ``K``-draw observes such a fault ``K * p_act`` times
in expectation, so certifying its ``N(g)`` to a relative precision costs
``K ~ 1/p_act`` — hopeless for activation probabilities in the 2**-10
range.  Stratified sampling fixes this by carving the *activation
regions themselves* out of ``U`` and sampling them directly.

Construction (:func:`build_bridging_strata`):

1. every non-feedback bridging pair site whose combined input-support
   cone is small enough to enumerate is evaluated *exactly*: the two
   activation events per pair (``a=0,b=1`` and ``a=1,b=0``) have their
   probabilities computed over the ``2**|S|`` assignments of the support
   cone (everything outside the support is irrelevant to activation);
2. events with small positive probability become candidate
   :class:`ActivationPredicate`\\ s (rarest first); a greedy pass selects
   predicates while the union of their supports stays enumerable;
3. the selected predicates form a *decision list*: stratum ``i`` is the
   set of vectors activating predicate ``i`` but none before it, and the
   final stratum is the bulk (no predicate active).  Classifying the
   ``2**|T|`` assignments of the combined support ``T`` yields **exact**
   stratum populations — every vector of ``U`` belongs to exactly one
   stratum, so the per-stratum estimators recombine into unbiased
   ``N(f)`` estimates.

Each stratum supports direct uniform sampling: pick one of its
(pre-enumerated) support projections uniformly, fill the free inputs
uniformly at random.  Cube semantics (specified support bits + free
bits) follow :mod:`repro.logic.cube`; :meth:`StrataPlan.stratum_cubes`
exposes each stratum as explicit cubes for inspection.

The estimator (:func:`stratified_interval`) is the standard stratified
finite-population one: ``N̂(f) = Σ_h |U_h| · k_h / K_h`` with variance
``Σ_h |U_h|² · p̃_h (1 - p̃_h) / K_h · fpc_h`` (Wilson-center smoothed
``p̃``, per-stratum finite-population correction), recombined into a
normal-approximation :class:`~repro.faultsim.sampling.CountEstimate`.
Sample allocation across strata uses Neyman allocation
(:func:`neyman_allocation`): draws proportional to ``|U_h| · σ_h``,
which concentrates the budget on the rare, high-uncertainty strata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.faults.bridging import BridgingFault, bridging_pair_sites
from repro.faultsim.sampling import (
    CountEstimate,
    VectorUniverse,
    confidence_z,
)
from repro.logic.bitops import iter_set_bits
from repro.logic.cube import Cube
from repro.simulation.twoval import simulate_batch


@dataclass(frozen=True)
class ActivationPredicate:
    """One rare activation event: ``line_a = value_a and line_b = value_b``.

    ``support`` holds the event's input positions (0-based indices into
    ``circuit.inputs``); ``probability`` is the *exact* activation
    probability over ``U``, computed by enumerating the support cone.
    The event covers the two bridging faults that share it as their
    activation condition: ``(a, va, b, vb)`` and ``(b, vb, a, va)``.
    """

    line_a: int
    value_a: int
    line_b: int
    value_b: int
    support: tuple[int, ...]
    probability: float

    def faults(self) -> tuple[BridgingFault, BridgingFault]:
        """The two four-way bridging faults activated by this event."""
        return (
            BridgingFault(self.line_a, self.value_a,
                          self.line_b, self.value_b),
            BridgingFault(self.line_b, self.value_b,
                          self.line_a, self.value_a),
        )

    def label(self, circuit: Circuit) -> str:
        a = circuit.lines[self.line_a].name
        b = circuit.lines[self.line_b].name
        return f"act({a}={self.value_a},{b}={self.value_b})"


@dataclass(frozen=True)
class Stratum:
    """One cell of the partition of ``U``.

    ``projections`` are the assignments over the plan's combined support
    ``T`` whose extensions belong to this stratum; the population is
    ``len(projections) * 2**(p - |T|)`` — exact, since membership
    depends on the ``T`` bits alone.
    """

    index: int
    label: str
    projections: tuple[int, ...]
    population: int


@dataclass(frozen=True)
class StrataPlan:
    """A partition of ``U`` by a decision list of activation predicates.

    Built once per circuit by :func:`build_bridging_strata`; pure data
    (frozen, value-comparable), so universes built from equal plans
    compare equal across processes and ``--jobs`` values.
    """

    num_inputs: int
    support: tuple[int, ...]
    predicates: tuple[ActivationPredicate, ...]
    strata: tuple[Stratum, ...]
    #: ``predicate_touches[i]`` — indices of the strata intersecting
    #: predicate ``i``'s activation region.  By the decision-list
    #: construction these never include the bulk, so a covered fault's
    #: detection set provably avoids every untouched stratum — the
    #: controller uses this to drop their (spurious) variance terms.
    predicate_touches: tuple[tuple[int, ...], ...] = ()
    _proj_to_stratum: dict = field(
        init=False, default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.strata:
            raise AnalysisError("a strata plan needs at least one stratum")
        total = sum(s.population for s in self.strata)
        if total != 1 << self.num_inputs:
            raise AnalysisError(
                f"strata populations sum to {total}, not "
                f"2**{self.num_inputs} — not a partition of U"
            )

    def __getstate__(self) -> dict:
        """Drop lazily-built caches from the pickle payload.

        The plan rides inside every stratified universe that crosses
        the executor boundary; a populated ``_proj_to_stratum`` (one
        entry per support projection) is derived data the receiver
        rebuilds on first :meth:`stratum_of` — the same rule as
        :meth:`repro.faultsim.sampling.VectorUniverse.__getstate__`.
        """
        state = dict(self.__dict__)
        for f in fields(self):
            if not f.init and f.default is None:
                state[f.name] = None
        return state

    # -- geometry ------------------------------------------------------
    @property
    def space(self) -> int:
        return 1 << self.num_inputs

    @property
    def num_strata(self) -> int:
        return len(self.strata)

    @property
    def free_bits(self) -> int:
        """Inputs outside the combined support (free in every stratum)."""
        return self.num_inputs - len(self.support)

    # -- vector <-> stratum mapping ------------------------------------
    def projection_of(self, vector: int) -> int:
        """The vector's assignment over the combined support ``T``."""
        p, t = self.num_inputs, len(self.support)
        proj = 0
        for i, pos in enumerate(self.support):
            if (vector >> (p - 1 - pos)) & 1:
                proj |= 1 << (t - 1 - i)
        return proj

    def stratum_of(self, vector: int) -> int:
        """Index of the stratum containing ``vector``."""
        lookup = self._proj_to_stratum
        if lookup is None:
            lookup = {}
            for s in self.strata:
                for proj in s.projections:
                    lookup[proj] = s.index
            object.__setattr__(self, "_proj_to_stratum", lookup)
        return lookup[self.projection_of(vector)]

    def compose(self, projection: int, free: int) -> int:
        """Vector with ``projection`` on ``T`` and ``free`` elsewhere."""
        p, t = self.num_inputs, len(self.support)
        support = set(self.support)
        v = 0
        for i, pos in enumerate(self.support):
            if (projection >> (t - 1 - i)) & 1:
                v |= 1 << (p - 1 - pos)
        bit = 0
        for pos in range(p):
            if pos in support:
                continue
            if (free >> bit) & 1:
                v |= 1 << (p - 1 - pos)
            bit += 1
        return v

    def draw_from_stratum(self, index: int, rng) -> int:
        """One uniform vector from stratum ``index`` (rejection-free)."""
        s = self.strata[index]
        proj = s.projections[rng.randrange(len(s.projections))]
        free = rng.getrandbits(self.free_bits) if self.free_bits else 0
        return self.compose(proj, free)

    def stratum_cubes(self, index: int) -> list[Cube]:
        """The stratum as explicit input cubes (one per projection)."""
        p, t = self.num_inputs, len(self.support)
        care = 0
        for pos in self.support:
            care |= 1 << (p - 1 - pos)
        cubes = []
        for proj in self.strata[index].projections:
            value = 0
            for i, pos in enumerate(self.support):
                if (proj >> (t - 1 - i)) & 1:
                    value |= 1 << (p - 1 - pos)
            cubes.append(Cube(p, care, value))
        return cubes

    def covered_faults(self) -> list[BridgingFault]:
        """Bridging faults whose whole detection set is importance-covered.

        A fault covered here has its activation region — and therefore
        its entire ``T(g)`` — inside the predicate strata, never in the
        bulk, so its count estimate enjoys the full importance-sampling
        variance reduction.
        """
        out: list[BridgingFault] = []
        for pred in self.predicates:
            out.extend(pred.faults())
        return out

    def covered_fault_strata(self) -> dict[BridgingFault, tuple[int, ...]]:
        """Per covered fault: the strata its detection set can touch."""
        out: dict[BridgingFault, tuple[int, ...]] = {}
        for i, pred in enumerate(self.predicates):
            touches = (
                self.predicate_touches[i]
                if i < len(self.predicate_touches)
                else tuple(range(self.num_strata))
            )
            for fault in pred.faults():
                out[fault] = touches
        return out


def _support_positions(circuit: Circuit, lids: tuple[int, ...]) -> tuple:
    """Input positions feeding any of ``lids`` (sorted, deduplicated)."""
    pos_of = {lid: j for j, lid in enumerate(circuit.inputs)}
    inputs = set(circuit.inputs)
    support: set[int] = set()
    for lid in lids:
        cone = circuit.transitive_fanin(lid)
        cone.add(lid)
        support.update(pos_of[i] for i in cone & inputs)
    return tuple(sorted(support))


def _enumeration_vectors(
    circuit: Circuit, support: tuple[int, ...]
) -> list[int]:
    """One vector per support assignment (free inputs held at 0)."""
    p, t = circuit.num_inputs, len(support)
    vectors = []
    for asg in range(1 << t):
        v = 0
        for i, pos in enumerate(support):
            if (asg >> (t - 1 - i)) & 1:
                v |= 1 << (p - 1 - pos)
        vectors.append(v)
    return vectors


def build_bridging_strata(
    circuit: Circuit,
    max_site_support: int = 12,
    max_support: int = 16,
    max_strata: int = 9,
    rare_threshold: float = 1.0 / 16.0,
    max_candidates: int = 256,
) -> StrataPlan:
    """Strata plan over the circuit's rare bridging activation events.

    Parameters bound the enumeration work: only pair sites whose
    combined support has at most ``max_site_support`` inputs are
    evaluated (cheapest and most concentrated first, at most
    ``max_candidates`` pairs), only events with exact activation
    probability in ``(0, rare_threshold]`` become candidates, and
    predicates are selected greedily (rarest first) while the union of
    their supports stays within ``max_support`` inputs and the plan
    within ``max_strata`` strata (including the bulk).

    Degenerates gracefully: a circuit with no enumerable rare events
    yields the single-stratum (bulk-only) plan, which makes stratified
    sampling coincide with uniform sampling.
    """
    if max_site_support < 1 or max_support < max_site_support:
        raise AnalysisError(
            "strata bounds must satisfy 1 <= max_site_support <= "
            f"max_support, got {max_site_support} / {max_support}"
        )
    if max_strata < 2:
        raise AnalysisError(
            f"max_strata must leave room for one predicate stratum plus "
            f"the bulk (>= 2), got {max_strata}"
        )
    if not 0.0 < rare_threshold <= 1.0:
        raise AnalysisError(
            f"rare_threshold must be in (0, 1], got {rare_threshold}"
        )
    p = circuit.num_inputs
    sites = []
    for a, b in bridging_pair_sites(circuit):
        support = _support_positions(circuit, (a, b))
        if 0 < len(support) <= max_site_support:
            sites.append((len(support), a, b, support))
    sites.sort()
    candidates: list[ActivationPredicate] = []
    for _, a, b, support in sites[:max_candidates]:
        t = len(support)
        lanes = 1 << t
        values = simulate_batch(
            circuit, _enumeration_vectors(circuit, support)
        )
        word_a, word_b = values[a], values[b]
        mask = (1 << lanes) - 1
        for va, vb in ((0, 1), (1, 0)):
            act = (word_a if va else ~word_a & mask) & (
                word_b if vb else ~word_b & mask
            )
            count = act.bit_count()
            probability = count / lanes
            if 0 < probability <= rare_threshold:
                candidates.append(
                    ActivationPredicate(a, va, b, vb, support, probability)
                )
    candidates.sort(
        key=lambda c: (c.probability, c.line_a, c.line_b, c.value_a)
    )
    selected: list[ActivationPredicate] = []
    union: set[int] = set()
    for cand in candidates:
        widened = union | set(cand.support)
        if len(widened) > max_support:
            continue
        selected.append(cand)
        union = widened
        if len(selected) >= max_strata - 1:
            break
    support = tuple(sorted(union))
    t = len(support)
    if not selected:
        bulk = Stratum(0, "bulk", (0,), 1 << p)
        return StrataPlan(p, (), (), (bulk,))
    # Classify every assignment of the combined support by decision list.
    lanes = 1 << t
    mask = (1 << lanes) - 1
    values = simulate_batch(circuit, _enumeration_vectors(circuit, support))
    remaining = mask
    strata: list[Stratum] = []
    kept: list[ActivationPredicate] = []
    acts: list[int] = []
    cells: list[int] = []
    free = p - t
    for pred in selected:
        word_a, word_b = values[pred.line_a], values[pred.line_b]
        act = (word_a if pred.value_a else ~word_a & mask) & (
            word_b if pred.value_b else ~word_b & mask
        )
        cell = act & remaining
        if not cell:
            continue  # fully shadowed by earlier predicates
        remaining &= ~act
        projections = tuple(iter_set_bits(cell))
        kept.append(pred)
        acts.append(act)
        cells.append(cell)
        strata.append(
            Stratum(
                len(strata),
                pred.label(circuit),
                projections,
                len(projections) << free,
            )
        )
    bulk_projections = tuple(iter_set_bits(remaining))
    strata.append(
        Stratum(
            len(strata), "bulk", bulk_projections,
            len(bulk_projections) << free,
        )
    )
    touches = tuple(
        tuple(h for h, cell in enumerate(cells) if act & cell)
        for act in acts
    )
    return StrataPlan(p, support, tuple(kept), tuple(strata), touches)


# ----------------------------------------------------------------------
# The stratified universe and its estimators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StratifiedVectorUniverse(VectorUniverse):
    """A sampled universe whose vectors were drawn stratum by stratum.

    Behaves exactly like a plain sampled
    :class:`~repro.faultsim.sampling.VectorUniverse` (sorted distinct
    vectors, sample-space signatures), but overrides the estimation
    dispatch with the unbiased stratified estimator: per-stratum
    popcounts scaled by per-stratum populations, recombined with
    per-stratum finite-population-corrected variances.  The plan and the
    vector list fully determine the estimator, so equal draws compare
    equal regardless of how many worker processes built the tables.
    """

    plan: StrataPlan | None = None
    _stratum_masks: tuple | None = field(
        init=False, default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.plan is None:
            raise AnalysisError(
                "a stratified universe needs its strata plan"
            )
        if self.plan.num_inputs != self.num_inputs:
            raise AnalysisError(
                "strata plan and universe disagree on the input count"
            )
        if self.vectors is None:
            raise AnalysisError(
                "a stratified universe is always an explicit sample"
            )

    # -- per-stratum geometry ------------------------------------------
    def _masks_and_draws(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Per-stratum signature masks and draw counts (cached)."""
        cached = self._stratum_masks
        if cached is None:
            masks = [0] * self.plan.num_strata
            for bit, vector in enumerate(self.vectors):
                masks[self.plan.stratum_of(vector)] |= 1 << bit
            draws = tuple(m.bit_count() for m in masks)
            cached = (tuple(masks), draws)
            object.__setattr__(self, "_stratum_masks", cached)
        return cached

    @property
    def draws_per_stratum(self) -> tuple[int, ...]:
        return self._masks_and_draws()[1]

    def stratum_counts(self, signature: int) -> list[int]:
        """Per-stratum popcounts of a signature over this universe."""
        masks, _ = self._masks_and_draws()
        return [(signature & m).bit_count() for m in masks]

    # -- estimation dispatch (overrides the uniform estimators) --------
    def estimate_signature(self, signature: int) -> float:
        est = 0.0
        masks, draws = self._masks_and_draws()
        for stratum, mask, drawn in zip(self.plan.strata, masks, draws, strict=True):
            if drawn == 0:
                continue  # no information; population contributes 0
            est += stratum.population * (
                (signature & mask).bit_count() / drawn
            )
        return est

    def interval_for_signature(
        self, signature: int, confidence: float = 0.95
    ) -> CountEstimate:
        return stratified_interval(self, signature, confidence)


def stratified_interval(
    universe: StratifiedVectorUniverse,
    signature: int,
    confidence: float = 0.95,
) -> CountEstimate:
    """Stratified count estimate with a recombined confidence interval.

    ``N̂ = Σ_h N_h k_h / K_h``; the variance sums per-stratum binomial
    variances with the finite-population correction, using the
    Wilson-center smoothed proportion ``p̃ = (k + z²/2) / (K + z²)`` so
    strata observed at exactly 0 or 1 keep a positive variance until
    they are exhausted.  Strata with no draws contribute their *entire*
    population to the uncertainty (we know nothing about them), so the
    interval stays honest before every stratum has been touched.
    """
    z = confidence_z(confidence)
    masks, draws = universe._masks_and_draws()
    est = 0.0
    var = 0.0
    slack = 0.0
    sample_count = 0
    for stratum, mask, drawn in zip(universe.plan.strata, masks, draws, strict=True):
        pop = stratum.population
        k = (signature & mask).bit_count()
        sample_count += k
        if drawn == 0:
            slack += pop
            continue
        est += pop * (k / drawn)
        if drawn >= pop:
            continue  # stratum exhausted: exact, zero variance
        smoothed = (k + z * z / 2.0) / (drawn + z * z)
        fpc = (pop - drawn) / (pop - 1) if pop > 1 else 0.0
        var += (pop * pop) * smoothed * (1.0 - smoothed) / drawn * fpc
    half = z * math.sqrt(var) if var > 0.0 else 0.0
    low = max(0.0, est - half)
    high = min(float(universe.space), est + half + slack)
    return CountEstimate(sample_count, est, low, high, confidence)


def neyman_allocation(
    plan: StrataPlan,
    total: int,
    sigmas: list[float],
    drawn: list[int],
) -> list[int]:
    """Split ``total`` new draws across strata by Neyman allocation.

    Weights are ``N_h · σ_h`` (population times pooled per-stratum
    standard deviation); every non-exhausted stratum receives at least
    one draw while draws remain, allocations never exceed the stratum's
    remaining population, and the integer apportionment (largest
    fractional remainder, stratum index as the tie-break) is fully
    deterministic — a requirement of the bit-identical-across-jobs
    guarantee.
    """
    if total < 0:
        raise AnalysisError(f"allocation total must be >= 0, got {total}")
    m = plan.num_strata
    if len(sigmas) != m or len(drawn) != m:
        raise AnalysisError(
            "sigmas/drawn must have one entry per stratum"
        )
    room = [s.population - d for s, d in zip(plan.strata, drawn, strict=True)]
    if any(r < 0 for r in room):
        raise AnalysisError("stratum overdrawn: draws exceed population")
    total = min(total, sum(room))
    alloc = [0] * m
    if total == 0:
        return alloc
    # Floor: one draw per open stratum (importance guarantee — rare
    # strata are never starved by a dominant bulk weight).
    open_strata = [h for h in range(m) if room[h] > 0]
    for h in open_strata:
        if sum(alloc) >= total:
            break
        alloc[h] = 1
    while True:
        rest = total - sum(alloc)
        if rest <= 0:
            break
        weights = [
            (plan.strata[h].population * max(sigmas[h], 1e-12))
            if alloc[h] < room[h]
            else 0.0
            for h in range(m)
        ]
        weight_sum = sum(weights)
        if weight_sum <= 0.0:
            # Everything with weight is full; spill into any open room.
            for h in range(m):
                take = min(rest, room[h] - alloc[h])
                alloc[h] += take
                rest -= take
                if rest == 0:
                    break
            break
        shares = [rest * w / weight_sum for w in weights]
        extra = [min(int(s), room[h] - alloc[h]) for h, s in enumerate(shares)]
        remainder_order = sorted(
            range(m),
            key=lambda h: (-(shares[h] - int(shares[h])), h),
        )
        spill = rest - sum(extra)
        for h in remainder_order:
            if spill == 0:
                break
            if alloc[h] + extra[h] < room[h]:
                extra[h] += 1
                spill -= 1
        if all(e == 0 for e in extra):
            # Capped everywhere; distribute leftovers linearly.
            for h in range(m):
                take = min(rest, room[h] - alloc[h])
                alloc[h] += take
                rest -= take
                if rest == 0:
                    break
            break
        for h in range(m):
            alloc[h] += extra[h]
    return alloc
