"""``repro serve``: the always-on analysis service.

Layers, bottom up:

:mod:`repro.serve.singleflight`
    Deduplication of concurrent identical builds — N requesters, one
    table construction.
:mod:`repro.serve.stats`
    Request counters and latency histograms behind ``/stats``.
:mod:`repro.serve.service`
    :class:`AnalysisService` — payloads parsed through the CLI's own
    argument parser, a tiered table cache (in-memory LRU hot tier over
    the content-addressed shard cache), and response rendering shared
    with the CLI so service output is byte-identical to ``repro
    analyze`` / ``escape`` / ``partition``.
:mod:`repro.serve.http`
    The asyncio HTTP transport, the foreground :func:`run_server`
    loop behind ``repro serve``, and the :class:`BackgroundServer`
    harness tests and benchmarks embed.
"""

from repro.serve.singleflight import SingleFlight
from repro.serve.stats import EndpointStats, LatencyHistogram, ServiceStats
from repro.serve.service import AnalysisService, ServiceError
from repro.serve.http import BackgroundServer, HttpServer, run_server

__all__ = [
    "AnalysisService",
    "BackgroundServer",
    "EndpointStats",
    "HttpServer",
    "LatencyHistogram",
    "ServiceError",
    "ServiceStats",
    "SingleFlight",
    "run_server",
]
