"""The analysis service: request handling above the transport layer.

:class:`AnalysisService` accepts JSON request payloads, turns them into
the *exact* argv the CLI would parse, builds detection tables through a
tiered cache, and renders responses with the same report functions
``repro analyze`` / ``repro escape`` / ``repro partition`` use — so a
service response is byte-identical to the corresponding CLI run.

Tiered cache
    The hot tier is a bounded in-memory :class:`~repro.caching.LRUCache`
    of built ``(FaultUniverse, WorstCaseAnalysis)`` pairs (and rendered
    partition reports), keyed on circuit digest plus the normalized
    backend identity.  Below it sits the existing content-addressed
    shard cache (``REPRO_CACHE_DIR``), which parallel builds consult
    per shard — a hot-tier miss that the shard cache covers rebuilds
    tables from disk instead of from simulation.

Single flight
    Builds are deduplicated through
    :class:`~repro.serve.singleflight.SingleFlight`: N concurrent
    identical requests trigger exactly one table build; the rest await
    the same future.

Streaming
    ``analyze/stream`` responses interleave adaptive round-by-round
    progress lines (``progress: round 1: ...``) with the final report.
    Progress is published through a per-key hub so *every* concurrent
    streamed request observes the one build's rounds, with replay for
    late joiners.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import io
from dataclasses import dataclass, replace
from typing import Any, AsyncIterator, Callable, cast

from repro import obs
from repro.adaptive import AdaptiveBackend
from repro.bench_suite.registry import get_circuit
from repro.caching import LRUCache, table_lru_capacity
from repro.circuit.netlist import Circuit
from repro.cli import (
    _backend_from_args,
    analyze_report,
    build_parser,
    escape_report,
    partition_report,
)
from repro.core.worst_case import WorstCaseAnalysis
from repro.errors import ReproError
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import table_identity
from repro.io_formats import NETLIST_FORMATS, parse_netlist
from repro.parallel import ParallelBackend, circuit_digest
from repro.serve.singleflight import SingleFlight
from repro.serve.stats import ServiceStats

__all__ = ["AnalysisService", "ServiceError"]

#: Hot-tier key: (kind, circuit digest, backend identity, extras...).
CacheKey = tuple[object, ...]
#: Hot-tier value for ``analyze``/``escape``: the built tables.
TablePair = tuple[FaultUniverse, WorstCaseAnalysis]

#: Option keys shared by every analysis endpoint (mirrors
#: ``cli._add_backend`` plus the common ``--seed``).
_BACKEND_KEYS: tuple[str, ...] = (
    "backend",
    "samples",
    "replacement",
    "seed",
    "jobs",
    "executor",
    "queue_dir",
    "broker",
    "target_halfwidth",
    "max_samples",
    "initial_samples",
    "stratify",
)

#: Accepted payload option keys per command, in argv emission order.
_COMMAND_KEYS: dict[str, tuple[str, ...]] = {
    "analyze": _BACKEND_KEYS + ("confidence",),
    "escape": _BACKEND_KEYS + ("k", "nmax"),
    "partition": _BACKEND_KEYS + ("max_inputs",),
}


class ServiceError(ReproError):
    """A request the service rejects (HTTP 400)."""


@dataclass
class _Request:
    """One parsed, validated analysis request."""

    command: str
    args: argparse.Namespace
    circuit: Circuit
    circuit_name: str
    backend: Any
    cache_key: CacheKey


def _execution_label(backend: Any) -> tuple[int | None, str | None]:
    """The execution facts ``analyze_report`` renders into its header.

    Cache entries are keyed on these *beyond* the table identity: the
    report label shows jobs / executor of the backend that built the
    cached universe, so requests differing here need separate entries
    to stay byte-identical with their own CLI runs.
    """
    if isinstance(backend, ParallelBackend):
        resolved = backend.resolved_executor
        return (
            resolved.jobs if getattr(resolved, "jobs", 1) > 1 else None,
            resolved.name if backend.executor is not None else None,
        )
    if isinstance(backend, AdaptiveBackend):
        name = getattr(backend.executor, "name", None)
        return (
            backend.jobs if backend.jobs > 1 else None,
            name if backend.executor is not None else None,
        )
    return (None, None)


class _ProgressHub:
    """Fan-out of one build's progress lines to streamed requests.

    ``publish`` is called from the build's executor thread (the
    adaptive ``on_round`` hook); delivery hops onto the event loop, so
    subscribers only ever touch the hub from the loop thread.  The full
    line history is kept for replay: a request joining an in-flight
    build still streams every round from the beginning.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self.lines: list[str] = []
        self._subscribers: list[asyncio.Queue[str | None]] = []
        self.closed = False

    def publish(self, line: str) -> None:
        """Thread-safe: record ``line`` and wake every subscriber."""
        self._loop.call_soon_threadsafe(self._deliver, line)

    def _deliver(self, line: str) -> None:
        self.lines.append(line)
        for queue in self._subscribers:
            queue.put_nowait(line)

    def close(self) -> None:
        """Thread-safe: signal end-of-progress to every subscriber."""
        self._loop.call_soon_threadsafe(self._seal)

    def _seal(self) -> None:
        self.closed = True
        for queue in self._subscribers:
            queue.put_nowait(None)

    def subscribe(self) -> tuple[asyncio.Queue[str | None], list[str]]:
        """A live queue plus the replay of lines published so far."""
        queue: asyncio.Queue[str | None] = asyncio.Queue()
        replay = list(self.lines)
        if self.closed:
            queue.put_nowait(None)
        else:
            self._subscribers.append(queue)
        return queue, replay


class AnalysisService:
    """Shared state and handlers behind the ``repro serve`` endpoints."""

    def __init__(
        self,
        *,
        jobs: int | None = None,
        executor: str | None = None,
        queue_dir: str | None = None,
        broker: str | None = None,
        table_lru: int | None = None,
    ) -> None:
        #: Service-level execution defaults, applied when a request
        #: doesn't choose its own (exactly like passing the flags on
        #: the CLI).
        self.default_jobs = jobs
        self.default_executor = executor
        self.default_queue_dir = queue_dir
        self.default_broker = broker
        capacity = (
            table_lru_capacity() if table_lru is None else table_lru
        )
        self.cache: LRUCache[CacheKey, object] = LRUCache(capacity)
        self.flights: SingleFlight[CacheKey, object] = SingleFlight()
        self.stats = ServiceStats()
        self._parser = build_parser()
        self._hubs: dict[CacheKey, _ProgressHub] = {}

    # -- request parsing ----------------------------------------------
    def _resolve(self, command: str, payload: object) -> _Request:
        """Validate ``payload`` into a request, via the CLI parser.

        The payload becomes an argv the CLI parser consumes, so every
        default (seed 2005, confidence 0.95, ...) and every validation
        rule is the CLI's own — the two front ends cannot drift.
        """
        if not isinstance(payload, dict):
            raise ServiceError(
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        allowed = _COMMAND_KEYS[command]
        unknown = sorted(set(payload) - set(allowed) - {"circuit"})
        if unknown:
            raise ServiceError(
                f"unknown option(s) for {command}: {', '.join(unknown)}; "
                f"accepted: circuit, {', '.join(allowed)}"
            )
        circuit, circuit_name, registered = self._circuit_for(payload)
        argv = [command, circuit_name if registered else "-"]
        options = dict(payload)
        options.pop("circuit", None)
        for key, default in (
            ("jobs", self.default_jobs),
            ("executor", self.default_executor),
            ("queue_dir", self.default_queue_dir),
            ("broker", self.default_broker),
        ):
            if key not in options and default is not None:
                options[key] = default
        for key in allowed:
            if key not in options:
                continue
            value = options[key]
            flag = "--" + key.replace("_", "-")
            if key == "replacement":
                if not isinstance(value, bool):
                    raise ServiceError(
                        f"option 'replacement' must be a JSON boolean, "
                        f"got {value!r}"
                    )
                if value:
                    argv.append(flag)
            elif isinstance(value, bool):
                raise ServiceError(f"option {key!r} must not be a boolean")
            else:
                argv.extend([flag, str(value)])
        stderr = io.StringIO()
        try:
            with contextlib.redirect_stderr(stderr):
                args = self._parser.parse_args(argv)
        except SystemExit:
            detail = stderr.getvalue().strip().splitlines()
            raise ServiceError(
                detail[-1] if detail else "invalid request parameters"
            ) from None
        backend = _backend_from_args(args)
        cache_key: CacheKey
        if command == "partition":
            cache_key = (
                "partition",
                circuit_digest(circuit),
                table_identity(backend),
                args.max_inputs,
            )
        else:
            cache_key = (
                "tables",
                circuit_digest(circuit),
                table_identity(backend),
                _execution_label(backend),
            )
        return _Request(
            command=command,
            args=args,
            circuit=circuit,
            circuit_name=circuit_name,
            backend=backend,
            cache_key=cache_key,
        )

    def _circuit_for(
        self, payload: dict[Any, Any]
    ) -> tuple[Circuit, str, bool]:
        """Resolve ``circuit``: a registry name or an inline source."""
        spec = payload.get("circuit")
        if spec is None:
            raise ServiceError(
                "request is missing 'circuit' (a registry name or an "
                "inline {'format', 'source'} object)"
            )
        if isinstance(spec, str):
            return get_circuit(spec), spec, True
        if isinstance(spec, dict):
            unknown = sorted(set(spec) - {"format", "source", "name"})
            if unknown:
                raise ServiceError(
                    f"unknown inline-circuit key(s): {', '.join(unknown)}"
                )
            fmt = spec.get("format")
            source = spec.get("source")
            if not isinstance(fmt, str) or fmt not in NETLIST_FORMATS:
                raise ServiceError(
                    f"inline circuit 'format' must be one of "
                    f"{', '.join(NETLIST_FORMATS)}, got {fmt!r}"
                )
            if not isinstance(source, str):
                raise ServiceError(
                    "inline circuit 'source' must be the netlist text"
                )
            name = spec.get("name")
            if name is not None and not isinstance(name, str):
                raise ServiceError("inline circuit 'name' must be a string")
            circuit = parse_netlist(fmt, source, name=name)
            return circuit, circuit.name, False
        raise ServiceError(
            f"'circuit' must be a name or an inline object, got "
            f"{type(spec).__name__}"
        )

    # -- the tiered build ---------------------------------------------
    async def _tables(self, request: _Request) -> TablePair:
        """The ``(universe, worst)`` pair for ``request``, tier by tier.

        Hot tier first; on a miss, exactly one single-flight build runs
        in a worker thread (where any parallel backend then consults
        the on-disk shard cache).  Adaptive builds additionally
        register a progress hub for the streaming endpoint.
        """
        key = request.cache_key
        pair = self.cache.get(key)
        registry = obs.metrics()
        if pair is not None:
            registry.counter(
                "repro_hot_tier_lookups_total",
                help="Hot-tier probes on the request path",
                outcome="hit",
            ).inc()
            return cast(TablePair, pair)
        registry.counter(
            "repro_hot_tier_lookups_total", outcome="miss"
        ).inc()
        loop = asyncio.get_running_loop()
        backend = request.backend
        hub: _ProgressHub | None = None
        if isinstance(backend, AdaptiveBackend):
            hub = self._hubs.get(key)
            if hub is None:
                hub = _ProgressHub(loop)
                self._hubs[key] = hub

        async def factory() -> object:
            build_backend = backend
            if hub is not None and isinstance(backend, AdaptiveBackend):
                progress = hub
                target = backend.target_halfwidth

                def publish(round_: Any) -> None:
                    progress.publish(round_.render(target))

                build_backend = replace(backend, on_round=publish)
            # run_in_executor does not propagate contextvars, so the
            # request span is captured here (loop thread) and passed to
            # the build span explicitly — builds show up as children of
            # the HTTP request that led the flight.
            parent = obs.current_context()

            def build() -> TablePair:
                with obs.span(
                    "service_build",
                    parent=parent,
                    command=request.command,
                    circuit=request.circuit_name,
                ):
                    return self._build_pair(request.circuit, build_backend)

            try:
                built = await loop.run_in_executor(None, build)
                self.cache.put(key, built)
                return built
            finally:
                if hub is not None and self._hubs.get(key) is hub:
                    del self._hubs[key]
                    hub.close()

        return cast(TablePair, await self.flights.run(key, factory))

    @staticmethod
    def _build_pair(circuit: Circuit, backend: Any) -> TablePair:
        universe = FaultUniverse(circuit, backend=backend)
        worst = WorstCaseAnalysis(
            universe.target_table, universe.untargeted_table
        )
        return universe, worst

    # -- endpoint handlers --------------------------------------------
    async def analyze(self, payload: object) -> str:
        """``POST /analyze``: the ``repro analyze`` report, cached."""
        request = self._resolve("analyze", payload)
        universe, worst = await self._tables(request)
        return await self._render(
            lambda: analyze_report(
                universe,
                worst,
                circuit_name=request.circuit_name,
                backend_name=request.args.backend,
                seed=request.args.seed,
                confidence=request.args.confidence,
            )
        )

    async def escape(self, payload: object) -> str:
        """``POST /escape``: the ``repro escape`` report, cached tables."""
        request = self._resolve("escape", payload)
        universe, worst = await self._tables(request)
        return await self._render(
            lambda: escape_report(
                universe,
                worst,
                circuit_name=request.circuit_name,
                backend_name=request.args.backend,
                k=request.args.k,
                nmax=request.args.nmax,
                seed=request.args.seed,
            )
        )

    async def partition(self, payload: object) -> str:
        """``POST /partition``: the ``repro partition`` report, cached."""
        request = self._resolve("partition", payload)
        key = request.cache_key
        report = self.cache.get(key)
        registry = obs.metrics()
        if report is None:
            registry.counter(
                "repro_hot_tier_lookups_total", outcome="miss"
            ).inc()

            async def factory() -> object:
                loop = asyncio.get_running_loop()
                parent = obs.current_context()

                def build() -> str:
                    with obs.span(
                        "service_build",
                        parent=parent,
                        command="partition",
                        circuit=request.circuit_name,
                    ):
                        return partition_report(
                            request.circuit,
                            request.backend,
                            circuit_name=request.circuit_name,
                            max_inputs=request.args.max_inputs,
                        )

                built = await loop.run_in_executor(None, build)
                self.cache.put(key, built)
                return built

            report = await self.flights.run(key, factory)
        else:
            registry.counter(
                "repro_hot_tier_lookups_total",
                help="Hot-tier probes on the request path",
                outcome="hit",
            ).inc()
        return cast(str, report)

    async def analyze_stream(self, payload: object) -> AsyncIterator[str]:
        """``POST /analyze/stream``: progress lines, then the report.

        Yields ``progress: <round>`` lines while an adaptive build runs
        (replayed from the start when joining an in-flight build), then
        the byte-identical ``repro analyze`` report.  Non-adaptive
        backends and hot-tier hits skip straight to the report.
        """
        request = self._resolve("analyze", payload)
        task = asyncio.ensure_future(self._tables(request))
        # One tick so the build task runs far enough to register its
        # progress hub (or to resolve a cached pair without one).
        await asyncio.sleep(0)
        hub = self._hubs.get(request.cache_key)
        try:
            if hub is not None:
                queue, replay = hub.subscribe()
                for line in replay:
                    yield f"progress: {line}\n"
                while True:
                    getter = asyncio.ensure_future(queue.get())
                    done, _pending = await asyncio.wait(
                        {getter, task},
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    if getter in done:
                        line = getter.result()
                        if line is None:
                            break
                        yield f"progress: {line}\n"
                        continue
                    # The build settled without closing our queue (e.g.
                    # another leader's cached result): flush what was
                    # published and move on to the report.
                    getter.cancel()
                    while not queue.empty():
                        line = queue.get_nowait()
                        if line is not None:
                            yield f"progress: {line}\n"
                    break
            universe, worst = await task
        finally:
            # A client that disconnects mid-stream abandons its wait;
            # single-flight cancels the build once the last one leaves.
            if not task.done():
                task.cancel()
        yield await self._render(
            lambda: analyze_report(
                universe,
                worst,
                circuit_name=request.circuit_name,
                backend_name=request.args.backend,
                seed=request.args.seed,
                confidence=request.args.confidence,
            )
        )

    @staticmethod
    async def _render(render: Callable[[], str]) -> str:
        """Run a report renderer off the event loop thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, render)

    # -- introspection ------------------------------------------------
    def stats_snapshot(self) -> dict[str, object]:
        """The ``/stats`` document."""
        return {
            "requests": self.stats.total_requests,
            "endpoints": self.stats.snapshot(),
            "hot_tier": self.cache.stats(),
            "flights": self.flights.stats(),
        }

    def metrics_text(self) -> str:
        """The ``GET /metrics`` document (Prometheus text exposition).

        Event-driven metrics (request counters, latency histograms,
        build/cache/queue counters) accumulate in the process-wide
        registry as they happen; state-shaped numbers (hot-tier
        occupancy, in-flight builds) are sampled into gauges at scrape
        time so the exposition always reflects the current service.
        """
        registry = obs.metrics()
        for prefix, source, what in (
            ("repro_hot_tier", self.cache.stats(), "hot-tier LRU"),
            ("repro_flights", self.flights.stats(), "single-flight"),
        ):
            for name in sorted(source):
                value = source[name]
                registry.gauge(
                    f"{prefix}_{name}",
                    help=f"Sampled {what} counter at scrape time",
                ).set(float(value))
        return registry.render()
