"""Asyncio HTTP transport for the analysis service.

A deliberately small HTTP/1.1 subset on ``asyncio.start_server`` — the
stdlib is the only dependency the project allows, and the service needs
exactly: JSON request bodies sized by ``Content-Length``, plain-text
report responses, chunked transfer encoding for streamed progress, and
``Connection: close`` semantics (one request per connection).

Routes
    ``GET /healthz``
        Liveness: ``{"status": "ok"}``.
    ``GET /stats``
        Request counters, hot-tier hit rate, in-flight builds, and
        per-endpoint latency histograms.
    ``GET /metrics``
        The shared :mod:`repro.obs.metrics` registry as Prometheus
        text exposition (version 0.0.4), with hot-tier and
        single-flight gauges sampled at scrape time.
    ``POST /analyze`` / ``POST /escape`` / ``POST /partition``
        JSON payload in, the byte-identical CLI report out
        (``text/plain``).
    ``POST /analyze/stream``
        Chunked ``text/plain``: ``progress: <round>`` lines as an
        adaptive build grows, then the full report.

Errors are JSON: a :class:`~repro.errors.ReproError` (bad circuit,
bad options, parse failure) is the client's fault → 400; anything else
is ours → 500.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from typing import AsyncIterator

from repro import obs
from repro.errors import AnalysisError, ReproError
from repro.serve.service import AnalysisService

__all__ = ["BackgroundServer", "HttpServer", "run_server"]

#: Largest accepted request body; analysis payloads are small JSON
#: documents (inline netlists included), so this is purely a backstop.
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
}


class HttpServer:
    """One service instance behind the HTTP routes."""

    def __init__(self, service: AnalysisService) -> None:
        self.service = service

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.Server:
        """Bind and return the listening :class:`asyncio.Server`."""
        return await asyncio.start_server(self.handle, host, port)

    # -- connection handling ------------------------------------------
    async def handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one request on one connection, then close it."""
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, body = request
                await self._dispatch(method, path, body, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away or sent garbage framing; just close
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes] | None:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return method, path, b"\xff"  # unparseable on purpose -> 400
        body = await reader.readexactly(length) if length > 0 else b""
        return method, path, body

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        route = f"{method} {path}"
        endpoint = self.service.stats.endpoint(route)
        started = time.monotonic()
        error = True
        with obs.current_tracer().span(
            "http_request", method=method, path=path
        ) as request_span:
            ctx = request_span.context
            headers: tuple[tuple[str, str], ...] = ()
            if ctx is not None:
                headers = (
                    ("X-Repro-Trace-Id", ctx.trace_id),
                    ("X-Repro-Span-Id", ctx.span_id),
                )
            try:
                if method == "GET" and path == "/healthz":
                    await self._send_json(
                        writer, 200, {"status": "ok"}, headers=headers
                    )
                elif method == "GET" and path == "/stats":
                    await self._send_json(
                        writer,
                        200,
                        self.service.stats_snapshot(),
                        headers=headers,
                    )
                elif method == "GET" and path == "/metrics":
                    await self._send(
                        writer,
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        self.service.metrics_text().encode("utf-8"),
                        headers=headers,
                    )
                elif method == "POST" and path == "/analyze/stream":
                    await self._send_stream(
                        writer,
                        self.service.analyze_stream(self._payload(body)),
                        headers=headers,
                    )
                elif method == "POST" and path in (
                    "/analyze",
                    "/escape",
                    "/partition",
                ):
                    handler = {
                        "/analyze": self.service.analyze,
                        "/escape": self.service.escape,
                        "/partition": self.service.partition,
                    }[path]
                    report = await handler(self._payload(body))
                    await self._send_text(writer, 200, report, headers=headers)
                else:
                    await self._send_json(
                        writer,
                        404,
                        {"error": f"no such endpoint: {route}"},
                        headers=headers,
                    )
                    return  # a miss is not an endpoint error
                error = False
            except ReproError as exc:
                await self._send_json(
                    writer, 400, {"error": str(exc)}, headers=headers
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - boundary: report, don't crash the server
                await self._send_json(
                    writer,
                    500,
                    {"error": f"internal error: {type(exc).__name__}: {exc}"},
                    headers=headers,
                )
            finally:
                request_span.set(error=error)
                endpoint.observe(time.monotonic() - started, error)

    @staticmethod
    def _payload(body: bytes) -> object:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ReproError(
                "request body must be a valid JSON document"
            ) from None

    # -- response writing ---------------------------------------------
    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
        *,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        extra = "".join(f"{name}: {value}\r\n" for name, value in headers)
        head = (
            f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    @classmethod
    async def _send_json(
        cls,
        writer: asyncio.StreamWriter,
        status: int,
        document: dict[str, object],
        *,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        await cls._send(
            writer, status, "application/json", body, headers=headers
        )

    @classmethod
    async def _send_text(
        cls,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        *,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        await cls._send(
            writer,
            status,
            "text/plain; charset=utf-8",
            text.encode("utf-8"),
            headers=headers,
        )

    async def _send_stream(
        self,
        writer: asyncio.StreamWriter,
        chunks: AsyncIterator[str],
        *,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        """Send an async iterator of text as a chunked 200 response.

        The first chunk is awaited *before* the status line goes out,
        so request validation errors still surface as a clean 400
        instead of a half-written 200.
        """
        try:
            first = await anext(chunks)
        except StopAsyncIteration:
            first = ""
        extra = "".join(f"{name}: {value}\r\n" for name, value in headers)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; charset=utf-8\r\n"
            "Transfer-Encoding: chunked\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        await self._write_chunk(writer, first)
        async for chunk in chunks:
            await self._write_chunk(writer, chunk)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    async def _write_chunk(
        writer: asyncio.StreamWriter, text: str
    ) -> None:
        if not text:
            return  # a zero-length chunk would terminate the stream
        data = text.encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        writer.write(data + b"\r\n")
        await writer.drain()


def run_server(
    service: AnalysisService,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
) -> int:
    """Run the service in the foreground until interrupted.

    Prints a ready line (with the actually-bound port, so ``--port 0``
    is usable) before serving, so wrappers can wait for it.
    """
    http = HttpServer(service)

    async def main() -> None:
        server = await http.start(host, port)
        bound = int(server.sockets[0].getsockname()[1])
        sys.stdout.write(
            f"repro serve listening on http://{host}:{bound} "
            f"(hot tier: {service.cache.capacity} tables)\n"
        )
        sys.stdout.flush()
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        sys.stdout.write("repro serve: shutting down\n")
    return 0


class BackgroundServer:
    """The service on a daemon thread — for tests and benchmarks.

    ``with BackgroundServer() as server:`` yields a listening server on
    an OS-assigned port; ``server.address`` is its base URL.  The event
    loop lives entirely on the background thread; the foreground talks
    to it over real sockets like any other client.
    """

    def __init__(
        self,
        service: AnalysisService | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service if service is not None else AnalysisService()
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._error: BaseException | None = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise AnalysisError("analysis service failed to start in 30s")
        if self._error is not None:
            raise AnalysisError(
                f"analysis service failed to start: {self._error}"
            )
        return self

    def stop(self) -> None:
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            loop.call_soon_threadsafe(stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start() on the foreground thread
            self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await HttpServer(self.service).start(self.host, self.port)
        self.port = int(server.sockets[0].getsockname()[1])
        self._ready.set()
        async with server:
            await self._stop_event.wait()
