"""Single-flight deduplication of concurrent async builds.

The expensive unit of work in the analysis service is a detection-table
build: seconds to minutes of CPU.  When N identical requests arrive
concurrently, running N builds would be pure waste — they are
deterministic, so every copy produces the same bytes.
:class:`SingleFlight` collapses them: the first requester for a key
starts the build ("leads the flight"), every concurrent requester for
the same key awaits the same future ("joins"), and exactly one build
runs.

Guarantees:

* **Dedup** — at most one factory invocation per key is in flight at
  any moment.  Requests arriving after completion start a fresh flight
  (the caller's cache, not this class, handles result reuse).
* **Waiter isolation** — a waiter's cancellation never cancels the
  build other waiters are awaiting (waiters hold the future through
  ``asyncio.shield``).
* **Abandonment** — when the *last* waiter cancels mid-build, the
  flight is cancelled and removed, so the next requester starts a
  fresh, usable flight instead of awaiting an orphan forever.
* **Error propagation** — a failing factory rejects every waiter with
  the same exception, and the flight is removed so the next requester
  retries.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Generic, Hashable, TypeVar

__all__ = ["SingleFlight"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class _Flight(Generic[V]):
    """One in-flight build: the shared future and its waiter count."""

    __slots__ = ("future", "task", "waiters")

    def __init__(self, future: "asyncio.Future[V]") -> None:
        self.future = future
        self.task: "asyncio.Task[None] | None" = None
        self.waiters = 0


class SingleFlight(Generic[K, V]):
    """Collapse concurrent builds of the same key into one execution."""

    def __init__(self) -> None:
        self._flights: dict[K, _Flight[V]] = {}
        #: Flights led (factory invocations started).
        self.started = 0
        #: Requests that joined an existing flight instead of building.
        self.joined = 0

    @property
    def in_flight(self) -> int:
        """Number of builds currently executing."""
        return len(self._flights)

    def keys(self) -> list[K]:
        """Keys currently in flight (sorted textually for stable output)."""
        return sorted(self._flights, key=repr)

    async def run(
        self, key: K, factory: Callable[[], Awaitable[V]]
    ) -> V:
        """Await the (single) build of ``key``.

        ``factory`` is invoked only by the flight leader; joiners await
        the leader's result.  Raises whatever the factory raises, or
        :class:`asyncio.CancelledError` if this waiter is cancelled.
        """
        flight = self._flights.get(key)
        if flight is None:
            loop = asyncio.get_running_loop()
            flight = _Flight(loop.create_future())
            self._flights[key] = flight
            flight.task = asyncio.create_task(
                self._lead(key, flight, factory)
            )
            self.started += 1
        else:
            self.joined += 1
        flight.waiters += 1
        try:
            # shield: cancelling THIS waiter must not cancel the shared
            # future other waiters (and the leader task) rely on.
            return await asyncio.shield(flight.future)
        finally:
            flight.waiters -= 1
            if flight.waiters == 0 and not flight.future.done():
                # Last requester abandoned the flight mid-build: cancel
                # the build and clear the slot so the next requester
                # starts fresh instead of joining an orphan.
                if flight.task is not None:
                    flight.task.cancel()
                self._discard(key, flight)

    async def _lead(
        self,
        key: K,
        flight: _Flight[V],
        factory: Callable[[], Awaitable[V]],
    ) -> None:
        try:
            result = await factory()
        except asyncio.CancelledError:
            self._discard(key, flight)
            if not flight.future.done():
                flight.future.cancel()
            raise
        except Exception as exc:  # noqa: BLE001 - rejects all waiters with the factory's error
            self._discard(key, flight)
            if not flight.future.done():
                if flight.waiters > 0:
                    flight.future.set_exception(exc)
                else:
                    # Nobody left to retrieve it; cancelling avoids the
                    # "exception was never retrieved" warning.
                    flight.future.cancel()
        else:
            # Discard before resolving: a request arriving after
            # completion must lead a fresh flight (reuse of finished
            # results is the cache's job, not this class's).
            self._discard(key, flight)
            if not flight.future.done():
                flight.future.set_result(result)

    def _discard(self, key: K, flight: _Flight[V]) -> None:
        """Remove ``flight`` from the table iff it still owns ``key``."""
        if self._flights.get(key) is flight:
            del self._flights[key]

    def stats(self) -> dict[str, int]:
        """Counter snapshot for ``/stats``."""
        return {
            "started": self.started,
            "joined": self.joined,
            "in_flight": self.in_flight,
        }
