"""Service telemetry: request counters and latency histograms.

The service answers ``/stats`` from these structures, so they are
designed for cheap updates on the request path (one bisect per
observation) and a deterministic JSON snapshot: bucket labels are
fixed 1-2.5-5 log-spaced bounds, and every mapping is emitted in a
stable order.

The histogram itself now lives in :mod:`repro.obs.metrics` (the shared
registry every layer writes into); :data:`LatencyHistogram` stays as
this module's name for it.  Quantiles of an *empty* histogram are
``None`` — ``/stats`` reports ``null`` rather than the lowest bucket
bound for an endpoint that has served nothing.

Per-endpoint observations are mirrored into the process-wide metrics
registry (``repro_http_requests_total`` / ``repro_http_request_seconds``
by method and path), which is what ``GET /metrics`` renders.
"""

from __future__ import annotations

from repro import obs
from repro.obs.metrics import DEFAULT_BOUNDS, Histogram

__all__ = ["EndpointStats", "LatencyHistogram", "ServiceStats"]

#: The shared fixed-bound histogram (see the module docstring).
LatencyHistogram = Histogram

_ = DEFAULT_BOUNDS  # re-exported: callers size custom histograms with it


class EndpointStats:
    """Per-endpoint request/error counters plus a latency histogram."""

    def __init__(self, route: str = "") -> None:
        self.route = route
        self.requests = 0
        self.errors = 0
        self.latency = LatencyHistogram()

    def observe(self, seconds: float, error: bool) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        self.latency.observe(seconds)
        if self.route:
            method, _, path = self.route.partition(" ")
            registry = obs.metrics()
            registry.counter(
                "repro_http_requests_total",
                help="HTTP requests served, by route and outcome",
                method=method,
                path=path,
                outcome="error" if error else "ok",
            ).inc()
            registry.histogram(
                "repro_http_request_seconds",
                help="HTTP request latency, by route",
                method=method,
                path=path,
            ).observe(seconds)

    def snapshot(self) -> dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "latency": self.latency.snapshot(),
        }


class ServiceStats:
    """All per-endpoint stats, keyed by route (``"POST /analyze"``)."""

    def __init__(self) -> None:
        self._endpoints: dict[str, EndpointStats] = {}

    def endpoint(self, route: str) -> EndpointStats:
        stats = self._endpoints.get(route)
        if stats is None:
            stats = EndpointStats(route)
            self._endpoints[route] = stats
        return stats

    @property
    def total_requests(self) -> int:
        return sum(s.requests for s in self._endpoints.values())

    def snapshot(self) -> dict[str, object]:
        return {
            route: self._endpoints[route].snapshot()
            for route in sorted(self._endpoints)
        }
