"""Service telemetry: request counters and latency histograms.

The service answers ``/stats`` from these structures, so they are
designed for cheap updates on the request path (one bisect per
observation) and a deterministic JSON snapshot: bucket labels are
fixed 1-2.5-5 log-spaced bounds, and every mapping is emitted in a
stable order.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["EndpointStats", "LatencyHistogram", "ServiceStats"]

#: Upper bucket bounds in seconds (1-2.5-5 per decade, 1 ms .. 100 s);
#: observations above the last bound land in the overflow bucket.
DEFAULT_BOUNDS: tuple[float, ...] = (
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 25.0, 50.0,
    100.0,
)


class LatencyHistogram:
    """Fixed-bound latency histogram with approximate quantiles."""

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one observation (seconds)."""
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds
        if seconds > self.max:
            self.max = seconds

    def quantile(self, q: float) -> float:
        """Approximate q-quantile: the upper bound of the q-th bucket.

        The overflow bucket reports the observed maximum.  Returns 0.0
        before the first observation.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket in enumerate(self.counts):
            cumulative += bucket
            if cumulative >= rank and bucket:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max
        return self.max

    def snapshot(self) -> dict[str, object]:
        """JSON-ready summary (stable key order)."""
        buckets = {
            f"le_{bound:g}s": self.counts[i]
            for i, bound in enumerate(self.bounds)
        }
        buckets["overflow"] = self.counts[len(self.bounds)]
        return {
            "count": self.count,
            "sum_s": self.sum,
            "mean_s": self.sum / self.count if self.count else 0.0,
            "max_s": self.max,
            "p50_s": self.quantile(0.5),
            "p99_s": self.quantile(0.99),
            "buckets": buckets,
        }


class EndpointStats:
    """Per-endpoint request/error counters plus a latency histogram."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.latency = LatencyHistogram()

    def observe(self, seconds: float, error: bool) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        self.latency.observe(seconds)

    def snapshot(self) -> dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "latency": self.latency.snapshot(),
        }


class ServiceStats:
    """All per-endpoint stats, keyed by route (``"POST /analyze"``)."""

    def __init__(self) -> None:
        self._endpoints: dict[str, EndpointStats] = {}

    def endpoint(self, route: str) -> EndpointStats:
        stats = self._endpoints.get(route)
        if stats is None:
            stats = EndpointStats()
            self._endpoints[route] = stats
        return stats

    @property
    def total_requests(self) -> int:
        return sum(s.requests for s in self._endpoints.values())

    def snapshot(self) -> dict[str, object]:
        return {
            route: self._endpoints[route].snapshot()
            for route in sorted(self._endpoints)
        }
