"""Distribution of ``nmin(g)`` values (Figure 2 of the paper).

The paper plots, for the circuit ``dvram``, the number of untargeted
faults at each ``nmin`` value of at least 100.  :func:`nmin_distribution`
produces the underlying ``(nmin, count)`` series and
:func:`render_ascii_histogram` draws it as a log-scaled ASCII bar chart
for the CLI and the experiment harness.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence


def nmin_distribution(
    nmin_values: Sequence[int | None],
    minimum: int = 100,
) -> list[tuple[int, int]]:
    """Sorted ``(nmin, count)`` pairs for values ``>= minimum``.

    ``None`` entries (faults with no guarantee at any ``n``) are excluded
    from the series — they have no finite ``nmin`` to plot; callers that
    need them can count them separately.
    """
    counter = Counter(
        v for v in nmin_values if v is not None and v >= minimum
    )
    return sorted(counter.items())


def render_ascii_histogram(
    series: Sequence[tuple[int, int]],
    width: int = 50,
    log_scale: bool = True,
) -> str:
    """ASCII bar chart of an ``(x, count)`` series (Figure 2 rendering)."""
    if not series:
        return "(empty distribution)"
    max_count = max(count for _x, count in series)

    def bar_len(count: int) -> int:
        if count <= 0:
            return 0
        if not log_scale or max_count <= 1:
            return max(1, round(width * count / max_count))
        return max(1, round(width * math.log1p(count) / math.log1p(max_count)))

    lines = ["  nmin | #faults"]
    lines.append("-" * (width + 18))
    for x, count in series:
        lines.append(f"{x:>6} | {count:>7} {'#' * bar_len(count)}")
    return "\n".join(lines)
