"""Worst-case analysis (Section 2 of the paper).

For a target fault ``f`` and an untargeted fault ``g``::

    nmin(g, f) = N(f) - M(g, f) + 1

is the smallest number of detections of ``f`` that *forces* a test of
``g`` into the test set: ``f`` can be detected ``N(f) - M(g, f)`` times
using only vectors outside ``T(g)``, and one more detection must use a
vector in ``T(f) ∩ T(g)``.  Minimizing over all target faults that
overlap ``g``::

    nmin(g) = min { nmin(g, f) : f ∈ F(g) },   F(g) = {f : T(f) ∩ T(g) ≠ ∅}

is the smallest ``n`` such that **every** n-detection test set for ``F``
is guaranteed to detect ``g``.  When ``F(g)`` is empty no value of ``n``
gives a guarantee; ``nmin(g)`` is recorded as ``None`` (treated as +∞ by
all threshold queries).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import AnalysisError
from repro.faultsim.detection import DetectionTable
from repro.faultsim.sampling import estimate_nmin
from repro.logic.packed import (
    _np,
    PackedSignatureMatrix,
    pack_signature,
    popcount_words,
)


class NminRecord(NamedTuple):
    """Worst-case result for one untargeted fault.

    ``nmin`` is ``None`` when no target fault overlaps ``g`` (no guarantee
    at any ``n``).  ``witness`` is the index (into the target table) of a
    target fault achieving the minimum, and ``witness_overlap`` its
    ``M(g, f)``.  (A named tuple, not a dataclass: one record is built
    per untargeted fault, so construction cost is part of the analysis
    hot path.)
    """

    fault_index: int
    nmin: int | None
    witness: int | None
    witness_overlap: int


def nmin_for_untargeted_fault(
    target_table: DetectionTable,
    g_signature: int,
    target_counts: list[int] | None = None,
    sorted_order: list[int] | None = None,
) -> tuple[int | None, int | None, int]:
    """``(nmin(g), witness index, witness overlap)`` for one fault.

    ``target_counts`` lets callers pass the precomputed ``N(f)`` list;
    ``sorted_order`` the target indices sorted by ascending ``N(f)``.
    Scanning targets in ascending ``N(f)`` allows a sharp early exit:
    since ``M(g, f) <= min(N(f), N(g))``, every target satisfies
    ``nmin(g, f) >= N(f) - N(g) + 1``, so once that bound reaches the
    best value found, no later (larger-``N``) target can improve it.
    """
    if g_signature == 0:
        raise AnalysisError("nmin is undefined for an undetectable fault")
    # `is None`, not truthiness: an explicit empty count list (no target
    # faults) must not silently trigger a recompute.
    counts = target_counts if target_counts is not None else target_table.counts()
    if sorted_order is None:
        sorted_order = sorted(range(len(counts)), key=counts.__getitem__)
    if getattr(target_table, "packed", None) is not None:
        scan = _packed_scan_for(target_table, counts, sorted_order)
        return scan.scan_bigint(g_signature)
    n_g = g_signature.bit_count()
    best: int | None = None
    best_idx: int | None = None
    best_overlap = 0
    signatures = target_table.signatures
    for idx in sorted_order:
        n_f = counts[idx]
        if best is not None and n_f - n_g + 1 >= best:
            break
        overlap = (signatures[idx] & g_signature).bit_count()
        if overlap == 0:
            continue
        candidate = n_f - overlap + 1
        if best is None or candidate < best:
            best = candidate
            best_idx = idx
            best_overlap = overlap
            if best == 1:
                break  # cannot improve
    return best, best_idx, best_overlap


def _packed_scan_for(
    target_table: DetectionTable, counts: list[int], order: list[int]
) -> "_PackedNminScan":
    """A packed scan for these counts/order, cached on the table.

    The latest scan is remembered on the table instance together with
    the counts/order it was built for, so repeated single-fault queries
    — whether the caller defaults the arguments or passes the same
    precomputed lists, as the docstring recommends — amortize the
    sorted-matrix construction and dedup pass instead of repeating it
    per fault.
    """
    scan = getattr(target_table, "_packed_nmin_scan", None)
    if (
        scan is None
        or scan.source_counts != counts
        or scan.source_order != order
    ):
        scan = _PackedNminScan(
            target_table.packed, counts, order,
            signatures=target_table.signatures,
        )
        target_table._packed_nmin_scan = scan
    return scan


class _PackedNminScan:
    """Batched, vectorized ascending-``N(f)`` nmin scan over packed tables.

    Targets are re-ordered by ascending ``N(f)`` once; untargeted faults
    are then scanned *together*, chunk of targets by chunk of targets, so
    every ``N(f) - popcount(sig_f & sig_g) + 1`` evaluation is part of a
    large numpy (or BLAS) sweep instead of a per-pair big-int operation.
    The scalar scan's early exit survives as a *masked prefix*: after
    each ascending-``N(f)`` chunk, the faults whose lower bound
    ``N(f) - N(g) + 1`` can no longer beat their best candidate drop out
    of the active set (within a chunk the bound-excluded tail rows are
    computed but can never win, since ``M(g, f) <= N(g)`` makes their
    candidates ``>= best``).  Duplicate target signatures are scanned
    once — a later duplicate's candidate equals its representative's, so
    under the scalar scan's strict-improvement rule it could never win
    nor change the witness.  Results — including witness choice on ties,
    via first-occurrence ``argmin`` — are identical to the scalar
    scan's.

    Two overlap kernels, picked per batch:

    * small universes — unpack both sides to 0/1 ``float32`` and compute
      chunk overlaps as one BLAS ``sgemm`` (exact: popcounts are far
      below the 2**24 float32 integer range);
    * otherwise — a per-target ``uint64`` AND + ``popcount`` row sweep,
      which avoids the 64×-larger unpacked operands.
    """

    #: First prefix chunk; later chunks grow 4× up to ``_MAX_CHUNK``
    #: (few rounds: per-round numpy overhead beats per-pair savings).
    _FIRST_CHUNK = 64
    _MAX_CHUNK = 2048
    #: sgemm kernel limits: universe bits, and unpacked-bit bytes per batch.
    _GEMM_MAX_BITS = 1024
    _GEMM_MAX_BYTES = 1 << 28

    def __init__(
        self,
        packed: PackedSignatureMatrix,
        counts: list[int],
        sorted_order: list[int],
        signatures: list[int] | None = None,
    ):
        # What the scan was built from, for the table-level cache check.
        self.source_counts = list(counts)
        self.source_order = list(sorted_order)
        if signatures is not None:
            # Scan each distinct signature once, keeping the first
            # occurrence in ascending-N(f) order as the representative
            # (== the witness the scalar scan would pick).
            seen: set[int] = set()
            order = []
            for idx in sorted_order:
                sig = signatures[idx]
                if sig not in seen:
                    seen.add(sig)
                    order.append(idx)
        else:
            order = list(sorted_order)
        self.order = order
        idx = _np.asarray(self.order, dtype=_np.intp)
        self.counts_sorted = _np.asarray(counts, dtype=_np.int64)[idx]
        self.matrix_sorted = packed.take(self.order)
        self.size = packed.size
        self._f_bits = None  # lazily unpacked float32 bits, sorted order

    @staticmethod
    def _unpack_bits(words):
        """0/1 ``float32`` columns of a ``uint64`` block (for sgemm).

        ``unpackbits`` scrambles bit positions relative to signature bit
        order, but identically on both operands, so dot products still
        equal ``popcount(a & b)``; pad bits beyond ``size`` are zero on
        both sides.
        """
        return _np.unpackbits(
            _np.ascontiguousarray(words).view(_np.uint8), axis=1
        ).astype(_np.float32)

    def _use_gemm(self, num_g: int) -> bool:
        if self.size > self._GEMM_MAX_BITS:
            return False
        width = self.matrix_sorted.words.shape[1] * 64
        return num_g * width * 4 <= self._GEMM_MAX_BYTES

    def scan_bigint(
        self, g_signature: int
    ) -> tuple[int | None, int | None, int]:
        row = pack_signature(g_signature, self.size)
        return self.scan_batch(
            row.reshape(1, -1), [g_signature.bit_count()]
        )[0]

    def scan_batch(
        self, g_words, n_gs
    ) -> list[tuple[int | None, int | None, int]]:
        """``(nmin(g), witness, witness overlap)`` for a block of faults.

        ``g_words`` is a ``(num_g, words)`` ``uint64`` block over the
        same universe as the target matrix; ``n_gs`` the matching
        ``N(g)`` popcounts.
        """
        num_g = g_words.shape[0]
        counts = self.counts_sorted
        num_f = len(counts)
        # float64 "best" holds either kernel's candidates exactly
        # (popcounts are far below 2**53); +inf means no overlap yet.
        best = _np.full(num_g, _np.inf)
        best_pos = _np.zeros(num_g, dtype=_np.intp)
        n_gs = _np.asarray(n_gs, dtype=_np.int64)
        active = _np.arange(num_g, dtype=_np.intp)
        use_gemm = self._use_gemm(num_g)
        if use_gemm:
            if self._f_bits is None:
                self._f_bits = self._unpack_bits(self.matrix_sorted.words)
            g_bits = self._unpack_bits(g_words)
            counts_cast = counts.astype(_np.float32)
            sentinel = _np.float32(_np.inf)
        else:
            # int32 overlaps: exact for any universe below 2**31 bits
            # (far beyond what fits in memory as signatures anyway).
            counts_cast = counts.astype(_np.int32)
            sentinel = _np.iinfo(_np.int32).max
        start = 0
        chunk = self._FIRST_CHUNK
        while start < num_f and active.size:
            stop = min(start + chunk, num_f)
            whole = active.size == num_g
            if use_gemm:
                lhs = g_bits if whole else g_bits[active]
                overlaps = lhs @ self._f_bits[start:stop].T
            else:
                g_act = g_words if whole else g_words[active]
                rows = self.matrix_sorted.words
                overlaps = _np.empty(
                    (active.size, stop - start), dtype=_np.int32
                )
                for i in range(start, stop):
                    overlaps[:, i - start] = popcount_words(
                        g_act & rows[i]
                    ).sum(axis=1, dtype=_np.int32)
            # Candidates N(f) - M(g, f) + 1, computed in place over the
            # overlap buffer (overlap is recoverable as N(f) - cand + 1).
            no_overlap = overlaps == 0
            candidates = _np.subtract(
                counts_cast[start:stop], overlaps, out=overlaps
            )
            candidates += 1
            candidates[no_overlap] = sentinel
            # First-occurrence argmin == the scalar scan's strict-
            # improvement tie-break in ascending-N(f) order.
            at = candidates.argmin(axis=1)
            chunk_best = candidates[
                _np.arange(active.size), at
            ].astype(_np.float64)
            chunk_best[chunk_best == float(sentinel)] = _np.inf
            improved = chunk_best < best[active]
            winners = active[improved]
            best[winners] = chunk_best[improved]
            best_pos[winners] = start + at[improved]
            start = stop
            if start < num_f:
                bound = counts[start] - n_gs[active] + 1
                keep = (bound < best[active]) & (best[active] != 1)
                active = active[keep]
            chunk = min(chunk * 4, self._MAX_CHUNK)
        results: list[tuple[int | None, int | None, int]] = []
        counts_list = self.counts_sorted.tolist()
        order = self.order
        inf = _np.inf
        for value, pos in zip(best.tolist(), best_pos.tolist(), strict=True):
            if value == inf:
                results.append((None, None, 0))
            else:
                nmin = int(value)
                results.append(
                    (nmin, order[pos], counts_list[pos] - nmin + 1)
                )
        return results


class WorstCaseAnalysis:
    """Worst-case ``nmin`` records for every untargeted fault.

    Parameters
    ----------
    target_table:
        Detection table of the target faults ``F`` (stuck-at).
    untargeted_table:
        Detection table of the untargeted faults ``G`` (bridging);
        must contain detectable faults only and share the target table's
        vector universe (signature bits of both tables are intersected,
        so they must mean the same vectors).

    On a sampled universe the records are computed in sample-bit space —
    internally consistent for test sets drawn from the sampled vectors —
    and :meth:`estimated_nmin_values` /
    :meth:`estimated_guaranteed_n` report the ``|U|``-scale Monte-Carlo
    estimates.  On the exhaustive universe the estimates equal the raw
    values.
    """

    def __init__(
        self,
        target_table: DetectionTable,
        untargeted_table: DetectionTable,
    ):
        if any(sig == 0 for sig in untargeted_table.signatures):
            raise AnalysisError(
                "untargeted table contains undetectable faults; build it "
                "with drop_undetectable=True"
            )
        if target_table.universe != untargeted_table.universe:
            raise AnalysisError(
                "target and untargeted tables were built over different "
                "vector universes; build both with the same backend"
            )
        self.target_table = target_table
        self.untargeted_table = untargeted_table
        self.universe = untargeted_table.universe
        counts = target_table.counts()
        order = sorted(range(len(counts)), key=counts.__getitem__)
        self.records: list[NminRecord] = []
        packed = getattr(target_table, "packed", None)
        if packed is not None:
            # Vectorized hot path: all untargeted faults scanned as one
            # batch of AND+popcount (or sgemm) sweeps over the sorted
            # target matrix.  Records depend on g only through its
            # signature, so duplicate untargeted signatures (common for
            # bridging faults) are scanned once and fanned back out.
            scan = _packed_scan_for(target_table, counts, order)
            g_packed = getattr(untargeted_table, "packed", None)
            if g_packed is None:
                g_packed = PackedSignatureMatrix.from_bigints(
                    untargeted_table.signatures, packed.size
                )
            rows = g_packed.words
            as_void = _np.ascontiguousarray(rows).view(
                _np.dtype((_np.void, rows.shape[1] * rows.itemsize))
            ).ravel()
            _, rep_idx, lookup = _np.unique(
                as_void, return_index=True, return_inverse=True
            )
            rep_rows = rows[rep_idx]
            rep_counts = popcount_words(rep_rows).sum(
                axis=1, dtype=_np.int64
            )
            results = scan.scan_batch(rep_rows, rep_counts)
            self.records = [
                NminRecord(j, *results[slot])
                for j, slot in enumerate(lookup.tolist())
            ]
        else:
            for j, g_sig in enumerate(untargeted_table.signatures):
                nmin, witness, overlap = nmin_for_untargeted_fault(
                    target_table, g_sig,
                    target_counts=counts, sorted_order=order,
                )
                self.records.append(NminRecord(j, nmin, witness, overlap))

    # ------------------------------------------------------------------
    # Threshold queries (Tables 2 and 3)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def nmin_values(self) -> list[int | None]:
        return [r.nmin for r in self.records]

    def estimated_nmin(self, nmin: int | None) -> float | int | None:
        """``|U|``-scale estimate of one raw (sample-space) nmin value.

        Uniform-scale only: without the witness signatures a bare nmin
        value cannot be re-weighted, so non-uniform universes (the
        stratified one) must use :meth:`estimated_nmin_values`, which
        estimates each record from its witness's exclusive detection
        set.
        """
        return estimate_nmin(self.universe, nmin)

    def _estimated_record_nmin(
        self, record: NminRecord
    ) -> float | int | None:
        """Unbiased ``|U|``-scale estimate of one record's nmin.

        ``nmin(g) - 1`` counts the vectors detecting the witness ``f``
        but not ``g`` (``T(f) \\ T(g)``), so the estimate is that
        signature's universe estimate plus one — which routes through
        the universe's own estimator and therefore stays unbiased under
        stratified (non-uniform) sampling.  On uniform universes this
        equals ``scale * (nmin - 1) + 1``, the closed form
        :func:`~repro.faultsim.sampling.estimate_nmin` uses.
        """
        if record.nmin is None:
            return None
        if self.universe.exact or record.nmin < 1:
            return record.nmin
        exclusive = (
            self.target_table.signatures[record.witness]
            & ~self.untargeted_table.signatures[record.fault_index]
            & self.universe.mask
        )
        return self.universe.estimate_signature(exclusive) + 1.0

    def estimated_nmin_values(self) -> list[float | int | None]:
        """``|U|``-scale nmin estimates (== raw values when exact)."""
        return [self._estimated_record_nmin(r) for r in self.records]

    def estimated_guaranteed_n(self) -> float | int | None:
        """``|U|``-scale estimate of :meth:`guaranteed_n`.

        The worst estimated record (``None`` when any fault has no
        guarantee).  On uniform universes the estimate is monotone in
        the sample-space nmin, so this equals scaling
        :meth:`guaranteed_n` directly; on stratified universes the
        per-record estimates decide.
        """
        worst: float | int | None = 0
        for value in self.estimated_nmin_values():
            if value is None:
                return None
            if value > worst:
                worst = value
        return worst

    def count_within(self, n: int) -> int:
        """Number of faults with ``nmin(g) <= n`` (guaranteed detection)."""
        return sum(
            1 for r in self.records if r.nmin is not None and r.nmin <= n
        )

    def fraction_within(self, n: int) -> float:
        """Fraction of ``G`` guaranteed detected by any n-detection set."""
        if not self.records:
            return 1.0
        return self.count_within(n) / len(self.records)

    def count_at_least(self, n: int) -> int:
        """Number of faults with ``nmin(g) >= n`` (``None`` counts)."""
        return sum(
            1 for r in self.records if r.nmin is None or r.nmin >= n
        )

    def indices_at_least(self, n: int) -> list[int]:
        """Untargeted-fault indices with ``nmin(g) >= n``."""
        return [
            r.fault_index
            for r in self.records
            if r.nmin is None or r.nmin >= n
        ]

    def guaranteed_n(self) -> int | None:
        """Smallest ``n`` guaranteeing detection of *all* of ``G``.

        ``None`` when some fault has no guarantee at any ``n``.
        """
        worst = 0
        for r in self.records:
            if r.nmin is None:
                return None
            if r.nmin > worst:
                worst = r.nmin
        return worst

    def coverage_curve(self, n_values: list[int]) -> list[float]:
        """Percent of ``G`` guaranteed detected for each ``n`` (Table 2 row)."""
        return [100.0 * self.fraction_within(n) for n in n_values]
