"""Worst-case analysis (Section 2 of the paper).

For a target fault ``f`` and an untargeted fault ``g``::

    nmin(g, f) = N(f) - M(g, f) + 1

is the smallest number of detections of ``f`` that *forces* a test of
``g`` into the test set: ``f`` can be detected ``N(f) - M(g, f)`` times
using only vectors outside ``T(g)``, and one more detection must use a
vector in ``T(f) ∩ T(g)``.  Minimizing over all target faults that
overlap ``g``::

    nmin(g) = min { nmin(g, f) : f ∈ F(g) },   F(g) = {f : T(f) ∩ T(g) ≠ ∅}

is the smallest ``n`` such that **every** n-detection test set for ``F``
is guaranteed to detect ``g``.  When ``F(g)`` is empty no value of ``n``
gives a guarantee; ``nmin(g)`` is recorded as ``None`` (treated as +∞ by
all threshold queries).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.faultsim.detection import DetectionTable
from repro.faultsim.sampling import estimate_nmin


@dataclass(frozen=True, slots=True)
class NminRecord:
    """Worst-case result for one untargeted fault.

    ``nmin`` is ``None`` when no target fault overlaps ``g`` (no guarantee
    at any ``n``).  ``witness`` is the index (into the target table) of a
    target fault achieving the minimum, and ``witness_overlap`` its
    ``M(g, f)``.
    """

    fault_index: int
    nmin: int | None
    witness: int | None
    witness_overlap: int


def nmin_for_untargeted_fault(
    target_table: DetectionTable,
    g_signature: int,
    target_counts: list[int] | None = None,
    sorted_order: list[int] | None = None,
) -> tuple[int | None, int | None, int]:
    """``(nmin(g), witness index, witness overlap)`` for one fault.

    ``target_counts`` lets callers pass the precomputed ``N(f)`` list;
    ``sorted_order`` the target indices sorted by ascending ``N(f)``.
    Scanning targets in ascending ``N(f)`` allows a sharp early exit:
    since ``M(g, f) <= min(N(f), N(g))``, every target satisfies
    ``nmin(g, f) >= N(f) - N(g) + 1``, so once that bound reaches the
    best value found, no later (larger-``N``) target can improve it.
    """
    if g_signature == 0:
        raise AnalysisError("nmin is undefined for an undetectable fault")
    counts = target_counts or target_table.counts()
    if sorted_order is None:
        sorted_order = sorted(range(len(counts)), key=counts.__getitem__)
    n_g = g_signature.bit_count()
    best: int | None = None
    best_idx: int | None = None
    best_overlap = 0
    signatures = target_table.signatures
    for idx in sorted_order:
        n_f = counts[idx]
        if best is not None and n_f - n_g + 1 >= best:
            break
        overlap = (signatures[idx] & g_signature).bit_count()
        if overlap == 0:
            continue
        candidate = n_f - overlap + 1
        if best is None or candidate < best:
            best = candidate
            best_idx = idx
            best_overlap = overlap
            if best == 1:
                break  # cannot improve
    return best, best_idx, best_overlap


class WorstCaseAnalysis:
    """Worst-case ``nmin`` records for every untargeted fault.

    Parameters
    ----------
    target_table:
        Detection table of the target faults ``F`` (stuck-at).
    untargeted_table:
        Detection table of the untargeted faults ``G`` (bridging);
        must contain detectable faults only and share the target table's
        vector universe (signature bits of both tables are intersected,
        so they must mean the same vectors).

    On a sampled universe the records are computed in sample-bit space —
    internally consistent for test sets drawn from the sampled vectors —
    and :meth:`estimated_nmin_values` /
    :meth:`estimated_guaranteed_n` report the ``|U|``-scale Monte-Carlo
    estimates.  On the exhaustive universe the estimates equal the raw
    values.
    """

    def __init__(
        self,
        target_table: DetectionTable,
        untargeted_table: DetectionTable,
    ):
        if any(sig == 0 for sig in untargeted_table.signatures):
            raise AnalysisError(
                "untargeted table contains undetectable faults; build it "
                "with drop_undetectable=True"
            )
        if target_table.universe != untargeted_table.universe:
            raise AnalysisError(
                "target and untargeted tables were built over different "
                "vector universes; build both with the same backend"
            )
        self.target_table = target_table
        self.untargeted_table = untargeted_table
        self.universe = untargeted_table.universe
        counts = target_table.counts()
        order = sorted(range(len(counts)), key=counts.__getitem__)
        self.records: list[NminRecord] = []
        for j, g_sig in enumerate(untargeted_table.signatures):
            nmin, witness, overlap = nmin_for_untargeted_fault(
                target_table, g_sig, target_counts=counts, sorted_order=order
            )
            self.records.append(NminRecord(j, nmin, witness, overlap))

    # ------------------------------------------------------------------
    # Threshold queries (Tables 2 and 3)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def nmin_values(self) -> list[int | None]:
        return [r.nmin for r in self.records]

    def estimated_nmin(self, nmin: int | None) -> float | int | None:
        """``|U|``-scale estimate of one raw (sample-space) nmin value."""
        return estimate_nmin(self.universe, nmin)

    def estimated_nmin_values(self) -> list[float | int | None]:
        """``|U|``-scale nmin estimates (== raw values when exact)."""
        return [estimate_nmin(self.universe, r.nmin) for r in self.records]

    def estimated_guaranteed_n(self) -> float | int | None:
        """``|U|``-scale estimate of :meth:`guaranteed_n`."""
        return estimate_nmin(self.universe, self.guaranteed_n())

    def count_within(self, n: int) -> int:
        """Number of faults with ``nmin(g) <= n`` (guaranteed detection)."""
        return sum(
            1 for r in self.records if r.nmin is not None and r.nmin <= n
        )

    def fraction_within(self, n: int) -> float:
        """Fraction of ``G`` guaranteed detected by any n-detection set."""
        if not self.records:
            return 1.0
        return self.count_within(n) / len(self.records)

    def count_at_least(self, n: int) -> int:
        """Number of faults with ``nmin(g) >= n`` (``None`` counts)."""
        return sum(
            1 for r in self.records if r.nmin is None or r.nmin >= n
        )

    def indices_at_least(self, n: int) -> list[int]:
        """Untargeted-fault indices with ``nmin(g) >= n``."""
        return [
            r.fault_index
            for r in self.records
            if r.nmin is None or r.nmin >= n
        ]

    def guaranteed_n(self) -> int | None:
        """Smallest ``n`` guaranteeing detection of *all* of ``G``.

        ``None`` when some fault has no guarantee at any ``n``.
        """
        worst = 0
        for r in self.records:
            if r.nmin is None:
                return None
            if r.nmin > worst:
                worst = r.nmin
        return worst

    def coverage_curve(self, n_values: list[int]) -> list[float]:
        """Percent of ``G`` guaranteed detected for each ``n`` (Table 2 row)."""
        return [100.0 * self.fraction_within(n) for n in n_values]
