"""The paper's contribution: worst-case and average-case n-detection analysis.

``worst_case``
    Section 2 — ``nmin(g, f)``, ``nmin(g)``, coverage-vs-n statistics.
``procedure1``
    Section 3 — Procedure 1: random construction of K n-detection test
    sets for n = 1..nmax, under Definition 1 or Definition 2 counting.
``average_case``
    Section 3 — detection probabilities ``p(n, g)`` estimated over the K
    test sets, plus the probability histograms of Tables 5/6.
``definitions``
    Section 4 — Definition 1 / Definition 2 detection counting for a
    given test set and fault.
``distribution``
    Figure 2 — the distribution of ``nmin(g)`` values.
``partition``
    Section 4 — applying the analysis to large designs via output-cone
    partitioning.
"""

from repro.core.worst_case import (
    NminRecord,
    WorstCaseAnalysis,
    nmin_for_untargeted_fault,
)
from repro.core.procedure1 import (
    NDetectionFamily,
    build_random_ndetection_sets,
)
from repro.core.average_case import (
    AverageCaseAnalysis,
    probability_histogram,
)
from repro.core.definitions import (
    count_detections_def1,
    count_detections_def2,
    count_detections_def2_exact,
)
from repro.core.distribution import nmin_distribution
from repro.core.escape import EscapeAnalysis, EscapeReport
from repro.core.partition import PartitionedAnalysis

__all__ = [
    "EscapeAnalysis",
    "EscapeReport",
    "NminRecord",
    "WorstCaseAnalysis",
    "nmin_for_untargeted_fault",
    "NDetectionFamily",
    "build_random_ndetection_sets",
    "AverageCaseAnalysis",
    "probability_histogram",
    "count_detections_def1",
    "count_detections_def2",
    "count_detections_def2_exact",
    "nmin_distribution",
    "PartitionedAnalysis",
]
