"""Procedure 1: random construction of n-detection test sets (Section 3).

The paper constructs ``K`` test sets ``T0 … TK-1`` simultaneously, growing
each from a 1-detection set to an ``nmax``-detection set:

    (1) set every ``Tk`` empty, ``n = 1``;
    (2) for every target fault ``fi`` and every ``Tk``: if ``fi`` is
        detected fewer than ``n`` times by ``Tk`` and ``T(fi) - Tk`` is
        not empty, add one random test from ``T(fi) - Tk``;
    (3) ``n += 1``; while ``n <= nmax`` go to (2).

After iteration ``n`` every ``Tk`` is an n-detection test set; a snapshot
of each ``Tk`` is recorded per iteration so detection probabilities can
be reported for every ``n``.

Two counting rules are supported (Section 4):

* **Definition 1** — the number of detections of ``fi`` is simply
  ``|Tk ∩ T(fi)|``.
* **Definition 2** — two tests only count as distinct detections when
  their common-bits vector ``tij`` does *not* detect ``fi`` (3-valued
  simulation).  The number of detections is computed greedily in test
  insertion order; when fewer than ``n`` countable detections exist, the
  procedure looks for candidate tests that *would* count, and falls back
  to Definition 1 when Definition 2 cannot reach ``n`` (as the paper
  prescribes).

The Definition 2 path batches all outstanding ``tij`` fault simulations
of one fault across the ``K`` test sets into dual-rail passes, and caches
pair verdicts per fault, which keeps the stricter counting tractable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.faults.stuck_at import StuckAtFault
from repro.faultsim.detection import DetectionTable
from repro.faultsim.sampling import VectorUniverse
from repro.faultsim.threeval_detect import pair_checks_batch
from repro.logic.bitops import random_set_bit, set_bits


@dataclass
class NDetectionFamily:
    """K random n-detection test sets for every ``n`` in ``1..n_max``.

    ``snapshots[n - 1][k]`` is the bit-signature (over the construction
    universe) of test set ``Tk`` at the end of iteration ``n`` — an
    n-detection test set for the target faults.  ``final_orders[k]``
    lists ``Tk``'s tests in insertion order (needed by Definition 2 and
    by Table 4's listings).  When the family was built from a sampled
    detection table, ``universe`` carries the bit-index ↔ vector mapping
    and the sets are n-detection sets drawn from the sampled vectors.
    """

    num_inputs: int
    n_max: int
    num_sets: int
    counting: str
    snapshots: list[list[int]]
    final_orders: list[list[int]]
    universe: "VectorUniverse | None" = None

    def signature(self, n: int, k: int) -> int:
        """Bitset of ``Tk`` as an n-detection test set."""
        if not 1 <= n <= self.n_max:
            raise AnalysisError(f"n must be in [1, {self.n_max}], got {n}")
        return self.snapshots[n - 1][k]

    def test_set(self, n: int, k: int) -> list[int]:
        """Sorted signature bits of ``Tk`` after iteration ``n``.

        These are decimal vectors on the exhaustive universe; on a
        sampled universe use :meth:`test_vectors` for the decimal
        vectors behind the bits.
        """
        return set_bits(self.signature(n, k))

    def test_vectors(self, n: int, k: int) -> list[int]:
        """Decimal test vectors of ``Tk`` after iteration ``n``."""
        bits = self.test_set(n, k)
        if self.universe is None:
            return bits
        return sorted(self.universe.vector_at(b) for b in bits)

    def sizes(self, n: int) -> list[int]:
        """Test-set sizes at iteration ``n`` (one per k)."""
        return [sig.bit_count() for sig in self.snapshots[n - 1]]


# ----------------------------------------------------------------------
# Definition 2 support machinery
# ----------------------------------------------------------------------
class _PairOracle:
    """Cached, batched ``tij``-detects-f checks for one target fault.

    ``True`` for a pair means the two tests are *similar* (their common
    bits detect the fault), i.e. they do NOT count as two detections.

    Keys are signature-bit indices; ``vector_of`` maps them to the
    decimal vectors the 3-valued simulation needs (identity on the
    exhaustive universe, the sample mapping on sampled ones).
    """

    def __init__(self, circuit, fault: StuckAtFault, vector_of=None):
        self._circuit = circuit
        self._fault = fault
        self._vector_of = vector_of
        self._results: dict[tuple[int, int], bool] = {}
        self._pending: set[tuple[int, int]] = set()
        # The faulty machine only differs inside this cone; computing it
        # once per fault makes each flush a cone-resimulation.
        self._cone_order = circuit.fanout_cone_order(fault.lid)

    @staticmethod
    def _key(ti: int, tj: int) -> tuple[int, int]:
        return (ti, tj) if ti <= tj else (tj, ti)

    def lookup(self, ti: int, tj: int) -> bool | None:
        return self._results.get(self._key(ti, tj))

    def request(self, ti: int, tj: int) -> None:
        key = self._key(ti, tj)
        if key not in self._results:
            self._pending.add(key)

    def flush(self) -> None:
        if not self._pending:
            return
        pairs = sorted(self._pending)
        if self._vector_of is None:
            vector_pairs = pairs
        else:
            vector_pairs = [
                (self._vector_of(a), self._vector_of(b)) for a, b in pairs
            ]
        verdicts = pair_checks_batch(
            self._circuit, self._fault, vector_pairs,
            cone_order=self._cone_order,
        )
        for key, verdict in zip(pairs, verdicts, strict=True):
            self._results[key] = verdict
        self._pending.clear()


@dataclass
class _Def2State:
    """Greedy Definition 2 bookkeeping for one fault across all K sets."""

    pointers: list[int]
    accepted: list[list[int]]
    accepted_sets: list[set[int]]
    oracle: _PairOracle = field(repr=False, default=None)

    @classmethod
    def fresh(cls, num_sets: int, oracle: _PairOracle) -> "_Def2State":
        return cls(
            pointers=[0] * num_sets,
            accepted=[[] for _ in range(num_sets)],
            accepted_sets=[set() for _ in range(num_sets)],
            oracle=oracle,
        )


class _Procedure1:
    """One run of Procedure 1 (shared by both counting rules)."""

    def __init__(
        self,
        table: DetectionTable,
        n_max: int,
        num_sets: int,
        rng: random.Random,
        counting: str,
        max_def2_tries: int,
    ):
        if n_max < 1:
            raise AnalysisError(f"n_max must be >= 1, got {n_max}")
        if num_sets < 1:
            raise AnalysisError(f"need at least one test set, got {num_sets}")
        if counting not in ("def1", "def2"):
            raise AnalysisError(f"counting must be 'def1' or 'def2': {counting!r}")
        self.table = table
        self.circuit = table.circuit
        self.n_max = n_max
        self.K = num_sets
        self.rng = rng
        self.counting = counting
        self.max_def2_tries = max_def2_tries
        self.bitsets = [0] * num_sets
        self.orders: list[list[int]] = [[] for _ in range(num_sets)]
        self.snapshots: list[list[int]] = []
        self._def2_states: dict[int, _Def2State] = {}

    # -- shared helpers -------------------------------------------------
    def _add_test(self, k: int, t: int) -> None:
        self.bitsets[k] |= 1 << t
        self.orders[k].append(t)

    def run(self) -> NDetectionFamily:
        for n in range(1, self.n_max + 1):
            for i in range(len(self.table)):
                sig = self.table.signatures[i]
                if not sig:
                    continue  # undetectable target: never constrains a set
                if self.counting == "def1":
                    self._def1_fault_pass(sig, n)
                else:
                    self._def2_fault_pass(i, sig, n)
            self.snapshots.append(list(self.bitsets))
        return NDetectionFamily(
            num_inputs=self.circuit.num_inputs,
            n_max=self.n_max,
            num_sets=self.K,
            counting=self.counting,
            snapshots=self.snapshots,
            final_orders=self.orders,
            universe=self.table.universe,
        )

    # -- Definition 1 ----------------------------------------------------
    def _def1_fault_pass(self, sig: int, n: int) -> None:
        for k in range(self.K):
            tk = self.bitsets[k]
            if (tk & sig).bit_count() >= n:
                continue
            remaining = sig & ~tk
            if remaining:
                self._add_test(k, random_set_bit(remaining, self.rng))

    # -- Definition 2 ----------------------------------------------------
    def _def2_state(self, i: int) -> _Def2State:
        state = self._def2_states.get(i)
        if state is None:
            universe = self.table.universe
            vector_of = None if universe.exhaustive else universe.vector_at
            oracle = _PairOracle(
                self.circuit, self.table.faults[i], vector_of=vector_of
            )
            state = _Def2State.fresh(self.K, oracle)
            self._def2_states[i] = state
        return state

    def _def2_fault_pass(self, i: int, sig: int, n: int) -> None:
        state = self._def2_state(i)
        self._def2_catch_up(state, sig)
        self._def2_add_candidates(state, sig, n)

    def _def2_catch_up(self, state: _Def2State, sig: int) -> None:
        """Greedily count (in insertion order) tests added since last visit."""
        self._def2_prefetch(state, sig)
        active = list(range(self.K))
        while active:
            parked = []
            for k in active:
                if not self._def2_advance(state, sig, k):
                    parked.append(k)
            state.oracle.flush()
            active = parked

    _PREFETCH_WINDOW = 8

    def _def2_prefetch(self, state: _Def2State, sig: int) -> None:
        """Speculatively request every pair the greedy pass could need.

        For each set, the unprocessed detecting tests will be checked
        against the current accepted list and (possibly) against each
        other; requesting all of those pairs up front turns the advance
        loop into a single flush round instead of one round per verdict.
        """
        oracle = state.oracle
        window = self._PREFETCH_WINDOW
        for k in range(self.K):
            if len(state.accepted[k]) >= self.n_max:
                continue
            order = self.orders[k]
            ptr = state.pointers[k]
            if ptr >= len(order):
                continue
            pending = [
                t for t in order[ptr:] if (sig >> t) & 1
            ][:window]
            if not pending:
                continue
            accepted = state.accepted[k]
            for i, t in enumerate(pending):
                for a in accepted:
                    oracle.request(t, a)
                for t2 in pending[:i]:
                    oracle.request(t, t2)
        oracle.flush()

    def _def2_advance(self, state: _Def2State, sig: int, k: int) -> bool:
        """Advance set k's pointer; False when parked on missing verdicts."""
        order = self.orders[k]
        ptr = state.pointers[k]
        accepted = state.accepted[k]
        accepted_set = state.accepted_sets[k]
        oracle = state.oracle
        if len(accepted) >= self.n_max:
            # The count can never be required to exceed n_max; once the
            # quota is saturated this fault/set pair needs no more work.
            state.pointers[k] = len(order)
            return True
        while ptr < len(order):
            t = order[ptr]
            if not (sig >> t) & 1 or t in accepted_set:
                ptr += 1
                continue
            similar = False
            missing = False
            for a in accepted:
                verdict = oracle.lookup(t, a)
                if verdict is None:
                    oracle.request(t, a)
                    missing = True
                elif verdict:
                    similar = True
                    break
            if similar:
                ptr += 1
                continue
            if missing:
                state.pointers[k] = ptr
                return False
            accepted.append(t)
            accepted_set.add(t)
            ptr += 1
            if len(accepted) >= self.n_max:
                ptr = len(order)
                break
        state.pointers[k] = ptr
        return True

    def _candidate_queue(self, sig: int, k: int) -> list[int]:
        """Up to ``max_def2_tries`` distinct random tests from T(fi) - Tk.

        Small remainders are materialized and shuffled (exact); large ones
        are sampled by direct bit-index rejection, which avoids walking
        thousands of set bits per (fault, set, iteration) — the
        Definition 2 hot path.
        """
        remaining = sig & ~self.bitsets[k]
        if not remaining:
            return []
        budget = self.max_def2_tries
        if remaining.bit_count() <= 4 * budget:
            queue = set_bits(remaining)
            self.rng.shuffle(queue)
            return queue[:budget]
        width = remaining.bit_length()
        randrange = self.rng.randrange
        queue: list[int] = []
        seen: set[int] = set()
        tries = 0
        max_tries = 64 * budget
        while len(queue) < budget and tries < max_tries:
            tries += 1
            idx = randrange(width)
            if (remaining >> idx) & 1 and idx not in seen:
                seen.add(idx)
                queue.append(idx)
        if len(queue) < budget:  # pathological density: materialize once
            rest = [b for b in set_bits(remaining) if b not in seen]
            self.rng.shuffle(rest)
            queue.extend(rest[: budget - len(queue)])
        return queue

    def _def2_add_candidates(self, state: _Def2State, sig: int, n: int) -> None:
        """Add one countable test (or a Definition 1 fallback) per lacking set."""
        oracle = state.oracle
        # Per-k queue of candidate tests, in random order.  When the
        # bounded queue is exhausted without a countable candidate, the
        # Definition 1 fallback approximates the paper's "cannot reach n
        # under Definition 2" condition (see module docstring).
        candidate_queues: dict[int, list[int]] = {}
        need = [k for k in range(self.K) if len(state.accepted[k]) < n]
        for k in need:
            candidate_queues[k] = self._candidate_queue(sig, k)
        while need:
            wave: dict[int, int] = {}
            for k in need:
                queue = candidate_queues[k]
                if queue:
                    t = queue.pop()
                    wave[k] = t
                    accepted = state.accepted[k]
                    for a in accepted:
                        oracle.request(t, a)
                    # Prefetch the next queued candidates so a rejection
                    # does not cost an extra flush round.
                    for t_next in queue[-2:]:
                        for a in accepted:
                            oracle.request(t_next, a)
            oracle.flush()
            next_need = []
            for k in need:
                if k not in wave:
                    self._def2_fallback(state, sig, n, k)
                    continue
                t = wave[k]
                similar = any(
                    oracle.lookup(t, a) for a in state.accepted[k]
                )
                if not similar:
                    self._add_test(k, t)
                    state.accepted[k].append(t)
                    state.accepted_sets[k].add(t)
                elif candidate_queues[k]:
                    next_need.append(k)
                else:
                    self._def2_fallback(state, sig, n, k)
            need = next_need

    def _def2_fallback(self, state: _Def2State, sig: int, n: int, k: int) -> None:
        """Definition 1 fallback when Definition 2 cannot reach ``n``."""
        tk = self.bitsets[k]
        if (tk & sig).bit_count() >= n:
            return
        remaining = sig & ~tk
        if remaining:
            self._add_test(k, random_set_bit(remaining, self.rng))


def build_random_ndetection_sets(
    table: DetectionTable,
    n_max: int,
    num_sets: int,
    seed: int = 0,
    counting: str = "def1",
    max_def2_tries: int = 16,
) -> NDetectionFamily:
    """Run Procedure 1 and return the family of test-set snapshots.

    Parameters
    ----------
    table:
        Detection table of the target faults (``F``).
    n_max:
        Largest ``n`` (the paper uses 10).
    num_sets:
        ``K`` — the number of random test sets per ``n``.
    seed:
        RNG seed; equal seeds reproduce the family exactly.
    counting:
        ``"def1"`` (standard) or ``"def2"`` (sufficiently-different tests,
        Section 4).
    max_def2_tries:
        Definition 2 only — bound on candidate draws per fault/set/
        iteration before the Definition 1 fallback applies.
    """
    runner = _Procedure1(
        table, n_max, num_sets, random.Random(seed), counting, max_def2_tries
    )
    return runner.run()
