"""Average-case analysis (Section 3): detection probabilities ``p(n, g)``.

Given the ``K`` random n-detection test sets of Procedure 1, the
probability that an *arbitrary* n-detection test set detects an
untargeted fault ``g`` is estimated as::

    p(n, g) = d(n, g) / K

where ``d(n, g)`` counts the test sets that intersect ``T(g)``.

:func:`probability_histogram` reproduces the row structure of Tables 5
and 6: for thresholds 1, 0.9, …, 0.1, 0, the number of faults with
``p(n, g) >= threshold``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.procedure1 import NDetectionFamily
from repro.errors import AnalysisError
from repro.faultsim.detection import DetectionTable
from repro.faultsim.sampling import VectorUniverse

TABLE5_THRESHOLDS: tuple[float, ...] = (
    1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0,
)


class AverageCaseAnalysis:
    """Estimated ``p(n, g)`` for a set of untargeted faults.

    Parameters
    ----------
    family:
        The test-set family from Procedure 1.
    untargeted_table:
        Detection table for ``G``.
    fault_indices:
        Optional subset of ``G`` to analyze (the paper reports only the
        faults with ``nmin(g) >= 11``); default: every fault in the table.
    """

    def __init__(
        self,
        family: NDetectionFamily,
        untargeted_table: DetectionTable,
        fault_indices: Sequence[int] | None = None,
    ):
        if family.num_inputs != untargeted_table.circuit.num_inputs:
            raise AnalysisError(
                "test-set family and detection table disagree on input count"
            )
        # A family without an explicit universe is an exhaustive-space
        # family; comparing it as such rejects the silent mix of an
        # exhaustive family with a sampled untargeted table.
        family_universe = (
            family.universe
            if family.universe is not None
            else VectorUniverse(family.num_inputs)
        )
        if family_universe != untargeted_table.universe:
            raise AnalysisError(
                "test-set family and detection table were built over "
                "different vector universes; use the same backend for both"
            )
        self.family = family
        self.table = untargeted_table
        self.fault_indices = (
            list(fault_indices)
            if fault_indices is not None
            else list(range(len(untargeted_table)))
        )

    def _snapshots_for(self, n: int) -> list[int]:
        """Iteration-``n`` test-set snapshots, with ``n`` validated.

        ``n = 0`` would silently wrap to the *largest* n via Python
        negative indexing, and ``n > n_max`` would raise a bare
        ``IndexError``; both are caller errors and get an
        :class:`AnalysisError`.
        """
        limit = len(self.family.snapshots)
        if not 1 <= n <= limit:
            raise AnalysisError(
                f"n must be in [1, {limit}], got {n}"
            )
        return self.family.snapshots[n - 1]

    def _probability(self, signature: int, snapshots: list[int]) -> float:
        return sum(1 for tk in snapshots if tk & signature) / (
            self.family.num_sets
        )

    def detection_probability(self, n: int, fault_index: int) -> float:
        """``p(n, g)`` for one untargeted fault."""
        return self._probability(
            self.table.signatures[fault_index], self._snapshots_for(n)
        )

    def probabilities(self, n: int) -> list[float]:
        """``p(n, g)`` for every analyzed fault (in ``fault_indices`` order)."""
        snapshots = self._snapshots_for(n)
        return [
            self._probability(self.table.signatures[j], snapshots)
            for j in self.fault_indices
        ]

    def histogram(self, n: int) -> list[int]:
        """Counts of faults with ``p(n, g) >= threshold`` (Table 5 row)."""
        return probability_histogram(self.probabilities(n))

    def minimum_probability(self, n: int) -> tuple[float, int] | None:
        """Smallest ``p(n, g)`` and its fault index, or None if no faults."""
        probs = self.probabilities(n)
        if not probs:
            return None
        best = min(range(len(probs)), key=probs.__getitem__)
        return probs[best], self.fault_indices[best]


def probability_histogram(
    probabilities: Sequence[float],
    thresholds: Sequence[float] = TABLE5_THRESHOLDS,
) -> list[int]:
    """Number of values ``>= t`` for each threshold ``t``.

    With the default thresholds this is exactly a Table 5/6 row: the
    first entry counts faults detected with probability 1, the last
    counts all faults (every probability is >= 0).
    """
    eps = 1e-12  # counting is exact on multiples of 1/K; guard rounding
    return [
        sum(1 for p in probabilities if p >= t - eps) for t in thresholds
    ]
