"""Applying the analysis to large designs via cone partitioning (Section 4).

The exhaustive analysis needs the detection set of every fault over the
complete input space, which is only practical for circuits with small
input counts.  Section 4 of the paper proposes partitioning a larger
circuit into sub-circuits and analyzing each one.  Here a circuit is
split into output-cone groups of bounded input support
(:func:`repro.circuit.transform.output_partitions`); the worst-case
analysis runs per cone and the results are merged.

Semantics of the merged result: a cone analysis treats the cone's inputs
as free, so the per-cone ``nmin`` is computed over the cone's own input
space.  A fault inside a cone is guaranteed detected by any n-detection
test set *of that cone* when ``n >= nmin``.  Faults whose lines span two
cones (e.g. bridges between cones) are outside the partitioned model and
reported as uncovered — the method trades completeness for scalability,
as the paper notes.

Partitioning alone used to hit a hard wall whenever a single output
depended on more than ``max_inputs`` inputs.  Passing ``backend=`` (a
sampled or packed sampled backend) removes the wall: cones within the
bound keep the exact exhaustive analysis, and each too-wide output
becomes its own cone analyzed over that backend's sampled universe —
its ``nmin`` values are Monte-Carlo sample-space results rather than
exact ones, flagged by ``ConeResult.analysis.universe.exact``.

Passing an :class:`~repro.adaptive.AdaptiveBackend` gives *per-cone
adaptive K*: every wide cone runs its own growth loop against the
shared stopping rule, so an easy cone stops at a small draw while a
hard one keeps sampling — no single ``--samples`` value has to fit all
cones (``repro partition wide28 --backend adaptive`` reports each
cone's chosen ``K``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.circuit.netlist import Circuit
from repro.circuit.transform import output_partitions
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faultsim.backends import DetectionBackend


@dataclass
class ConeResult:
    """Worst-case analysis of one cone."""

    circuit: Circuit
    universe: FaultUniverse
    analysis: WorstCaseAnalysis


class PartitionedAnalysis:
    """Worst-case analysis of a large circuit, cone by cone.

    Parameters
    ----------
    circuit:
        Any normal-form circuit.
    max_inputs:
        Bound on each cone's input support (the per-cone analysis cost is
        ``O(2**max_inputs)`` bits per signature).
    backend:
        Optional sampled/packed backend for cones *wider* than
        ``max_inputs``.  Without it a too-wide output raises (the
        legacy behavior); with it the wide cone is analyzed over the
        backend's sampled universe instead of being skipped.  Cones
        within the bound always use the exact exhaustive engine.
    jobs:
        Worker processes for each cone's table builds (sharded via
        :class:`repro.parallel.ParallelBackend`); orthogonal to
        ``backend`` — it changes construction speed, never results.
    executor:
        Optional :class:`repro.parallel.ShardExecutor` for the cone
        builds (inline / pool / queue); like ``jobs``, it never changes
        results, only where the shards run.
    """

    def __init__(
        self,
        circuit: Circuit,
        max_inputs: int = 16,
        backend: "DetectionBackend | None" = None,
        jobs: int | None = None,
        executor: object | None = None,
    ):
        self.circuit = circuit
        self.cones: list[ConeResult] = []
        subs = output_partitions(
            circuit, max_inputs, allow_wide=backend is not None
        )
        for sub in subs:
            cone_backend = (
                backend if sub.num_inputs > max_inputs else None
            )
            universe = FaultUniverse(
                sub, backend=cone_backend, jobs=jobs, executor=executor
            )
            if len(universe.untargeted_table) == 0:
                continue  # no bridging sites inside this cone
            analysis = WorstCaseAnalysis(
                universe.target_table, universe.untargeted_table
            )
            self.cones.append(ConeResult(sub, universe, analysis))
        # Bridging pairs of the full circuit vs. those covered by cones.
        full_universe = FaultUniverse(circuit)
        self.total_pairs = len(full_universe.untargeted_faults) // 4
        self.covered_pairs = sum(
            len(c.universe.untargeted_faults) // 4 for c in self.cones
        )

    @property
    def coverage_of_fault_sites(self) -> float:
        """Fraction of the circuit's bridging pairs analyzable in cones."""
        if self.total_pairs == 0:
            return 1.0
        return min(1.0, self.covered_pairs / self.total_pairs)

    def fraction_within(self, n: int) -> float:
        """Fraction of analyzed faults guaranteed detected at ``n``."""
        total = sum(len(c.analysis) for c in self.cones)
        if total == 0:
            return 1.0
        within = sum(c.analysis.count_within(n) for c in self.cones)
        return within / total

    def guaranteed_n(self) -> int | None:
        """Largest per-cone guaranteed ``n`` (None when any cone has none)."""
        worst = 0
        for cone in self.cones:
            g = cone.analysis.guaranteed_n()
            if g is None:
                return None
            worst = max(worst, g)
        return worst

    def summary(self) -> dict[str, float | int]:
        return {
            "cones": len(self.cones),
            "analyzed_faults": sum(len(c.analysis) for c in self.cones),
            "site_coverage": round(self.coverage_of_fault_sites, 4),
            "guaranteed_n": self.guaranteed_n() or -1,
        }
