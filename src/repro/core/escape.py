"""Defect-escape estimation from the analysis results (Section 4).

The paper closes with: "The probabilities of detection given in Tables 5
and 6 can be used to calculate the probability that an untargeted fault
escapes detection."  This module does that calculation:

* the **worst-case escape bound** — the number of untargeted faults an
  adversarial n-detection test set is *allowed* to miss (``nmin(g) > n``);
* the **expected escapes** of an arbitrary n-detection test set —
  ``sum_g (1 - p(n, g))`` over the analyzed faults;
* the **marginal value of raising n** — how much the expectation drops
  per unit of n (the paper's conclusion that raising n quickly stops
  paying is this curve flattening).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.average_case import AverageCaseAnalysis
from repro.core.worst_case import WorstCaseAnalysis
from repro.errors import AnalysisError


@dataclass(frozen=True)
class EscapeReport:
    """Escape metrics for one circuit at one ``n``."""

    n: int
    analyzed_faults: int
    worst_case_escapes: int
    expected_escapes: float

    @property
    def expected_escape_rate(self) -> float:
        if self.analyzed_faults == 0:
            return 0.0
        return self.expected_escapes / self.analyzed_faults


class EscapeAnalysis:
    """Escape metrics across ``n`` for one circuit.

    Parameters
    ----------
    worst:
        Worst-case analysis (provides ``nmin`` and the fault universe).
    average:
        Average-case analysis built over the same untargeted table.  Its
        ``fault_indices`` selection defines the analyzed population; pass
        one built over *all* faults for whole-universe escape rates.
    """

    def __init__(self, worst: WorstCaseAnalysis, average: AverageCaseAnalysis):
        if worst.untargeted_table is not average.table:
            raise AnalysisError(
                "worst-case and average-case analyses disagree on the "
                "untargeted fault table"
            )
        self.worst = worst
        self.average = average

    def report(self, n: int) -> EscapeReport:
        """Escape metrics at one ``n`` (1 <= n <= family n_max)."""
        indices = self.average.fault_indices
        by_index = {r.fault_index: r for r in self.worst.records}
        worst_escapes = sum(
            1
            for j in indices
            if by_index[j].nmin is None or by_index[j].nmin > n
        )
        probs = self.average.probabilities(n)
        expected = sum(1.0 - p for p in probs)
        return EscapeReport(
            n=n,
            analyzed_faults=len(indices),
            worst_case_escapes=worst_escapes,
            expected_escapes=expected,
        )

    def curve(self, n_values: list[int] | None = None) -> list[EscapeReport]:
        """Escape metrics for each ``n`` (default: 1..family n_max)."""
        if n_values is None:
            n_values = list(range(1, self.average.family.n_max + 1))
        return [self.report(n) for n in n_values]

    def marginal_benefit(self) -> list[float]:
        """Drop in expected escapes per unit increase of ``n``.

        The paper's conclusion — "increasing n is not likely to be an
        effective solution" — corresponds to this sequence approaching
        zero while worst-case escapes stay positive.
        """
        curve = self.curve()
        return [
            curve[i - 1].expected_escapes - curve[i].expected_escapes
            for i in range(1, len(curve))
        ]

    def render(self) -> str:
        lines = [
            f"{'n':>3}  {'worst-case escapes':>19}  {'expected escapes':>17}"
        ]
        for rep in self.curve():
            lines.append(
                f"{rep.n:>3}  {rep.worst_case_escapes:>19}  "
                f"{rep.expected_escapes:>17.2f}"
            )
        return "\n".join(lines)
