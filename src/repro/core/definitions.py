"""Detection-count definitions (Section 4 of the paper).

Definition 1: a fault ``f`` is detected ``n`` times by a test set ``T``
when ``T`` contains ``n`` tests that detect ``f``.

Definition 2: tests only count as distinct detections when they are
pairwise "sufficiently different" — for every counted pair ``(ti, tj)``
the common-bits vector ``tij`` must NOT detect ``f`` (3-valued
simulation).  The paper's procedures evaluate this greedily in test
order; :func:`count_detections_def2` mirrors that.  The exact maximum —
the largest pairwise-different subset, i.e. a maximum clique in the
"different" graph — is provided by :func:`count_detections_def2_exact`
for small instances (ablation: how much does greediness undercount?).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuit.netlist import Circuit
from repro.faults.stuck_at import StuckAtFault
from repro.faultsim.threeval_detect import pair_checks_batch


def count_detections_def1(fault_signature: int, test_signature: int) -> int:
    """``|T ∩ T(f)|`` — Definition 1 detection count."""
    return (fault_signature & test_signature).bit_count()


def _detecting_tests(
    fault_signature: int, tests_in_order: Sequence[int]
) -> list[int]:
    return [t for t in tests_in_order if (fault_signature >> t) & 1]


def count_detections_def2(
    circuit: Circuit,
    fault: StuckAtFault,
    fault_signature: int,
    tests_in_order: Sequence[int],
) -> int:
    """Greedy Definition 2 detection count (test insertion order).

    Walks the detecting tests in order and accepts a test when its
    ``tij`` with every previously accepted test does not detect the
    fault.  All pair checks for one candidate are batched into a single
    dual-rail simulation pass.
    """
    accepted: list[int] = []
    for t in _detecting_tests(fault_signature, tests_in_order):
        if not accepted:
            accepted.append(t)
            continue
        verdicts = pair_checks_batch(
            circuit, fault, [(t, a) for a in accepted]
        )
        if not any(verdicts):
            accepted.append(t)
    return len(accepted)


def count_detections_def2_exact(
    circuit: Circuit,
    fault: StuckAtFault,
    fault_signature: int,
    tests: Sequence[int],
    max_tests: int = 24,
) -> int:
    """Exact Definition 2 count: maximum pairwise-different subset.

    Builds the full pairwise "similar" matrix and finds a maximum clique
    of the complement graph by branch and bound.  Exponential in the
    worst case — guarded by ``max_tests``.
    """
    detecting = _detecting_tests(fault_signature, tests)
    m = len(detecting)
    if m > max_tests:
        raise ValueError(
            f"{m} detecting tests exceed max_tests={max_tests}; "
            "exact Definition 2 counting is for small instances only"
        )
    if m <= 1:
        return m
    pairs = [
        (detecting[i], detecting[j])
        for i in range(m)
        for j in range(i + 1, m)
    ]
    verdicts = pair_checks_batch(circuit, fault, pairs)
    different = [[False] * m for _ in range(m)]
    it = iter(verdicts)
    for i in range(m):
        for j in range(i + 1, m):
            ok = not next(it)
            different[i][j] = different[j][i] = ok

    best = 0

    def extend(chosen: list[int], candidates: list[int]) -> None:
        nonlocal best
        if len(chosen) > best:
            best = len(chosen)
        if len(chosen) + len(candidates) <= best:
            return
        for idx, c in enumerate(candidates):
            extend(
                chosen + [c],
                [d for d in candidates[idx + 1:] if different[c][d]],
            )

    extend([], list(range(m)))
    return best
