"""Persistent, content-addressed shard cache.

A shard's detection signatures are a pure function of three things: the
circuit's structure, the backend configuration (which fixes the vector
universe — engine, ``K``, seed, replacement), and the fault slice.  The
cache keys on a digest of exactly those inputs, so

* repeated experiments (the ``table1``–``table6`` drivers re-analyze the
  same circuits run after run) reload shards instead of re-simulating;
* runs with different ``--jobs`` values share entries, because the shard
  layout itself never depends on the worker count
  (:mod:`repro.parallel.plan`);
* any change to the circuit, the backend parameters, or the fault slice
  changes the key — stale results are unreachable, never returned.

Entries are written atomically (temp file + ``os.replace`` in the same
directory), so a crashed or concurrent writer can never leave a
partially-written entry behind; a corrupt or unreadable entry is treated
as a miss and overwritten.  The directory is ``REPRO_CACHE_DIR`` when
set, else ``$XDG_CACHE_HOME/repro/shards`` (``~/.cache/repro/shards``).
``repro cache info`` / ``repro cache clear`` inspect and empty it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.circuit.netlist import Circuit
from repro.faults.bridging import BridgingFault
from repro.faults.stuck_at import StuckAtFault

if TYPE_CHECKING:
    from repro.faultsim.backends import DetectionBackend
    from repro.faultsim.detection import Fault

#: Bumped whenever the cached payload layout or the key material changes;
#: part of every key, so old entries simply stop being addressed.
CACHE_FORMAT_VERSION = 1

#: Process-wide counters, aggregated over every :class:`ShardCache`
#: instance (one is created per table build, so per-instance counters
#: alone could not observe "the second build hit the cache").
_GLOBAL_STATS = {"hits": 0, "misses": 0, "stores": 0}


def cache_stats() -> dict[str, int]:
    """Snapshot of the process-wide hit/miss/store counters."""
    return dict(_GLOBAL_STATS)


def reset_cache_stats() -> None:
    """Zero the process-wide counters (test isolation)."""
    for key in _GLOBAL_STATS:
        _GLOBAL_STATS[key] = 0


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` or the platform user-cache shard directory."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "shards"


# ----------------------------------------------------------------------
# Key material
# ----------------------------------------------------------------------
def circuit_digest(circuit: Circuit) -> str:
    """Structural digest of a netlist (names excluded).

    Detection signatures depend on connectivity, gate functions, and the
    input/output orders — never on line names — so structurally identical
    circuits share cache entries regardless of naming.
    """
    h = hashlib.sha256()
    for line in circuit.lines:
        gate = line.gate_type.name if line.gate_type is not None else "-"
        h.update(
            (
                f"{line.lid}:{line.kind.value}:{gate}:"
                f"{','.join(map(str, line.fanin))}:{int(line.is_output)};"
            ).encode()
        )
    h.update(("I" + ",".join(map(str, circuit.inputs))).encode())
    h.update(("O" + ",".join(map(str, circuit.outputs))).encode())
    return h.hexdigest()


def backend_cache_key(backend: DetectionBackend) -> str:
    """Canonical text form of a frozen backend dataclass.

    ``repr`` of a frozen dataclass lists every field deterministically,
    which is exactly the configuration that fixes the vector universe.
    """
    return f"{type(backend).__name__}({backend!r})"


def _fault_token(fault: object) -> str:
    if isinstance(fault, StuckAtFault):
        return f"s{fault.lid}/{fault.value}"
    if isinstance(fault, BridgingFault):
        return (
            f"b{fault.victim},{fault.victim_value},"
            f"{fault.aggressor},{fault.aggressor_value}"
        )
    # Future fault models: fall back to repr (stable for dataclasses).
    return repr(fault)


def shard_key(
    circuit: Circuit,
    backend: DetectionBackend,
    kind: str,
    faults: Iterable[Fault],
) -> str:
    """Content-addressed key for one shard's signature list."""
    material = "|".join(
        (
            f"v{CACHE_FORMAT_VERSION}",
            circuit_digest(circuit),
            backend_cache_key(backend),
            kind,
            ";".join(_fault_token(f) for f in faults),
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
class ShardCache:
    """Directory of pickled shard results, addressed by :func:`shard_key`.

    Instance counters (``hits`` / ``misses`` / ``stores``) track one
    build; the module-level :func:`cache_stats` aggregates across
    instances for cross-build assertions.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def _load(self, key: str) -> list[int] | None:
        """Read one entry without touching the hit/miss counters."""
        try:
            with open(self._path(key), "rb") as fh:
                payload = pickle.load(fh)
            signatures = payload["signatures"]
            if payload["version"] != CACHE_FORMAT_VERSION or not isinstance(
                signatures, list
            ):
                raise ValueError("unexpected payload layout")
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                KeyError, TypeError, AttributeError, ImportError,
                IndexError, MemoryError):
            return None
        return signatures

    def get(self, key: str) -> list[int] | None:
        """Cached signature list, or ``None`` on miss/corruption."""
        signatures = self._load(key)
        if signatures is None:
            self.misses += 1
            _GLOBAL_STATS["misses"] += 1
            return None
        self.hits += 1
        _GLOBAL_STATS["hits"] += 1
        return signatures

    def put(self, key: str, signatures: list[int]) -> None:
        """Atomically persist one shard's signatures (best effort).

        Concurrent multi-writer safe: every writer dumps to its own
        unique temp name (``mkstemp``) and publishes with ``os.replace``
        — racing writers of the same key each install a complete,
        identical payload, never a torn one.  A writer that finds a
        *readable* entry already present lost such a race (the content
        is content-addressed, so the existing bytes *are* its bytes)
        and treats the entry as a hit instead of rewriting it; an
        unreadable entry (torn by a crashed host, stale format) is
        overwritten — ``put`` is the cache's only self-heal path, and
        skipping on bare existence would wedge the key forever.  A
        read-only or full filesystem never fails the build — the cache
        silently degrades to a no-op.
        """
        if self._load(key) is not None:
            self.hits += 1
            _GLOBAL_STATS["hits"] += 1
            return
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "signatures": list(signatures),
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:  # noqa: BLE001 - temp-file cleanup, re-raised
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.stores += 1
        _GLOBAL_STATS["stores"] += 1

    # -- inspection (the `repro cache` subcommand) ---------------------
    def entries(self) -> list[Path]:
        """Entry files currently in the cache directory (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    @staticmethod
    def _entry_version(path: Path) -> int:
        """Version field of one entry, read from the pickle *prefix*.

        ``put`` serializes ``{"version": ..., "signatures": ...}`` with
        the version first, so the version integer appears within the
        first few opcodes of the stream.  Walking opcodes lazily with
        :mod:`pickletools` and stopping there keeps ``versions()`` at
        O(entries), not O(total cache bytes) — the signature payloads
        (the overwhelming bulk of a real cache) are never parsed.
        """
        import pickletools

        bookkeeping = {"FRAME", "MEMOIZE", "BINPUT", "LONG_BINPUT",
                       "PUT", "PROTO", "EMPTY_DICT", "MARK"}
        int_ops = {"BININT", "BININT1", "BININT2", "INT", "LONG",
                   "LONG1", "LONG4"}
        with open(path, "rb") as fh:
            saw_key = False
            for opcode, arg, _pos in pickletools.genops(fh):
                name = opcode.name
                if name in bookkeeping:
                    continue
                if saw_key:
                    if name in int_ops:
                        return int(arg)
                    break
                saw_key = arg == "version" and "UNICODE" in name
        raise ValueError(f"no version field in {path.name}")

    def versions(self) -> dict[str, int]:
        """Entry count per payload format version (``repro cache info``).

        Unreadable or pre-versioning entries are tallied under
        ``"corrupt"`` — an entry whose version cannot even be parsed is
        one :meth:`get` would treat as a miss, so the report shows how
        much of the cache is actually servable at the current format.
        """
        counts: dict[str, int] = {}
        for path in self.entries():
            try:
                label = f"v{self._entry_version(path)}"
            except (OSError, ValueError, EOFError, IndexError,
                    NotImplementedError):
                label = "corrupt"
            counts[label] = counts.get(label, 0) + 1
        return dict(sorted(counts.items()))

    def total_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        """Delete every entry (and stray temp file); returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in list(self.root.glob("*.pkl")) + list(
            self.root.glob("*.tmp")
        ):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed
