"""TCP queue transport with work stealing: the network work queue.

The filesystem :class:`~repro.parallel.workqueue.WorkQueue` assumes a
shared mount and polls it; this module removes both assumptions.  A
single asyncio :class:`Broker` (started with ``repro broker --port N``
or embedded in ``repro serve``) holds the queue state in memory and
talks a tiny length-prefixed pickle protocol over TCP:

* **submitters** (:class:`TcpExecutor`, the ``--executor tcp``
  substrate) send one ``submit`` frame per batch and then block on the
  socket for ``result`` frames — no polling;
* **workers** (:class:`TcpWorker`, ``repro worker --broker HOST:PORT``)
  register once and block on the socket for ``build`` frames — dispatch
  is push-based, a worker's lease is its connection, and heartbeat
  ``ping`` frames ride the same connection while a shard builds.

Work stealing
    Queued shards are a global FIFO, so an idle worker "steals" queued
    work simply by being dispatched to next.  The interesting theft is
    the stale lease: when the queue is empty and a peer has held its
    in-flight shard for at least ``steal_after`` seconds, the idle
    worker is handed a *duplicate* build of the most-loaded peer's
    shard (the peer whose lease set holds the stalest lease; ties break
    on the smaller key).  First completion wins; the loser's ``done``
    is counted as a duplicate and discarded.  Stealing is safe by
    construction because shard results are content-addressed: both
    builders produce the identical bytes the
    :class:`~repro.parallel.cache.ShardCache` already treats as one
    entry, so double-completion is a cache hit, not a conflict.

Fault tolerance mirrors the filesystem queue: a worker that disconnects
(or whose heartbeat goes stale) mid-shard costs that shard one attempt
and requeues it, bounded by ``max_attempts`` before the shard is parked
and surfaced to the submitter as a clean
:class:`~repro.errors.AnalysisError`; a submitter that loses its broker
connection reconnects and re-submits its outstanding shards (results
are kept broker-side, so nothing is rebuilt); a worker that finishes a
shard after losing its connection still wrote the result through its
local shard cache, so the re-dispatched build is a skip.

Determinism: dispatch order is submission FIFO, idle workers are served
in sorted id order, and steal victims are chosen by (stalest lease,
smallest key) — the whole broker is single-threaded asyncio state with
no hash-order iteration, so a re-run distributes identically.

Trust model
    Frames are pickles, so the transport defends in two layers.  Every
    peer (broker, worker, submitter) unpickles through a restricted
    loader that refuses any global outside the shard-spec allowlist —
    a crafted pickle naming ``os.system`` is dropped at the frame
    boundary, never executed.  On top of that, setting
    ``REPRO_BROKER_SECRET`` (identically on every peer) requires an
    HMAC-SHA256 tag over each frame's payload, so hosts without the
    secret cannot inject frames at all.  The broker binds
    ``127.0.0.1`` by default; expose it more widely only on networks
    where every reachable host is trusted, and set the shared secret
    when you do.
"""

from __future__ import annotations

import asyncio
import hmac
import io
import os
import pickle
import socket
import struct
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import obs
from repro.errors import AnalysisError
from repro.obs.tracer import TRACE_FILE_ENV
from repro.parallel.backoff import Backoff
from repro.parallel.cache import ShardCache, shard_key
from repro.parallel.worker import ShardTask, run_shard
from repro.parallel.workqueue import (
    CRASH_ENV,
    DEFAULT_MAX_ATTEMPTS,
    _short,
    default_worker_id,
)

__all__ = [
    "BROKER_ENV",
    "BROKER_SECRET_ENV",
    "STEAL_DELAY_ENV",
    "BackgroundBroker",
    "Broker",
    "TcpExecutor",
    "TcpWorker",
    "broker_clear",
    "broker_stats",
    "resolve_broker",
    "run_broker",
]

#: Environment fallback for ``--broker`` (``HOST:PORT``).
BROKER_ENV = "REPRO_BROKER"

#: Shared-secret frame authentication.  When set — identically on the
#: broker, every worker, and every submitter — each frame's payload is
#: prefixed with an HMAC-SHA256 tag over it, and frames whose tag does
#: not verify are rejected before a single byte is unpickled.  Set it
#: whenever the broker is exposed beyond localhost.
BROKER_SECRET_ENV = "REPRO_BROKER_SECRET"

#: Test hook: a worker whose environment sets this to a float sleeps
#: that many seconds before every shard build (heartbeats still
#: flowing), simulating a straggler so steal paths can be exercised
#: deterministically — the hook behind ``benchmarks/bench_dist.py`` and
#: the CI mixed-speed fleet smoke.
STEAL_DELAY_ENV = "REPRO_STEAL_DELAY"

#: Bumped whenever the wire format changes; mismatched peers are
#: rejected with a clean error instead of being mis-deserialized.
NET_FORMAT_VERSION = 1

#: Frame-size backstop (a shard task is a circuit plus a fault slice —
#: kilobytes, not gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">Q")

#: Indirection for tests: monkeypatching ``netqueue._sleep`` pins the
#: reconnect/backoff schedule without wall-clock waits.
_sleep = time.sleep

#: Unpickling a hostile or truncated payload can raise nearly anything;
#: this is the same recovery set the filesystem queue uses.
_DECODE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
    TypeError,
)

#: The only globals a frame pickle may reference: the shard-spec types
#: that legitimately ride the wire.  Anything else — ``os.system``,
#: ``builtins.eval``, any repro callable — is refused before it is
#: resolved, so a crafted pickle cannot execute code on a peer.
#: Primitives (dicts, lists, tuples, strings, numbers) have dedicated
#: opcodes and need no entry here.
_SAFE_FRAME_GLOBALS = frozenset(
    {
        ("repro.parallel.worker", "ShardTask"),
        ("repro.circuit.netlist", "Circuit"),
        ("repro.circuit.netlist", "Line"),
        ("repro.circuit.netlist", "LineKind"),
        ("repro.circuit.gate", "GateType"),
        ("repro.faultsim.backends", "ExhaustiveBackend"),
        ("repro.faultsim.backends", "SampledBackend"),
        ("repro.faultsim.backends", "PackedBackend"),
        ("repro.faultsim.backends", "FixedUniverseBackend"),
        ("repro.faultsim.backends", "SerialBackend"),
        ("repro.faults.stuck_at", "StuckAtFault"),
        ("repro.faults.bridging", "BridgingFault"),
    }
)

#: HMAC-SHA256 digest length (the frame-payload prefix when a shared
#: secret is configured).
_MAC_SIZE = 32


class _FrameUnpickler(pickle.Unpickler):
    """``pickle.Unpickler`` restricted to the frame allowlist."""

    def find_class(self, module: str, name: str) -> Any:
        if (module, name) not in _SAFE_FRAME_GLOBALS:
            raise pickle.UnpicklingError(
                f"frame references forbidden global {module}.{name}"
            )
        return super().find_class(module, name)


def _loads(payload: bytes) -> Any:
    return _FrameUnpickler(io.BytesIO(payload)).load()


def _secret() -> bytes | None:
    raw = os.environ.get(BROKER_SECRET_ENV, "")
    return raw.encode("utf-8") if raw else None


def _seal(payload: bytes) -> bytes:
    secret = _secret()
    if secret is None:
        return payload
    return hmac.new(secret, payload, "sha256").digest() + payload


def _unseal(sealed: bytes) -> bytes:
    secret = _secret()
    if secret is None:
        return sealed
    if len(sealed) < _MAC_SIZE:
        raise AnalysisError(
            "broker frame is shorter than its HMAC tag — is the peer "
            f"running without {BROKER_SECRET_ENV}?"
        )
    tag, payload = sealed[:_MAC_SIZE], sealed[_MAC_SIZE:]
    if not hmac.compare_digest(
        hmac.new(secret, payload, "sha256").digest(), tag
    ):
        raise AnalysisError(
            "broker frame failed HMAC verification — do all peers "
            f"share the same {BROKER_SECRET_ENV}?"
        )
    return payload


# ----------------------------------------------------------------------
# Wire framing: 8-byte big-endian length prefix + one pickled dict
# (HMAC-tagged when a shared secret is configured).
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    payload = _seal(
        pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    )
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> dict[str, Any]:
    header = _recv_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise AnalysisError(
            f"oversized broker frame ({length} bytes); not a repro broker?"
        )
    payload = _unseal(_recv_exactly(sock, length))
    try:
        message = _loads(payload)
    except _DECODE_ERRORS as exc:
        raise AnalysisError(f"undecodable broker frame: {exc}") from exc
    if not isinstance(message, dict):
        raise AnalysisError(
            f"broker frame must be a dict, got {type(message).__name__}"
        )
    return message


def _recv_exactly(sock: socket.socket, size: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < size:
        chunk = sock.recv(size - len(chunks))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.extend(chunk)
    return bytes(chunks)


async def _read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """One frame off an asyncio stream; None on EOF/garbage (drop peer)."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        return None
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    try:
        message = _loads(_unseal(payload))
    except (AnalysisError,) + _DECODE_ERRORS:
        return None
    return message if isinstance(message, dict) else None


def _write_frame(
    writer: asyncio.StreamWriter, message: dict[str, Any]
) -> None:
    if writer.is_closing():
        return
    payload = _seal(
        pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    )
    writer.write(_HEADER.pack(len(payload)) + payload)


# ----------------------------------------------------------------------
# Address resolution
# ----------------------------------------------------------------------
def resolve_broker(
    broker: str | None = None,
    *,
    what: str = "the tcp executor",
    flag: str = "--broker",
) -> tuple[str, int]:
    """``HOST:PORT`` from the explicit value, else ``REPRO_BROKER``."""
    resolved = broker or os.environ.get(BROKER_ENV)
    if not resolved:
        raise AnalysisError(
            f"{what} needs a broker address: pass {flag} HOST:PORT "
            f"(or set {BROKER_ENV})"
        )
    host, sep, port_text = resolved.rpartition(":")
    if not sep or not host or not port_text.isdigit():
        raise AnalysisError(
            f"broker address must be HOST:PORT, got {resolved!r}"
        )
    return host, int(port_text)


def _connect(address: tuple[str, int], timeout: float) -> socket.socket:
    return socket.create_connection(address, timeout=timeout)


# ----------------------------------------------------------------------
# The broker
# ----------------------------------------------------------------------
@dataclass
class _WorkerConn:
    """Broker-side state of one registered worker connection."""

    worker_id: str
    writer: asyncio.StreamWriter
    current: str | None = None
    stolen: bool = False
    assigned_at: float = 0.0
    last_beat: float = 0.0


class Broker:
    """In-memory task broker: FIFO dispatch, leases, work stealing.

    All state lives on one event loop — no locks, no hash-order
    iteration.  ``steal_after`` is the lease age beyond which an idle
    worker duplicates a peer's in-flight shard; ``lease_timeout`` is
    the heartbeat age beyond which a busy worker is presumed dead and
    disconnected (costing its shard one attempt); ``max_builders``
    bounds how many workers may build the same shard concurrently.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        steal: bool = True,
        steal_after: float = 0.5,
        lease_timeout: float = 30.0,
        max_builders: int = 3,
        result_cap: int = 4096,
    ) -> None:
        if steal_after <= 0:
            raise AnalysisError(
                f"steal_after must be > 0, got {steal_after}"
            )
        if lease_timeout <= 0:
            raise AnalysisError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        if max_builders < 1:
            raise AnalysisError(
                f"max_builders must be >= 1, got {max_builders}"
            )
        if result_cap < 1:
            raise AnalysisError(
                f"result_cap must be >= 1, got {result_cap}"
            )
        self.host = host
        self.port = port
        self.steal = steal
        self.steal_after = steal_after
        self.lease_timeout = lease_timeout
        self.max_builders = max_builders
        self.result_cap = result_cap
        #: FIFO of not-yet-dispatched keys (values unused).
        self._pending: OrderedDict[str, None] = OrderedDict()
        #: Every unresolved key -> its task spec (pending or building).
        self._specs: dict[str, dict[str, Any]] = {}
        #: key -> {worker_id: assigned_at} for in-flight builds.
        self._builders: dict[str, dict[str, float]] = {}
        #: key -> submitter writers waiting for its result.
        self._waiters: dict[str, list[asyncio.StreamWriter]] = {}
        #: Finished signatures, bounded LRU.
        self._results: OrderedDict[str, list[int]] = OrderedDict()
        #: Terminally failed keys -> error text.
        self._failures: dict[str, str] = {}
        self._workers: dict[str, _WorkerConn] = {}
        self.counters: dict[str, int] = {
            "submitted": 0,
            "dispatched": 0,
            "completed": 0,
            "duplicates": 0,
            "steals": 0,
            "steal_completions": 0,
            "requeues": 0,
            "parked": 0,
            "workers_registered": 0,
        }
        self._server: asyncio.Server | None = None
        self._ticker: asyncio.Task[None] | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> asyncio.Server:
        """Bind, start the scavenger tick, return the listening server."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = int(self._server.sockets[0].getsockname()[1])
        self._ticker = asyncio.get_running_loop().create_task(
            self._tick_loop()
        )
        return self._server

    async def close(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one peer (worker or submitter) until it disconnects."""
        worker_id: str | None = None
        try:
            while True:
                message = await _read_frame(reader)
                if message is None:
                    break
                op = message.get("op")
                if op == "register":
                    worker_id = self._register(message, writer)
                elif op == "ping":
                    if worker_id is not None:
                        conn = self._workers.get(worker_id)
                        if conn is not None and conn.writer is writer:
                            conn.last_beat = time.monotonic()
                elif op == "done":
                    self._done(worker_id, message)
                elif op == "error":
                    self._build_error(worker_id, message)
                elif op == "submit":
                    self._submit(message, writer)
                elif op == "stats":
                    _write_frame(
                        writer, {"op": "stats", "stats": self.stats_doc()}
                    )
                elif op == "clear":
                    _write_frame(
                        writer, {"op": "cleared", "removed": self.clear()}
                    )
                else:
                    _write_frame(
                        writer,
                        {"op": "rejected", "error": f"unknown op {op!r}"},
                    )
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            if worker_id is not None:
                self._drop_worker(
                    worker_id, "connection lost", writer=writer
                )
            self._drop_waiter(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # Loop shutdown cancels handler tasks mid-close; either
                # way the connection is gone.
                pass

    # -- worker protocol -----------------------------------------------
    def _register(
        self, message: dict[str, Any], writer: asyncio.StreamWriter
    ) -> str | None:
        if message.get("version") != NET_FORMAT_VERSION:
            _write_frame(
                writer,
                {
                    "op": "rejected",
                    "error": (
                        f"wire format {message.get('version')!r} != "
                        f"{NET_FORMAT_VERSION} (mismatched repro versions?)"
                    ),
                },
            )
            return None
        worker_id = str(message.get("worker") or "")
        if not worker_id:
            _write_frame(
                writer,
                {"op": "rejected", "error": "register needs a worker id"},
            )
            return None
        # A reconnect under the same id supersedes the dead connection.
        if worker_id in self._workers:
            self._drop_worker(worker_id, "superseded by a reconnect")
        self._workers[worker_id] = _WorkerConn(
            worker_id=worker_id,
            writer=writer,
            last_beat=time.monotonic(),
        )
        self.counters["workers_registered"] += 1
        obs.event("broker_worker_registered", worker=worker_id)
        self._pump()
        return worker_id

    def _done(
        self, worker_id: str | None, message: dict[str, Any]
    ) -> None:
        key = str(message.get("key") or "")
        conn = self._workers.get(worker_id) if worker_id else None
        stolen = False
        if conn is not None and conn.current == key:
            stolen = conn.stolen
            conn.current = None
            conn.stolen = False
        signatures = message.get("signatures")
        if key in self._specs and isinstance(signatures, list):
            self._resolve(key, list(signatures), worker_id or "?", stolen)
        else:
            # A late duplicate (the shard was resolved by a faster
            # builder, or cleared) or a malformed report: the first
            # good result stands, but the reporter must still release
            # its builder slot, or a ghost lease consumes one of the
            # key's ``max_builders`` forever.
            self.counters["duplicates"] += 1
            obs.metrics().counter(
                "repro_broker_duplicates_total",
                help="Late duplicate completions discarded by the broker",
            ).inc()
            if worker_id is not None:
                builders = self._builders.get(key)
                if builders is not None:
                    builders.pop(worker_id, None)
                    if not builders:
                        del self._builders[key]
                        if key in self._specs:
                            # A malformed report was the only build in
                            # flight: charge the attempt and requeue.
                            self._attempt_failed(
                                key,
                                "malformed done frame (signatures "
                                "not a list)",
                            )
        self._pump()

    def _build_error(
        self, worker_id: str | None, message: dict[str, Any]
    ) -> None:
        key = str(message.get("key") or "")
        error = str(message.get("error") or "unknown worker error")
        conn = self._workers.get(worker_id) if worker_id else None
        if conn is not None and conn.current == key:
            conn.current = None
            conn.stolen = False
        if key in self._specs and worker_id is not None:
            builders = self._builders.get(key, {})
            builders.pop(worker_id, None)
            if not builders:
                self._builders.pop(key, None)
                self._attempt_failed(key, error)
        self._pump()

    def _drop_worker(
        self,
        worker_id: str,
        reason: str,
        *,
        writer: asyncio.StreamWriter | None = None,
    ) -> None:
        conn = self._workers.get(worker_id)
        if conn is None:
            return
        if writer is not None and conn.writer is not writer:
            # The id was re-registered by a newer connection (or the
            # scavenger already dropped this one and the worker came
            # back): the live registration is not ours to deregister.
            return
        del self._workers[worker_id]
        key = conn.current
        if key is not None and key in self._specs:
            builders = self._builders.get(key, {})
            builders.pop(worker_id, None)
            if not builders:
                self._builders.pop(key, None)
                self._attempt_failed(
                    key, f"worker {worker_id} lost mid-shard ({reason})"
                )
        obs.event(
            "broker_worker_lost", worker=worker_id, reason=_short(reason)
        )
        self._pump()

    # -- submitter protocol --------------------------------------------
    def _submit(
        self, message: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        if message.get("version") != NET_FORMAT_VERSION:
            _write_frame(
                writer,
                {
                    "op": "rejected",
                    "error": (
                        f"wire format {message.get('version')!r} != "
                        f"{NET_FORMAT_VERSION} (mismatched repro versions?)"
                    ),
                },
            )
            return
        shards = message.get("shards")
        if not isinstance(shards, list):
            _write_frame(
                writer,
                {"op": "rejected", "error": "submit needs a shard list"},
            )
            return
        for spec in shards:
            if not isinstance(spec, dict) or not isinstance(
                spec.get("task"), ShardTask
            ):
                _write_frame(
                    writer,
                    {
                        "op": "rejected",
                        "error": "submit shards must carry ShardTask specs",
                    },
                )
                return
            key = str(spec.get("key") or "")
            cached = self._results.get(key)
            if cached is not None:
                self._results.move_to_end(key)
                _write_frame(
                    writer,
                    {
                        "op": "result",
                        "key": key,
                        "signatures": cached,
                        "worker": None,
                        "stolen": False,
                    },
                )
                continue
            # A fresh submission clears a parked failure and gets a
            # fresh retry budget — same semantics as WorkQueue.enqueue.
            self._failures.pop(key, None)
            if key not in self._specs:
                self._specs[key] = {
                    "key": key,
                    "task": spec["task"],
                    "shard_index": spec.get("shard_index"),
                    "attempts": 0,
                    "max_attempts": int(
                        spec.get("max_attempts") or DEFAULT_MAX_ATTEMPTS
                    ),
                    "trace_file": spec.get("trace_file"),
                    "trace_id": spec.get("trace_id"),
                    "enqueued_wall": spec.get("enqueued_wall"),
                }
                self._pending[key] = None
                self.counters["submitted"] += 1
                obs.metrics().counter(
                    "repro_broker_submitted_total",
                    help="Shard tasks accepted by the broker",
                ).inc()
            waiters = self._waiters.setdefault(key, [])
            if writer not in waiters:
                waiters.append(writer)
        self._pump()

    def _drop_waiter(self, writer: asyncio.StreamWriter) -> None:
        """A submitter went away; its shards stay queued (results are
        kept, so a reconnect-and-resubmit finds them instantly)."""
        for key in sorted(self._waiters):
            waiters = [w for w in self._waiters[key] if w is not writer]
            if waiters:
                self._waiters[key] = waiters
            else:
                del self._waiters[key]

    # -- state transitions ---------------------------------------------
    def _resolve(
        self, key: str, signatures: list[int], worker: str, stolen: bool
    ) -> None:
        self._specs.pop(key, None)
        self._pending.pop(key, None)
        self._builders.pop(key, None)
        self._results[key] = signatures
        while len(self._results) > self.result_cap:
            self._results.popitem(last=False)
        self.counters["completed"] += 1
        if stolen:
            self.counters["steal_completions"] += 1
        obs.metrics().counter(
            "repro_broker_completed_total",
            help="Shards completed through the broker",
        ).inc()
        for waiter in self._waiters.pop(key, []):
            _write_frame(
                waiter,
                {
                    "op": "result",
                    "key": key,
                    "signatures": signatures,
                    "worker": worker,
                    "stolen": stolen,
                },
            )

    def _attempt_failed(self, key: str, error: str) -> None:
        spec = self._specs[key]
        spec["attempts"] += 1
        if spec["attempts"] >= spec["max_attempts"]:
            self._park(key, f"attempt {spec['attempts']}: {error}")
            return
        self._pending[key] = None
        self.counters["requeues"] += 1
        obs.event(
            "task_requeued",
            key=key,
            attempts=spec["attempts"],
            reason=_short(error),
        )
        obs.metrics().counter(
            "repro_broker_requeues_total",
            help="Broker shards requeued after a failed attempt",
        ).inc()

    def _park(self, key: str, error: str) -> None:
        self._specs.pop(key, None)
        self._pending.pop(key, None)
        self._builders.pop(key, None)
        self._failures[key] = error
        self.counters["parked"] += 1
        obs.event("shard_parked", key=key, error=_short(error))
        obs.metrics().counter(
            "repro_broker_parked_total",
            help="Broker shards parked terminally after exhausting retries",
        ).inc()
        for waiter in self._waiters.pop(key, []):
            _write_frame(
                waiter, {"op": "failed", "key": key, "error": error}
            )

    # -- dispatch and stealing -----------------------------------------
    def _pump(self) -> None:
        """Hand work to every idle worker: FIFO first, then theft."""
        now = time.monotonic()
        for worker_id in sorted(self._workers):
            conn = self._workers[worker_id]
            if conn.current is not None:
                continue
            if self._pending:
                key, _ = self._pending.popitem(last=False)
                self._assign(conn, key, now, stolen=False)
                continue
            if not self.steal:
                continue
            key_or_none = self._steal_candidate(worker_id, now)
            if key_or_none is None:
                continue
            self._assign(conn, key_or_none, now, stolen=True)
            self.counters["steals"] += 1
            obs.event(
                "broker_steal",
                key=key_or_none[:12],
                thief=worker_id,
            )
            obs.metrics().counter(
                "repro_steal_total",
                help="Stale in-flight shards duplicated to an idle worker",
            ).inc()

    def _steal_candidate(self, thief: str, now: float) -> str | None:
        """The stalest eligible in-flight shard, deterministically.

        With one in-flight shard per connection, the "most-loaded peer"
        is the one whose lease set holds the stalest lease; ties break
        on the smaller shard key.  A shard is eligible once its oldest
        lease is ``steal_after`` old, the thief is not already building
        it, and fewer than ``max_builders`` workers hold it.
        """
        best: tuple[float, str] | None = None
        for key in sorted(self._specs):
            builders = self._builders.get(key)
            if not builders:
                continue  # pending, not in flight
            if thief in builders or len(builders) >= self.max_builders:
                continue
            age = now - min(builders.values())
            if age < self.steal_after:
                continue
            rank = (-age, key)
            if best is None or rank < best:
                best = rank
        return best[1] if best is not None else None

    def _assign(
        self, conn: _WorkerConn, key: str, now: float, *, stolen: bool
    ) -> None:
        spec = self._specs[key]
        self._builders.setdefault(key, {})[conn.worker_id] = now
        conn.current = key
        conn.stolen = stolen
        conn.assigned_at = now
        conn.last_beat = now
        self.counters["dispatched"] += 1
        obs.metrics().counter(
            "repro_broker_dispatched_total",
            help="Shard builds pushed to workers by the broker",
        ).inc()
        _write_frame(
            conn.writer,
            {
                "op": "build",
                "key": key,
                "task": spec["task"],
                "shard_index": spec["shard_index"],
                "attempts": spec["attempts"],
                "stolen": stolen,
                "trace_file": spec["trace_file"],
                "trace_id": spec["trace_id"],
                "enqueued_wall": spec["enqueued_wall"],
            },
        )

    async def _tick_loop(self) -> None:
        """Scavenge stale heartbeats and mature steal candidates."""
        interval = max(
            0.05, min(self.steal_after / 2.0, self.lease_timeout / 4.0)
        )
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            stale = [
                worker_id
                for worker_id in sorted(self._workers)
                if self._workers[worker_id].current is not None
                and now - self._workers[worker_id].last_beat
                > self.lease_timeout
            ]
            for worker_id in stale:
                conn = self._workers[worker_id]
                age = now - conn.last_beat
                writer = conn.writer
                self._drop_worker(
                    worker_id,
                    f"heartbeat stale for {age:.1f}s (presumed dead "
                    f"mid-shard)",
                )
                writer.close()
            self._pump()

    # -- introspection (`repro queue ... --broker`) --------------------
    def stats_doc(self) -> dict[str, Any]:
        now = time.monotonic()
        building = []
        for key in sorted(self._builders):
            holders = self._builders[key]
            building.append(
                {
                    "key": key,
                    "attempts": self._specs[key]["attempts"],
                    "builders": [
                        {
                            "worker": worker_id,
                            "age_s": round(
                                max(0.0, now - holders[worker_id]), 3
                            ),
                        }
                        for worker_id in sorted(holders)
                    ],
                }
            )
        return {
            "address": f"{self.host}:{self.port}",
            "steal": self.steal,
            "pending": list(self._pending),
            "building": building,
            "workers": [
                {
                    "worker": worker_id,
                    "current": self._workers[worker_id].current,
                }
                for worker_id in sorted(self._workers)
            ],
            "results": len(self._results),
            "failed": [
                {"key": key, "error": self._failures[key]}
                for key in sorted(self._failures)
            ],
            "counters": dict(self.counters),
        }

    def clear(self) -> int:
        """Drop every queued task, result, and failure marker.

        Waiting submitters are failed cleanly rather than left hanging.
        """
        removed = (
            len(self._specs) + len(self._results) + len(self._failures)
        )
        for key in sorted(self._specs):
            for waiter in self._waiters.pop(key, []):
                _write_frame(
                    waiter,
                    {
                        "op": "failed",
                        "key": key,
                        "error": "queue cleared by operator",
                    },
                )
        self._specs.clear()
        self._pending.clear()
        self._builders.clear()
        self._results.clear()
        self._failures.clear()
        return removed


# ----------------------------------------------------------------------
# Foreground / background broker entry points
# ----------------------------------------------------------------------
def run_broker(
    host: str = "127.0.0.1",
    port: int = 8766,
    *,
    steal: bool = True,
    steal_after: float = 0.5,
    lease_timeout: float = 30.0,
) -> int:
    """Run a broker in the foreground until interrupted.

    Prints a ready line (with the actually-bound port, so ``--port 0``
    is usable) before serving, so wrappers can wait for it.
    """
    broker = Broker(
        host,
        port,
        steal=steal,
        steal_after=steal_after,
        lease_timeout=lease_timeout,
    )

    async def main() -> None:
        server = await broker.start()
        sys.stdout.write(
            f"repro broker listening on {broker.host}:{broker.port} "
            f"(steal={'on' if steal else 'off'})\n"
        )
        sys.stdout.flush()
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        sys.stdout.write("repro broker: shutting down\n")
    return 0


class BackgroundBroker:
    """A broker on a daemon thread — for tests, benchmarks, and serve.

    ``with BackgroundBroker() as broker:`` yields a listening broker on
    an OS-assigned port; ``broker.address`` is its ``HOST:PORT``.  The
    event loop lives entirely on the background thread; the foreground
    talks to it over real sockets like any other peer.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        steal: bool = True,
        steal_after: float = 0.5,
        lease_timeout: float = 30.0,
        max_builders: int = 3,
    ) -> None:
        self.broker = Broker(
            host,
            port,
            steal=steal,
            steal_after=steal_after,
            lease_timeout=lease_timeout,
            max_builders=max_builders,
        )
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.broker.host

    @property
    def port(self) -> int:
        return self.broker.port

    @property
    def address(self) -> str:
        return f"{self.broker.host}:{self.broker.port}"

    def start(self) -> "BackgroundBroker":
        self._thread = threading.Thread(
            target=self._run, name="repro-broker", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise AnalysisError("broker failed to start in 30s")
        if self._error is not None:
            raise AnalysisError(
                f"broker failed to start: {self._error}"
            )
        return self

    def stop(self) -> None:
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # loop already closed: stopping twice is a no-op
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def stats(self) -> dict[str, Any]:
        """A broker-state snapshot, taken on the broker's own loop."""
        loop = self._loop
        if loop is None or not loop.is_running():
            raise AnalysisError("broker is not running")

        async def snapshot() -> dict[str, Any]:
            return self.broker.stats_doc()

        return asyncio.run_coroutine_threadsafe(snapshot(), loop).result(
            timeout=10.0
        )

    def __enter__(self) -> "BackgroundBroker":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start() on the foreground thread
            self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await self.broker.start()
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            await self.broker.close()


# ----------------------------------------------------------------------
# Client helpers (`repro queue {info,stats,clear} --broker`)
# ----------------------------------------------------------------------
def _broker_roundtrip(
    broker: str | None, request: dict[str, Any], *, what: str
) -> dict[str, Any]:
    address = resolve_broker(broker, what=what, flag="--broker")
    label = f"{address[0]}:{address[1]}"
    try:
        sock = _connect(address, timeout=10.0)
    except OSError as exc:
        raise AnalysisError(
            f"cannot reach broker at {label}: {exc} — is "
            f"`repro broker` running there?"
        ) from exc
    try:
        send_frame(
            sock, {**request, "version": NET_FORMAT_VERSION}
        )
        return recv_frame(sock)
    except (ConnectionError, OSError) as exc:
        raise AnalysisError(
            f"broker at {label} dropped the connection: {exc}"
        ) from exc
    finally:
        sock.close()


def broker_stats(broker: str | None = None) -> dict[str, Any]:
    """The live state document of a running broker."""
    reply = _broker_roundtrip(
        broker, {"op": "stats"}, what="repro queue"
    )
    if reply.get("op") != "stats" or not isinstance(
        reply.get("stats"), dict
    ):
        raise AnalysisError(f"unexpected broker reply: {reply.get('op')!r}")
    stats = reply["stats"]
    assert isinstance(stats, dict)
    return stats


def broker_clear(broker: str | None = None) -> int:
    """Drop a running broker's queue state; returns entries removed."""
    reply = _broker_roundtrip(
        broker, {"op": "clear"}, what="repro queue"
    )
    if reply.get("op") != "cleared":
        raise AnalysisError(f"unexpected broker reply: {reply.get('op')!r}")
    return int(reply.get("removed") or 0)


# ----------------------------------------------------------------------
# The submitter: ShardExecutor over TCP
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TcpExecutor:
    """Distributed execution through a TCP broker (``--executor tcp``).

    Parameters
    ----------
    broker:
        ``HOST:PORT`` of the broker (default: ``REPRO_BROKER``,
        resolved at submit time so one executor value works across
        hosts).
    max_attempts:
        Build attempts (raised builds + lost workers) before a shard
        is parked broker-side and the run fails with an error naming
        it.
    wait_timeout:
        Give up after this many seconds *without any shard completing*
        (a stall deadline, reset on every completion;
        ``REPRO_QUEUE_TIMEOUT`` overrides — the same deadline the
        filesystem queue uses).
    connect_timeout:
        Per-attempt TCP connect deadline; lost connections are retried
        with bounded exponential backoff inside the stall budget.
    """

    broker: str | None = None
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    wait_timeout: float | None = None
    connect_timeout: float = 10.0
    name: str = "tcp"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise AnalysisError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.wait_timeout is not None and self.wait_timeout <= 0:
            raise AnalysisError(
                f"wait_timeout must be > 0, got {self.wait_timeout}"
            )
        if self.connect_timeout <= 0:
            raise AnalysisError(
                f"connect_timeout must be > 0, got {self.connect_timeout}"
            )

    def resolved_address(self) -> tuple[str, int]:
        return resolve_broker(self.broker)

    def describe(self) -> str:
        return "tcp"

    # -- the submit/block loop -----------------------------------------
    def submit(
        self, tasks: list[ShardTask]
    ) -> list[tuple[int, list[int]]]:
        from repro.parallel.executors import resolve_wait_timeout

        address = self.resolved_address()
        label = f"{address[0]}:{address[1]}"
        trace_file = (
            os.environ.get(TRACE_FILE_ENV)
            if obs.tracing_enabled()
            else None
        )
        trace_id = (
            obs.current_tracer().trace_id
            if obs.tracing_enabled()
            else None
        )
        index_of: dict[str, int] = {}
        specs: list[dict[str, Any]] = []
        for task in tasks:
            key = shard_key(
                task.circuit, task.backend, task.kind, task.faults
            )
            index_of[key] = task.shard_index
            specs.append(
                {
                    "key": key,
                    "task": task,
                    "shard_index": task.shard_index,
                    "max_attempts": self.max_attempts,
                    "trace_file": trace_file,
                    "trace_id": trace_id,
                    "enqueued_wall": obs.system_clock().wall(),
                }
            )
        obs.metrics().counter(
            "repro_tcp_submitted_total",
            help="Shard tasks submitted to a TCP broker",
        ).inc(len(specs))
        with obs.span("tcp_submit", broker=label, shards=len(tasks)):
            return self._collect(
                address, label, specs, index_of,
                resolve_wait_timeout(self.wait_timeout),
            )

    def _collect(
        self,
        address: tuple[str, int],
        label: str,
        specs: list[dict[str, Any]],
        index_of: dict[str, int],
        stall_limit: float,
    ) -> list[tuple[int, list[int]]]:
        outcomes: list[tuple[int, list[int]]] = []
        outstanding = set(index_of)
        backoff = Backoff(0.05, cap=2.0)
        last_progress = time.monotonic()
        sock: socket.socket | None = None
        try:
            while outstanding:
                if sock is None:
                    try:
                        sock = _connect(address, self.connect_timeout)
                        # Re-submission after a broker restart only
                        # carries the still-outstanding shards; resolved
                        # keys never rebuild.
                        send_frame(
                            sock,
                            {
                                "op": "submit",
                                "version": NET_FORMAT_VERSION,
                                "shards": [
                                    spec
                                    for spec in specs
                                    if spec["key"] in outstanding
                                ],
                            },
                        )
                    except OSError as exc:
                        if sock is not None:
                            sock.close()
                            sock = None
                        self._check_stall(
                            last_progress, stall_limit, label,
                            len(outstanding), reason=str(exc),
                        )
                        _sleep(backoff.next())
                        continue
                sock.settimeout(1.0)
                try:
                    message = recv_frame(sock)
                except TimeoutError:
                    self._check_stall(
                        last_progress, stall_limit, label,
                        len(outstanding),
                    )
                    continue
                except (ConnectionError, OSError, AnalysisError) as exc:
                    # Broker went away — or spoke garbage (wrong
                    # service, missing shared secret) — mid-wait: back
                    # off within the stall budget, then reconnect +
                    # resubmit.  Only completions reset the backoff, so
                    # a connect-then-garbage loop escalates instead of
                    # spinning.
                    sock.close()
                    sock = None
                    self._check_stall(
                        last_progress, stall_limit, label,
                        len(outstanding), reason=str(exc),
                    )
                    _sleep(backoff.next())
                    continue
                op = message.get("op")
                if op == "result":
                    key = str(message.get("key") or "")
                    if key in outstanding:
                        signatures = message.get("signatures")
                        if not isinstance(signatures, list):
                            raise AnalysisError(
                                f"broker at {label} returned a malformed "
                                f"result for shard {index_of[key]}"
                            )
                        outcomes.append((index_of[key], list(signatures)))
                        outstanding.discard(key)
                        last_progress = time.monotonic()
                        backoff.reset()
                elif op == "failed":
                    key = str(message.get("key") or "")
                    raise AnalysisError(
                        f"tcp shard {index_of.get(key, '?')} "
                        f"(key {key[:12]}…) failed permanently: "
                        f"{message.get('error')}"
                    )
                elif op == "rejected":
                    raise AnalysisError(
                        f"broker at {label} rejected the submission: "
                        f"{message.get('error')}"
                    )
        finally:
            if sock is not None:
                sock.close()
        return outcomes

    @staticmethod
    def _check_stall(
        last_progress: float,
        stall_limit: float,
        label: str,
        outstanding: int,
        reason: str | None = None,
    ) -> None:
        if time.monotonic() - last_progress <= stall_limit:
            return
        hint = f" ({reason})" if reason else ""
        raise AnalysisError(
            f"broker at {label} made no progress on {outstanding} "
            f"shard(s) within {stall_limit:.0f}s{hint} — is a "
            f"`repro broker` running at {label}, with `repro worker "
            f"--broker {label}` processes attached?"
        )


# ----------------------------------------------------------------------
# The worker: push-based drain loop over TCP
# ----------------------------------------------------------------------
@dataclass
class TcpWorker:
    """The drain loop behind ``repro worker --broker HOST:PORT``.

    Registers once, then blocks on the socket for pushed ``build``
    frames — no polling.  While a shard builds, a background thread
    heartbeats ``ping`` frames over the same connection; a worker
    killed mid-shard simply drops the connection, which the broker
    converts into a requeue.  Results are written through the worker's
    local content-addressed shard cache before being reported, so a
    completion that never reaches the broker is replayed as a cache
    hit on re-dispatch.  ``build_delay`` (or the ``REPRO_STEAL_DELAY``
    environment hook) sleeps before every build — the deterministic
    straggler knob behind the steal benchmark and tests.
    """

    broker: str | None = None
    worker_id: str = field(default_factory=default_worker_id)
    lease_timeout: float = 30.0
    heartbeat_interval: float | None = None
    build_delay: float = 0.0
    cache_dir: str | Path | None = None
    use_cache: bool = True
    connect_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.lease_timeout <= 0:
            raise AnalysisError(
                f"lease_timeout must be > 0, got {self.lease_timeout}"
            )
        if self.heartbeat_interval is None:
            self.heartbeat_interval = max(
                0.01, min(1.0, self.lease_timeout / 4.0)
            )
        if self.build_delay == 0.0:
            raw = os.environ.get(STEAL_DELAY_ENV, "")
            if raw:
                try:
                    self.build_delay = float(raw)
                except ValueError:
                    raise AnalysisError(
                        f"{STEAL_DELAY_ENV} must be a number of seconds, "
                        f"got {raw!r}"
                    ) from None
        if self.build_delay < 0:
            raise AnalysisError(
                f"build_delay must be >= 0, got {self.build_delay}"
            )
        raw_crash = os.environ.get(CRASH_ENV, "")
        self._crash_after = int(raw_crash) if raw_crash else 0
        self._cache = ShardCache(self.cache_dir)
        self._stop = threading.Event()
        self._send_lock = threading.Lock()
        self._sock: socket.socket | None = None

    def stop(self) -> None:
        """Thread-safe: interrupt :meth:`serve` (for tests/benchmarks)."""
        self._stop.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def serve(
        self,
        max_tasks: int | None = None,
        idle_exit: float | None = None,
    ) -> dict[str, int]:
        """Serve builds; returns ``{"built","skipped","failed","stolen"}``.

        ``max_tasks`` bounds the number of shards built; ``idle_exit``
        stops the loop after that many seconds without a pushed build
        (None: serve forever).  Lost broker connections reconnect with
        bounded exponential backoff.
        """
        stats = {"built": 0, "skipped": 0, "failed": 0, "stolen": 0}
        address = resolve_broker(
            self.broker, what="repro worker", flag="--broker"
        )
        reconnect = Backoff(0.05, cap=2.0)
        claims = 0
        idle_since = time.monotonic()
        while not self._stop.is_set():
            try:
                sock = _connect(address, self.connect_timeout)
            except OSError:
                if self._idle_expired(idle_since, idle_exit):
                    return stats
                _sleep(reconnect.next())
                continue
            self._sock = sock
            try:
                send_frame(
                    sock,
                    {
                        "op": "register",
                        "version": NET_FORMAT_VERSION,
                        "worker": self.worker_id,
                    },
                )
                # Registered again: later blips should not keep paying
                # the full backoff cap accumulated over the lifetime.
                reconnect.reset()
                finished, claims, idle_since = self._drain(
                    sock, stats, claims, max_tasks, idle_exit, idle_since
                )
                if finished:
                    return stats
            except OSError:
                # Connection died mid-build/report (recv-side deaths
                # return through _drain): the worker was active moments
                # ago, so restart its idle clock before reconnecting.
                idle_since = time.monotonic()
            finally:
                self._sock = None
                sock.close()
            if self._stop.is_set():
                return stats
            if self._idle_expired(idle_since, idle_exit):
                return stats
            _sleep(reconnect.next())
        return stats

    @staticmethod
    def _idle_expired(
        idle_since: float, idle_exit: float | None
    ) -> bool:
        return (
            idle_exit is not None
            and time.monotonic() - idle_since >= idle_exit
        )

    def _drain(
        self,
        sock: socket.socket,
        stats: dict[str, int],
        claims: int,
        max_tasks: int | None,
        idle_exit: float | None,
        idle_since: float,
    ) -> tuple[bool, int, float]:
        """The per-connection receive loop.

        Returns ``(finished, claims, idle_since)``: finished means the
        worker is done for good (stop, idle-exit, or max-tasks);
        otherwise the caller reconnects, judging its own idle-exit
        against the returned ``idle_since`` (which this loop advances
        on every build) rather than the stale value it passed in.
        """
        while not self._stop.is_set():
            sock.settimeout(
                min(0.5, idle_exit) if idle_exit is not None else 1.0
            )
            try:
                message = recv_frame(sock)
            except TimeoutError:
                if self._idle_expired(idle_since, idle_exit):
                    return True, claims, idle_since
                continue
            except (ConnectionError, OSError, AnalysisError):
                return False, claims, idle_since
            op = message.get("op")
            if op == "rejected":
                raise AnalysisError(
                    f"broker rejected this worker: {message.get('error')}"
                )
            if op != "build":
                continue
            idle_since = time.monotonic()
            claims += 1
            if self._crash_after and claims >= self._crash_after:
                os._exit(42)  # test hook: die mid-shard, lease held
            key = str(message.get("key") or "")
            if message.get("stolen"):
                stats["stolen"] += 1
            self._adopt_trace(message)
            self._report_queue_wait(message)
            cached = self._cache.get(key) if self.use_cache else None
            if cached is not None:
                # A duplicate of an already-built shard (steal race or
                # re-dispatch): the content-addressed result stands.
                stats["skipped"] += 1
                self._send(sock, {
                    "op": "done", "key": key, "signatures": cached,
                })
                continue
            try:
                signatures = self._build(sock, message)
            except OSError:
                raise  # the connection died; reconnect, don't report
            except Exception as exc:  # noqa: BLE001 - reported to the broker
                stats["failed"] += 1
                self._send(
                    sock,
                    {
                        "op": "error",
                        "key": key,
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
                continue
            if self.use_cache:
                self._cache.put(key, signatures)
            stats["built"] += 1
            obs.metrics().counter(
                "repro_tcp_completed_total",
                help="Shards built to completion by TCP workers",
            ).inc()
            self._send(sock, {
                "op": "done", "key": key, "signatures": signatures,
            })
            if max_tasks is not None and stats["built"] >= max_tasks:
                return True, claims, idle_since
        return True, claims, idle_since

    def _send(self, sock: socket.socket, message: dict[str, Any]) -> None:
        """Serialize frame writes (the heartbeat thread shares the
        connection with the drain loop)."""
        with self._send_lock:
            send_frame(sock, message)

    def _adopt_trace(self, message: dict[str, Any]) -> None:
        """Join the submitter's trace when this process has none.

        Same first-sighting-wins protocol as the filesystem queue
        worker: the build frame carries the submitter's trace file and
        id, and the worker id namespaces worker-local root spans.
        """
        trace_file = message.get("trace_file")
        if not trace_file or obs.tracing_enabled():
            return
        trace_id = message.get("trace_id")
        obs.activate(
            obs.Tracer(
                obs.JsonlTraceWriter(str(trace_file)),
                trace_id=str(trace_id) if trace_id else None,
                root_prefix=f"{self.worker_id}-",
            )
        )

    def _report_queue_wait(self, message: dict[str, Any]) -> None:
        enqueued = message.get("enqueued_wall")
        if enqueued is None:
            return
        wait = max(0.0, obs.system_clock().wall() - float(enqueued))
        obs.metrics().histogram(
            "repro_queue_wait_seconds",
            help="Enqueue-to-claim latency of queue shards",
        ).observe(wait)

    def _build(
        self, sock: socket.socket, message: dict[str, Any]
    ) -> list[int]:
        task = message.get("task")
        if not isinstance(task, ShardTask):
            raise AnalysisError(
                "build frame carried no ShardTask payload"
            )
        stop = threading.Event()
        interval = self.heartbeat_interval
        assert interval is not None  # set in __post_init__

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    self._send(sock, {"op": "ping"})
                except OSError:
                    return  # connection died; the drain loop handles it

        thread = threading.Thread(target=beat, daemon=True)
        thread.start()
        try:
            if self.build_delay > 0:
                _sleep(self.build_delay)
            _index, signatures = run_shard(task)
            return signatures
        finally:
            stop.set()
            thread.join()
