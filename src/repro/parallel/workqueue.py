"""Filesystem work queue: distributed shard execution over a shared dir.

The shard cache proved that shard results are location-independent —
content-addressed by circuit structure × backend configuration × fault
slice, identical wherever they are built.  This module completes the
thought: a :class:`WorkQueue` is a directory (local disk, NFS, any
shared mount) through which a submitting process publishes
:class:`~repro.parallel.worker.ShardTask` payloads and independent
``repro worker --queue DIR`` processes — on this or any host that can
see the directory — drain them.

Layout (all under the queue root)::

    tasks/<key>.task     pending task payloads, named by shard key
    claims/<key>.task    leased tasks (claim = atomic rename from tasks/)
    results/<key>.pkl    a content-addressed ShardCache of finished shards
    failed/<key>.err     terminal failures (retry budget exhausted)

Every transition is a single atomic filesystem operation, so the queue
needs no locks and no daemon:

* **enqueue** writes a unique temp file and ``os.replace``\\ s it into
  ``tasks/`` — racing submitters of the same key converge on one file;
* **claim** is ``os.rename(tasks/k, claims/k)`` — exactly one claimer
  wins, the losers see ``FileNotFoundError`` and move on;
* **heartbeat** is ``os.utime`` on the claim file; a claim whose
  heartbeat is older than the lease timeout is presumed dead and
  requeued (attempts + 1) by whoever notices first — another worker or
  the waiting submitter;
* **complete** writes the signatures through the queue's own
  :class:`~repro.parallel.cache.ShardCache`, so finished shards survive
  worker death and re-submission of the same analysis is idempotent
  (already-built shards are served straight from ``results/``);
* **fail** (a build that raised, or a lease that expired too often)
  requeues until the task's retry budget is exhausted, then parks a
  ``failed/<key>.err`` marker that the submitter surfaces as a clean
  :class:`~repro.errors.AnalysisError` naming the shard.

Duplicate builds are harmless by construction: a stale worker that
finishes after its lease was reclaimed writes the exact same
content-addressed bytes the replacement worker writes.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, cast

from repro import obs
from repro.errors import AnalysisError
from repro.obs.tracer import TRACE_FILE_ENV
from repro.parallel.backoff import Backoff
from repro.parallel.cache import ShardCache
from repro.parallel.worker import ShardTask, run_shard

#: Indirection for tests: monkeypatching ``workqueue._sleep`` pins the
#: worker idle-backoff schedule without wall-clock waits.
_sleep = time.sleep

#: Bumped whenever the task-payload layout changes; stale payloads from
#: an older queue format are failed (and re-enqueued fresh) instead of
#: being mis-deserialized.
QUEUE_FORMAT_VERSION = 1

#: Default number of build attempts a task gets before it is parked in
#: ``failed/`` (covers both raised builds and expired leases).
DEFAULT_MAX_ATTEMPTS = 3

#: Test hook: a worker process whose environment sets this to ``N``
#: hard-exits (``os._exit``) right after claiming its ``N``-th task —
#: mid-shard, heartbeat stopped — so the crash-recovery path (lease
#: expiry, requeue, completion by a surviving worker) can be exercised
#: end to end.
CRASH_ENV = "REPRO_QUEUE_CRASH_AFTER_CLAIM"


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _short(text: str, limit: int = 160) -> str:
    """Event-attribute-sized failure text (full text lives in failed/)."""
    return text if len(text) <= limit else text[: limit - 1] + "…"


@dataclass(frozen=True)
class Lease:
    """One claimed task: the payload plus where its claim file lives."""

    key: str
    payload: dict[str, Any]
    path: Path
    worker: str

    @property
    def task(self) -> ShardTask:
        return cast(ShardTask, self.payload["task"])

    @property
    def attempts(self) -> int:
        return cast(int, self.payload["attempts"])


class WorkQueue:
    """The on-disk queue (see the module docstring for the protocol)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.tasks_dir = self.root / "tasks"
        self.claims_dir = self.root / "claims"
        self.failed_dir = self.root / "failed"
        self.results = ShardCache(self.root / "results")

    def _ensure(self) -> None:
        for d in (self.tasks_dir, self.claims_dir, self.failed_dir):
            d.mkdir(parents=True, exist_ok=True)

    # -- atomic payload IO ---------------------------------------------
    @staticmethod
    def _write(path: Path, payload: dict[str, Any]) -> None:
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}-{threading.get_ident()}.tmp"
        )
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    @staticmethod
    def _read(path: Path) -> dict[str, Any]:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if (
            not isinstance(payload, dict)
            or payload.get("version") != QUEUE_FORMAT_VERSION
            or not isinstance(payload.get("task"), ShardTask)
        ):
            raise AnalysisError(
                f"unrecognized task payload in {path.name} (queue format "
                f"{QUEUE_FORMAT_VERSION} expected)"
            )
        return payload

    # -- submitter side ------------------------------------------------
    def enqueue(
        self,
        task: ShardTask,
        key: str,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> bool:
        """Publish one task (idempotent; returns False when redundant).

        A task whose result is already in ``results/`` is never queued;
        a key already pending or leased is left alone; a stale failure
        marker from a previous run is cleared so the new submission gets
        a fresh retry budget.

        Every transition is race-free: the stale failure marker is
        removed EAFP-style (unlink, tolerate absence), and the pending
        file is installed with ``os.link`` from a complete temp file —
        an atomic create-if-absent.  The old exists-then-write sequence
        had a window in which a racing submitter could clobber a
        requeued payload with ``attempts`` reset to 0, silently handing
        a poisoned shard an unbounded retry budget.  The leased-key
        check stays a bare probe with no act on the probed path: if the
        lease resolves between probe and publish, the worst case is a
        harmless duplicate task whose claimer finds the
        content-addressed result already present and skips.
        """
        self._ensure()
        if self.result(key) is not None:
            return False
        try:
            (self.failed_dir / f"{key}.err").unlink()
        except OSError:
            pass
        if (self.claims_dir / f"{key}.task").exists():
            return False  # leased right now; the claim holder owns it
        target = self.tasks_dir / f"{key}.task"
        tmp = target.with_name(
            f".{target.name}.{os.getpid()}-{threading.get_ident()}.tmp"
        )
        with open(tmp, "wb") as fh:
            pickle.dump(
                {
                    "version": QUEUE_FORMAT_VERSION,
                    "key": key,
                    "task": task,
                    "attempts": 0,
                    "max_attempts": max_attempts,
                    # Stamped at publish time so the claiming worker can
                    # report queue wait (claim wall minus this; wall
                    # clocks can skew across hosts, so consumers clamp
                    # at zero).
                    "enqueued_wall": obs.system_clock().wall(),
                    # Where the submitter's trace lands, if it traces at
                    # all.  The queue directory already implies a shared
                    # filesystem, so workers started without
                    # REPRO_TRACE_FILE can still join the trace — file
                    # AND id, so worker-local records (reclaim events,
                    # shard-internal table builds) land in the same
                    # trace instead of forking their own.
                    "trace_file": os.environ.get(TRACE_FILE_ENV)
                    if obs.tracing_enabled()
                    else None,
                    "trace_id": obs.current_tracer().trace_id
                    if obs.tracing_enabled()
                    else None,
                },
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        try:
            os.link(tmp, target)
        except FileExistsError:
            return False  # already pending — never clobber its attempts
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        obs.metrics().counter(
            "repro_queue_enqueued_total",
            help="Tasks published to the work queue",
        ).inc()
        return True

    def result(self, key: str) -> list[int] | None:
        """Finished signatures for ``key``, straight from ``results/``."""
        return self.results.get(key)

    def failure(self, key: str) -> str | None:
        """Terminal failure text for ``key``, or None."""
        try:
            return (self.failed_dir / f"{key}.err").read_text()
        except OSError:
            return None

    # -- worker side ---------------------------------------------------
    def claim(self, worker: str) -> Lease | None:
        """Atomically lease the first pending task (None when drained)."""
        self._ensure()
        for path in sorted(self.tasks_dir.glob("*.task")):
            target = self.claims_dir / path.name
            try:
                # Freshen BEFORE the rename: rename preserves mtime, so
                # a task that sat pending longer than the lease timeout
                # would otherwise be born already-expired and stolen by
                # a scavenger before we finish the handshake.
                os.utime(path)
                os.rename(path, target)
            except OSError:
                continue  # another claimer won this one
            key = path.name[: -len(".task")]
            try:
                payload = self._read(target)
            except (AnalysisError, pickle.UnpicklingError, EOFError,
                    OSError, AttributeError, ImportError, IndexError) as exc:
                self._park(key, f"unreadable task payload: {exc}")
                try:
                    target.unlink()
                except OSError:
                    pass
                continue
            try:
                os.utime(target)  # lease starts now, not at enqueue time
            except OSError:
                continue  # a scavenger stole the claim mid-handshake
            return Lease(key=key, payload=payload, path=target, worker=worker)
        return None

    def heartbeat(self, lease: Lease) -> None:
        os.utime(lease.path)

    def complete(self, lease: Lease, signatures: list[int]) -> None:
        self.results.put(lease.key, signatures)
        try:
            lease.path.unlink()
        except OSError:
            pass  # lease was reclaimed meanwhile; the result still counts

    def fail(self, lease: Lease, error: str) -> bool:
        """Requeue a failed attempt; park it once the budget is spent.

        Returns True when the task was requeued, False when it went to
        ``failed/`` terminally.
        """
        requeued = self._retry_or_park(lease.key, lease.payload, error)
        try:
            lease.path.unlink()
        except OSError:
            pass
        return requeued

    # -- lease scavenging (any process may run this) -------------------
    def reclaim_expired(
        self, lease_timeout: float, now: float | None = None
    ) -> tuple[list[str], list[str]]:
        """Requeue claims whose heartbeat went stale; park the hopeless.

        Deterministic: a claim is reclaimed exactly when ``now - mtime >
        lease_timeout``, attempts increment by one per reclaim, and the
        task is parked the moment attempts reach its budget.  Returns
        ``(requeued_keys, failed_keys)``.
        """
        if lease_timeout <= 0:
            raise AnalysisError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        self._ensure()
        now = time.time() if now is None else now
        requeued: list[str] = []
        failed: list[str] = []
        for path in sorted(self.claims_dir.glob("*.task")):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # completed/reclaimed under us
            if age <= lease_timeout:
                continue
            key = path.name[: -len(".task")]
            # Exactly one scavenger wins the reclaim, by the same
            # atomic-rename trick as claim(): move the expired claim to
            # a private name first.  A loser (the claim vanished under
            # us — reclaimed by a peer, or completed by a stale worker)
            # just moves on; without this, concurrent scavengers would
            # double-count attempts or mistake each other's cleanup for
            # a corrupt task and park a healthy shard.
            outcome = self._reclaim_one(
                path, key,
                f"lease expired after {age:.1f}s (worker presumed dead "
                f"mid-shard)",
            )
            if outcome is True:
                requeued.append(key)
            elif outcome is False:
                failed.append(key)
        # A scavenger can itself die between winning the private rename
        # and requeueing the payload, stranding the only copy of the
        # task in a dotted .reclaim file nothing else scans.  Recover
        # such orphans by age with the same steal-by-rename protocol.
        for path in sorted(self.claims_dir.glob(".*.reclaim")):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age <= lease_timeout:
                continue
            key = path.name[1:].split(".", 1)[0]
            outcome = self._reclaim_one(
                path, key,
                f"reclaim orphaned after {age:.1f}s (scavenger presumed "
                f"dead mid-reclaim)",
            )
            if outcome is True:
                requeued.append(key)
            elif outcome is False:
                failed.append(key)
        return requeued, failed

    def _reclaim_one(
        self, path: Path, key: str, error: str
    ) -> bool | None:
        """Steal one expired claim/orphan and requeue or park it.

        Exactly one scavenger wins, by the same atomic-rename trick as
        :meth:`claim`: the file moves to a private name first.  A loser
        (the file vanished under us — reclaimed by a peer, or completed
        by a stale worker) returns None; without this, concurrent
        scavengers would double-count attempts or mistake each other's
        cleanup for a corrupt task and park a healthy shard.  Returns
        True when requeued, False when parked terminally.
        """
        private = self.claims_dir / (
            f".{key}.{os.getpid()}-{threading.get_ident()}.reclaim"
        )
        try:
            os.rename(path, private)
        except OSError:
            return None
        obs.event("lease_reclaimed", key=key, reason=_short(error))
        obs.metrics().counter(
            "repro_queue_reclaims_total",
            help="Expired or orphaned leases stolen back by a scavenger",
        ).inc()
        # Freshen the private file so the orphan-recovery sweep above
        # only steals it back after a full lease of real abandonment
        # (rename preserves the stale mtime that got us here).
        try:
            os.utime(private)
        except OSError:
            pass
        try:
            payload = self._read(private)
        except (AnalysisError, pickle.UnpicklingError, EOFError,
                OSError, AttributeError, ImportError, IndexError) as exc:
            self._park(key, f"unreadable claimed payload: {exc}")
            outcome = False
        else:
            outcome = self._retry_or_park(key, payload, error)
        try:
            private.unlink()
        except OSError:
            pass
        return outcome

    def _retry_or_park(
        self, key: str, payload: dict[str, Any], error: str
    ) -> bool:
        attempts = payload["attempts"] + 1
        if attempts >= payload.get("max_attempts", DEFAULT_MAX_ATTEMPTS):
            self._park(key, f"attempt {attempts}: {error}")
            return False
        self._write(
            self.tasks_dir / f"{key}.task", {**payload, "attempts": attempts}
        )
        obs.event(
            "task_requeued",
            key=key,
            attempts=attempts,
            reason=_short(error),
        )
        obs.metrics().counter(
            "repro_queue_requeues_total",
            help="Tasks returned to the queue after a failed attempt",
        ).inc()
        return True

    def _park(self, key: str, error: str) -> None:
        self._ensure()
        tmp = self.failed_dir / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(error)
        os.replace(tmp, self.failed_dir / f"{key}.err")
        obs.event("shard_parked", key=key, error=_short(error))
        obs.metrics().counter(
            "repro_queue_parked_total",
            help="Tasks parked terminally after exhausting retries",
        ).inc()

    # -- inspection (the `repro queue` subcommand) ---------------------
    def pending_keys(self) -> list[str]:
        if not self.tasks_dir.is_dir():
            return []
        return sorted(
            p.name[: -len(".task")] for p in self.tasks_dir.glob("*.task")
        )

    def leased_keys(self) -> list[str]:
        if not self.claims_dir.is_dir():
            return []
        return sorted(
            p.name[: -len(".task")] for p in self.claims_dir.glob("*.task")
        )

    def failed_keys(self) -> list[str]:
        if not self.failed_dir.is_dir():
            return []
        return sorted(
            p.name[: -len(".err")] for p in self.failed_dir.glob("*.err")
        )

    def stats(self) -> dict[str, int]:
        return {
            "pending": len(self.pending_keys()),
            "leased": len(self.leased_keys()),
            "results": len(self.results.entries()),
            "failed": len(self.failed_keys()),
        }

    def detailed_stats(self, now: float | None = None) -> dict[str, Any]:
        """Live queue introspection for ``repro queue stats``.

        Per pending task: retry attempts and age since publish; per
        lease: heartbeat age (how long since the holder last proved it
        was alive); per failure: the parked error text.  Every read is
        EAFP — tasks claimed or completed mid-scan just drop out of the
        report.
        """
        self._ensure()
        now = time.time() if now is None else now
        pending: list[dict[str, object]] = []
        for path in sorted(self.tasks_dir.glob("*.task")):
            key = path.name[: -len(".task")]
            entry: dict[str, object] = {"key": key}
            try:
                payload = self._read(path)
            except (AnalysisError, pickle.UnpicklingError, EOFError,
                    OSError, AttributeError, ImportError, IndexError):
                entry["attempts"] = None
            else:
                entry["attempts"] = payload["attempts"]
                entry["max_attempts"] = payload.get(
                    "max_attempts", DEFAULT_MAX_ATTEMPTS
                )
                enqueued = payload.get("enqueued_wall")
                if enqueued is not None:
                    entry["age_s"] = round(max(0.0, now - enqueued), 3)
            pending.append(entry)
        leases: list[dict[str, object]] = []
        for path in sorted(self.claims_dir.glob("*.task")):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # resolved under us
            leases.append(
                {
                    "key": path.name[: -len(".task")],
                    "heartbeat_age_s": round(max(0.0, age), 3),
                }
            )
        failed = [
            {"key": key, "error": self.failure(key)}
            for key in self.failed_keys()
        ]
        return {
            "pending": pending,
            "leased": leases,
            "failed": failed,
            "results": len(self.results.entries()),
        }

    def clear(self) -> int:
        """Drop every task, claim, failure marker, and result."""
        removed = 0
        for d, glob in (
            (self.tasks_dir, "*.task"),
            (self.claims_dir, "*.task"),
            (self.failed_dir, "*.err"),
        ):
            if not d.is_dir():
                continue
            for path in (
                list(d.glob(glob))
                + list(d.glob(".*.tmp"))
                + list(d.glob(".*.reclaim"))
            ):
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
        return removed + self.results.clear()


@dataclass
class QueueWorker:
    """The drain loop behind ``repro worker --queue DIR``.

    Claims tasks one at a time, heartbeats the claim from a background
    thread while the shard builds (so a long build never looks dead),
    writes the result through the queue's content-addressed store, and
    scavenges expired leases of *other* workers on every pass.  A build
    that raises is reported to the queue (requeue or park) and the
    worker keeps serving — one poisoned shard never takes a worker down.
    """

    queue: WorkQueue
    worker_id: str = field(default_factory=default_worker_id)
    poll_interval: float = 0.1
    lease_timeout: float = 30.0
    heartbeat_interval: float | None = None

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise AnalysisError(
                f"poll_interval must be > 0, got {self.poll_interval}"
            )
        if self.lease_timeout <= 0:
            raise AnalysisError(
                f"lease_timeout must be > 0, got {self.lease_timeout}"
            )
        if self.heartbeat_interval is None:
            self.heartbeat_interval = max(
                0.01, min(1.0, self.lease_timeout / 4.0)
            )
        raw = os.environ.get(CRASH_ENV, "")
        self._crash_after = int(raw) if raw else 0

    def serve(
        self,
        max_tasks: int | None = None,
        idle_exit: float | None = None,
    ) -> dict[str, int]:
        """Drain the queue; returns ``{"built", "skipped", "failed"}``.

        ``max_tasks`` bounds the number of shards built; ``idle_exit``
        stops the loop after that many seconds without a claimable task
        (None: serve forever).
        """
        stats = {"built": 0, "skipped": 0, "failed": 0}
        claims = 0
        idle_since = time.monotonic()
        # Idle polls back off geometrically (capped); claiming a task
        # resets the schedule, so a busy queue is polled at
        # poll_interval and an idle mount is not hammered.
        backoff = Backoff(self.poll_interval, cap=1.0)
        while True:
            self.queue.reclaim_expired(self.lease_timeout)
            lease = self.queue.claim(self.worker_id)
            if lease is None:
                if (
                    idle_exit is not None
                    and time.monotonic() - idle_since >= idle_exit
                ):
                    return stats
                _sleep(backoff.next())
                continue
            backoff.reset()
            idle_since = time.monotonic()
            claims += 1
            if self._crash_after and claims >= self._crash_after:
                os._exit(42)  # test hook: die mid-shard, lease held
            if self.queue.result(lease.key) is not None:
                # A duplicate of an already-finished shard (reclaim race
                # or resubmission): the content-addressed result stands.
                stats["skipped"] += 1
                self.queue.complete(lease, self.queue.result(lease.key))
                continue
            self._adopt_trace(lease)
            self._report_queue_wait(lease)
            try:
                _index, signatures = self._build(lease)
            except Exception as exc:  # noqa: BLE001 - reported to the queue
                stats["failed"] += 1
                self.queue.fail(lease, f"{type(exc).__name__}: {exc}")
                continue
            self.queue.complete(lease, signatures)
            stats["built"] += 1
            obs.metrics().counter(
                "repro_queue_completed_total",
                help="Shards built to completion by queue workers",
            ).inc()
            if max_tasks is not None and stats["built"] >= max_tasks:
                return stats

    def _adopt_trace(self, lease: Lease) -> None:
        """Join the submitter's trace file when this process has none.

        Workers usually start before — and independently of — a traced
        run, so ``REPRO_TRACE_FILE`` is not in their environment; the
        task payload carries the submitter's trace path instead.  First
        sighting wins: the worker activates one appending tracer and
        keeps it for its lifetime.  The payload's trace id is adopted
        too, so worker-local roots (reclaim events, shard-internal
        table builds) join the submitter's trace rather than forking
        their own; the worker id namespaces those root span ids so they
        never collide with the submitter's ``1, 2, ...`` sequence.
        """
        trace_file = lease.payload.get("trace_file")
        if not trace_file or obs.tracing_enabled():
            return
        trace_id = lease.payload.get("trace_id")
        obs.activate(
            obs.Tracer(
                obs.JsonlTraceWriter(str(trace_file)),
                trace_id=str(trace_id) if trace_id else None,
                root_prefix=f"{self.worker_id}-",
            )
        )

    def _report_queue_wait(self, lease: Lease) -> None:
        """Record how long the claimed task sat published-but-unbuilt.

        Measured as claim wall time minus the submitter's enqueue stamp
        — the one latency no single process observes end to end — and
        clamped at zero because wall clocks can skew across hosts.  The
        span stitches into the submitter's trace as a sibling of the
        shard build (``<parent>.q<index>``).
        """
        enqueued = lease.payload.get("enqueued_wall")
        if enqueued is None:
            return  # payload published before the stamp existed
        wait = max(0.0, obs.system_clock().wall() - float(enqueued))
        obs.metrics().histogram(
            "repro_queue_wait_seconds",
            help="Enqueue-to-claim latency of queue shards",
        ).observe(wait)
        trace = getattr(lease.task, "trace", None)
        if trace is not None:
            obs.current_tracer().record(
                "queue_wait",
                wait,
                parent=trace,
                span_id=f"{trace[1]}.q{lease.task.shard_index}",
                key=lease.key[:12],
                attempts=lease.attempts,
                worker=lease.worker,
            )

    def _build(self, lease: Lease) -> tuple[int, list[int]]:
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(self.heartbeat_interval):
                try:
                    self.queue.heartbeat(lease)
                except OSError:
                    return  # lease reclaimed; the build result still counts

        thread = threading.Thread(target=beat, daemon=True)
        thread.start()
        try:
            return run_shard(lease.task)
        finally:
            stop.set()
            thread.join()
