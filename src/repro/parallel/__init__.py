"""Sharded parallel execution of detection-table construction.

Building the fault × vector detection table dominates every analysis in
this library and is embarrassingly parallel over faults.  This package
turns that observation into a subsystem:

``plan``
    :class:`ShardPlan` — balanced, deterministic, jobs-independent
    splits of a fault list into contiguous shards.
``worker``
    :class:`ShardTask` / :func:`run_shard` — the picklable unit of work
    executed in worker processes, delegating to the base backend's own
    build path.
``cache``
    :class:`ShardCache` — persistent on-disk shard results, content-
    addressed by circuit structure × backend configuration × fault
    slice, written atomically.
``executors``
    :class:`ShardExecutor` protocol and its three substrates —
    :class:`InlineExecutor` (in-process), :class:`PoolExecutor` (local
    process pool), :class:`QueueExecutor` (shared-directory work queue
    drained by independent ``repro worker`` processes on any host).
``workqueue``
    :class:`WorkQueue` / :class:`QueueWorker` — the filesystem queue
    behind the queue executor: atomic claim-by-rename leases, heartbeat
    files, requeue on lease expiry, bounded retries, results through
    the content-addressed shard cache.
``backend``
    :class:`ParallelBackend` — a
    :class:`~repro.faultsim.backends.DetectionBackend` wrapping any base
    engine; merges per-shard results into a table bit-for-bit identical
    to the single-process build, whichever executor ran the shards.

Entry points: ``--jobs N`` / ``--executor {inline,pool,queue}`` on the
CLI, ``REPRO_JOBS`` / ``REPRO_EXECUTOR`` / ``REPRO_QUEUE_DIR`` in the
environment, ``FaultUniverse(circuit, jobs=N, executor=...)`` in code,
and ``repro worker --queue DIR`` to serve a queue.
"""

from repro.parallel.backend import (
    ParallelBackend,
    maybe_parallel,
    resolve_jobs,
)
from repro.parallel.executors import (
    EXECUTOR_NAMES,
    InlineExecutor,
    PoolExecutor,
    QueueExecutor,
    ShardExecutor,
    make_executor,
    resolve_executor,
    resolve_queue_dir,
)
from repro.parallel.cache import (
    ShardCache,
    backend_cache_key,
    cache_stats,
    circuit_digest,
    default_cache_dir,
    reset_cache_stats,
    shard_key,
)
from repro.parallel.plan import DEFAULT_NUM_SHARDS, Shard, ShardPlan
from repro.parallel.worker import ShardTask, run_shard
from repro.parallel.workqueue import (
    DEFAULT_MAX_ATTEMPTS,
    Lease,
    QueueWorker,
    WorkQueue,
)

__all__ = [
    "ParallelBackend",
    "maybe_parallel",
    "resolve_jobs",
    "EXECUTOR_NAMES",
    "InlineExecutor",
    "PoolExecutor",
    "QueueExecutor",
    "ShardExecutor",
    "make_executor",
    "resolve_executor",
    "resolve_queue_dir",
    "DEFAULT_MAX_ATTEMPTS",
    "Lease",
    "QueueWorker",
    "WorkQueue",
    "ShardCache",
    "backend_cache_key",
    "cache_stats",
    "circuit_digest",
    "default_cache_dir",
    "reset_cache_stats",
    "shard_key",
    "DEFAULT_NUM_SHARDS",
    "Shard",
    "ShardPlan",
    "ShardTask",
    "run_shard",
]
