"""Sharded parallel execution of detection-table construction.

Building the fault × vector detection table dominates every analysis in
this library and is embarrassingly parallel over faults.  This package
turns that observation into a subsystem:

``plan``
    :class:`ShardPlan` — balanced, deterministic, jobs-independent
    splits of a fault list into contiguous shards.
``worker``
    :class:`ShardTask` / :func:`run_shard` — the picklable unit of work
    executed in worker processes, delegating to the base backend's own
    build path.
``cache``
    :class:`ShardCache` — persistent on-disk shard results, content-
    addressed by circuit structure × backend configuration × fault
    slice, written atomically.
``executors``
    :class:`ShardExecutor` protocol and its four substrates —
    :class:`InlineExecutor` (in-process), :class:`PoolExecutor` (local
    process pool), :class:`QueueExecutor` (shared-directory work queue
    drained by independent ``repro worker`` processes on any host), and
    :class:`TcpExecutor` (network broker, no shared filesystem).
``workqueue``
    :class:`WorkQueue` / :class:`QueueWorker` — the filesystem queue
    behind the queue executor: atomic claim-by-rename leases, heartbeat
    files, requeue on lease expiry, bounded retries, results through
    the content-addressed shard cache.
``netqueue``
    :class:`Broker` / :class:`TcpExecutor` / :class:`TcpWorker` — the
    stdlib TCP transport behind ``--executor tcp``: an asyncio broker
    (``repro broker``) pushes shard builds to blocking workers (no
    polling on the hot path), leases are heartbeated over the
    connection, and deterministic work stealing duplicates stale
    in-flight shards to idle workers — safe because shard results are
    content-addressed, so double-completion is a cache hit.
``backoff``
    :class:`Backoff` — the deterministic bounded exponential schedule
    idle wait loops sleep on (reset on progress), replacing
    fixed-interval polling.
``backend``
    :class:`ParallelBackend` — a
    :class:`~repro.faultsim.backends.DetectionBackend` wrapping any base
    engine; merges per-shard results into a table bit-for-bit identical
    to the single-process build, whichever executor ran the shards.

Entry points: ``--jobs N`` / ``--executor {inline,pool,queue,tcp}`` on
the CLI, ``REPRO_JOBS`` / ``REPRO_EXECUTOR`` / ``REPRO_QUEUE_DIR`` /
``REPRO_BROKER`` in the environment, ``FaultUniverse(circuit, jobs=N,
executor=...)`` in code, ``repro worker --queue DIR`` /
``repro worker --broker HOST:PORT`` to serve builds, and
``repro broker`` to run the TCP broker.
"""

from repro.parallel.backend import (
    ParallelBackend,
    maybe_parallel,
    resolve_jobs,
)
from repro.parallel.backoff import Backoff
from repro.parallel.executors import (
    EXECUTOR_NAMES,
    InlineExecutor,
    PoolExecutor,
    QueueExecutor,
    ShardExecutor,
    make_executor,
    resolve_executor,
    resolve_queue_dir,
    resolve_wait_timeout,
)
from repro.parallel.cache import (
    ShardCache,
    backend_cache_key,
    cache_stats,
    circuit_digest,
    default_cache_dir,
    reset_cache_stats,
    shard_key,
)
from repro.parallel.netqueue import (
    BROKER_ENV,
    STEAL_DELAY_ENV,
    BackgroundBroker,
    Broker,
    TcpExecutor,
    TcpWorker,
    broker_clear,
    broker_stats,
    resolve_broker,
    run_broker,
)
from repro.parallel.plan import DEFAULT_NUM_SHARDS, Shard, ShardPlan
from repro.parallel.worker import ShardTask, run_shard
from repro.parallel.workqueue import (
    DEFAULT_MAX_ATTEMPTS,
    Lease,
    QueueWorker,
    WorkQueue,
)

__all__ = [
    "ParallelBackend",
    "maybe_parallel",
    "resolve_jobs",
    "EXECUTOR_NAMES",
    "Backoff",
    "InlineExecutor",
    "PoolExecutor",
    "QueueExecutor",
    "ShardExecutor",
    "make_executor",
    "resolve_executor",
    "resolve_queue_dir",
    "resolve_wait_timeout",
    "DEFAULT_MAX_ATTEMPTS",
    "Lease",
    "QueueWorker",
    "WorkQueue",
    "BROKER_ENV",
    "STEAL_DELAY_ENV",
    "BackgroundBroker",
    "Broker",
    "TcpExecutor",
    "TcpWorker",
    "broker_clear",
    "broker_stats",
    "resolve_broker",
    "run_broker",
    "ShardCache",
    "backend_cache_key",
    "cache_stats",
    "circuit_digest",
    "default_cache_dir",
    "reset_cache_stats",
    "shard_key",
    "DEFAULT_NUM_SHARDS",
    "Shard",
    "ShardPlan",
    "ShardTask",
    "run_shard",
]
