"""Sharded parallel execution of detection-table construction.

Building the fault × vector detection table dominates every analysis in
this library and is embarrassingly parallel over faults.  This package
turns that observation into a subsystem:

``plan``
    :class:`ShardPlan` — balanced, deterministic, jobs-independent
    splits of a fault list into contiguous shards.
``worker``
    :class:`ShardTask` / :func:`run_shard` — the picklable unit of work
    executed in worker processes, delegating to the base backend's own
    build path.
``cache``
    :class:`ShardCache` — persistent on-disk shard results, content-
    addressed by circuit structure × backend configuration × fault
    slice, written atomically.
``backend``
    :class:`ParallelBackend` — a
    :class:`~repro.faultsim.backends.DetectionBackend` wrapping any base
    engine; merges per-shard results into a table bit-for-bit identical
    to the single-process build.

Entry points: ``--jobs N`` on the CLI, ``REPRO_JOBS`` in the
environment, ``FaultUniverse(circuit, jobs=N)`` in code.
"""

from repro.parallel.backend import (
    ParallelBackend,
    maybe_parallel,
    resolve_jobs,
)
from repro.parallel.cache import (
    ShardCache,
    backend_cache_key,
    cache_stats,
    circuit_digest,
    default_cache_dir,
    reset_cache_stats,
    shard_key,
)
from repro.parallel.plan import DEFAULT_NUM_SHARDS, Shard, ShardPlan
from repro.parallel.worker import ShardTask, run_shard

__all__ = [
    "ParallelBackend",
    "maybe_parallel",
    "resolve_jobs",
    "ShardCache",
    "backend_cache_key",
    "cache_stats",
    "circuit_digest",
    "default_cache_dir",
    "reset_cache_stats",
    "shard_key",
    "DEFAULT_NUM_SHARDS",
    "Shard",
    "ShardPlan",
    "ShardTask",
    "run_shard",
]
