"""Deterministic bounded exponential backoff for idle wait loops.

The queue submitter and the queue worker both wait on external progress
— results appearing, tasks becoming claimable — and used to poll at a
fixed 50–100ms interval, hammering the shared mount exactly when it has
nothing to say.  :class:`Backoff` replaces those constant sleeps with a
deterministic geometric schedule: each idle pass sleeps the current
delay and doubles it up to a cap, and *any* progress resets the
schedule to its initial delay.  No jitter on purpose — the sequence
``initial, initial*factor, ..., cap, cap, ...`` is exactly
reproducible, so tests pin it and traces stay comparable across runs.
"""

from __future__ import annotations

from repro.errors import AnalysisError

__all__ = ["Backoff"]


class Backoff:
    """A resettable geometric delay schedule (mutable, non-hashable).

    Executors stay small *frozen* dataclasses (they are embedded in
    backend equality and cache keys), so a :class:`Backoff` is never a
    field of one — wait loops construct a local instance per submit /
    serve call instead.
    """

    def __init__(
        self,
        initial: float,
        cap: float = 1.0,
        factor: float = 2.0,
    ) -> None:
        if initial <= 0:
            raise AnalysisError(
                f"backoff initial delay must be > 0, got {initial}"
            )
        if cap < initial:
            raise AnalysisError(
                f"backoff cap must be >= the initial delay "
                f"({initial}), got {cap}"
            )
        if factor < 1.0:
            raise AnalysisError(
                f"backoff factor must be >= 1, got {factor}"
            )
        self.initial = initial
        self.cap = cap
        self.factor = factor
        self._delay = initial

    def next(self) -> float:
        """The delay to sleep *now*; advances the schedule."""
        delay = self._delay
        self._delay = min(self._delay * self.factor, self.cap)
        return delay

    def peek(self) -> float:
        """The delay :meth:`next` would return, without advancing."""
        return self._delay

    def reset(self) -> None:
        """Progress happened: start over from the initial delay."""
        self._delay = self.initial

    def __repr__(self) -> str:
        return (
            f"Backoff(initial={self.initial}, cap={self.cap}, "
            f"factor={self.factor}, next={self._delay})"
        )
