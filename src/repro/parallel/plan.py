"""Shard plans: balanced, deterministic splits of a fault list.

Detection-table construction is embarrassingly parallel over faults:
``T(f)`` depends only on the circuit, the vector universe, and ``f``
itself, never on any other fault in the table.  A :class:`ShardPlan`
exploits that by cutting the ordered fault list into contiguous,
near-equal slices.  Contiguity is what makes the parallel build
*bit-identical* to the single-process one — the merge step is plain
concatenation in shard order, so fault order (and therefore signature
order, witness indices, and every downstream record) is preserved
exactly.

The plan is a pure function of ``(num_shards, len(faults))`` — it never
consults the worker count — so the same fault list always cuts into the
same slices regardless of how many processes execute them.  That
determinism is what lets the persistent shard cache
(:mod:`repro.parallel.cache`) reuse shard results across runs with
different ``--jobs`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TypeVar

from repro.errors import AnalysisError

_T = TypeVar("_T")

#: Default shard count of :class:`~repro.parallel.backend.ParallelBackend`.
#: Deliberately independent of ``jobs`` (see the module docstring): a
#: ``jobs=2`` and a ``jobs=4`` run cut identical shards and therefore
#: share cache entries.  Eight shards keep all cores of typical desktop
#: machines busy while staying coarse enough that per-shard process and
#: pickling overhead is amortized.
DEFAULT_NUM_SHARDS = 8


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the fault list (``[start, stop)``)."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise AnalysisError(f"shard index must be >= 0, got {self.index}")
        if not 0 <= self.start < self.stop:
            raise AnalysisError(
                f"shard bounds must satisfy 0 <= start < stop, got "
                f"[{self.start}, {self.stop})"
            )

    def __len__(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic balanced split into at most ``num_shards`` slices.

    Sizes differ by at most one (the first ``len(items) % num_shards``
    shards take the extra element); empty shards are never emitted, so a
    list shorter than ``num_shards`` yields one single-element shard per
    item.
    """

    num_shards: int = DEFAULT_NUM_SHARDS

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise AnalysisError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )

    def shards(self, num_items: int) -> list[Shard]:
        """Shard records covering ``range(num_items)`` in order."""
        if num_items < 0:
            raise AnalysisError(f"num_items must be >= 0, got {num_items}")
        if num_items == 0:
            return []
        parts = min(self.num_shards, num_items)
        quotient, remainder = divmod(num_items, parts)
        out: list[Shard] = []
        start = 0
        for index in range(parts):
            size = quotient + (1 if index < remainder else 0)
            out.append(Shard(index, start, start + size))
            start += size
        return out

    def split(self, items: Sequence[_T]) -> list[Sequence[_T]]:
        """The item slices behind :meth:`shards`, in shard order."""
        return [items[s.start : s.stop] for s in self.shards(len(items))]
