"""The :class:`ParallelBackend`: sharded table builds on any executor.

Wraps any base :class:`~repro.faultsim.backends.DetectionBackend`
(exhaustive / sampled / packed / serial) and satisfies the same
protocol, so every consumer — :class:`~repro.faults.universe.FaultUniverse`,
the experiment caches, the CLI — composes with it unchanged.  A build

1. cuts the fault list with a :class:`~repro.parallel.plan.ShardPlan`
   (deterministic, independent of the worker count),
2. satisfies shards from the persistent
   :class:`~repro.parallel.cache.ShardCache` where possible,
3. hands the remaining :class:`~repro.parallel.worker.ShardTask` s to a
   pluggable :class:`~repro.parallel.executors.ShardExecutor` — inline
   (this process), pool (a local ``ProcessPoolExecutor``), or queue (a
   shared-directory work queue drained by ``repro worker`` processes on
   any host),
4. concatenates the per-shard signature lists in shard order and applies
   ``drop_undetectable`` once — producing a table *bit-for-bit
   identical* to the base backend's single-process build (the parallel
   differential suite enforces this for every base engine × executor).

Fault-free line signatures are computed once in the parent and shipped
to every worker, so the sharded build never repeats the base
simulation.  ``jobs=`` stays as sugar: without an explicit executor,
``jobs=1`` runs inline (no pool, no pickling) and ``jobs>1`` selects a
pool — exactly the pre-protocol behavior, which is also the fallback
the CLI uses when ``--executor``/``--jobs`` are absent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro import obs
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.faults.bridging import BridgingFault, four_way_bridging_faults
from repro.faults.stuck_at import StuckAtFault, collapsed_stuck_at_faults
from repro.faultsim.backends import DetectionBackend
from repro.faultsim.detection import DetectionTable
from repro.faultsim.sampling import VectorUniverse
from repro.parallel.cache import ShardCache, shard_key
from repro.parallel.executors import (
    InlineExecutor,
    PoolExecutor,
    ShardExecutor,
)
from repro.parallel.plan import DEFAULT_NUM_SHARDS, ShardPlan
from repro.parallel.worker import ShardTask


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: the explicit value, else ``REPRO_JOBS``, else 1.

    Malformed or non-positive values raise :class:`AnalysisError` (the
    CLI's friendly-exit path), never fall back silently.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS")
        if raw is None or raw == "":
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise AnalysisError(
                f"REPRO_JOBS must be a positive integer, got {raw!r}"
            ) from None
    if jobs < 1:
        raise AnalysisError(f"jobs must be >= 1, got {jobs}")
    return jobs


def maybe_parallel(
    backend: DetectionBackend,
    jobs: int,
    cache_dir: str | None = None,
    use_cache: bool = True,
    executor: ShardExecutor | None = None,
) -> DetectionBackend:
    """Wrap ``backend`` for ``jobs``/``executor``; identity when neither
    asks for anything (``jobs=1``, no executor).

    Already-parallel backends pass through (their own configuration
    wins), so layered configuration — explicit backend plus
    ``REPRO_JOBS``/``REPRO_EXECUTOR`` — never nests pools.  Backends
    that parallelize *internally* (the adaptive controller shards each
    growth round itself) expose ``with_execution``; the worker count and
    executor are injected there instead of wrapping — wrapping would
    re-run the whole controller once per fault shard.
    """
    if isinstance(backend, ParallelBackend):
        return backend
    if executor is None and jobs <= 1:
        return backend
    with_execution = getattr(backend, "with_execution", None)
    if with_execution is not None:
        return with_execution(jobs=jobs, executor=executor)
    return ParallelBackend(
        base=backend,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        executor=executor,
    )


@dataclass(frozen=True)
class ParallelBackend:
    """Sharded build of a base backend's tables on a pluggable executor.

    Parameters
    ----------
    base:
        Any non-parallel :class:`DetectionBackend`; fixes the vector
        universe, the engine, and the table type of the result.
    jobs:
        Executor-selection sugar when ``executor`` is None: 1 runs
        inline, >1 on a local pool of that many processes.
    shards:
        Shard count (default :data:`DEFAULT_NUM_SHARDS`).  Deliberately
        *not* defaulted from ``jobs``: a jobs-independent layout means
        runs with different ``--jobs`` (or different executors) share
        cache entries.
    cache_dir:
        Shard-cache directory override (default: ``REPRO_CACHE_DIR`` /
        the user cache dir, resolved at build time).
    use_cache:
        Disable the persistent cache entirely (benchmarks time real
        construction with this).
    executor:
        Explicit :class:`~repro.parallel.executors.ShardExecutor`
        (inline / pool / queue); overrides the ``jobs`` sugar.
    """

    base: DetectionBackend
    jobs: int = 2
    shards: int | None = None
    cache_dir: str | None = None
    use_cache: bool = True
    executor: ShardExecutor | None = None
    name: str = "parallel"

    def __post_init__(self) -> None:
        if isinstance(self.base, ParallelBackend):
            raise AnalysisError(
                "parallel backends do not nest; wrap the innermost "
                "engine once"
            )
        if getattr(self.base, "with_execution", None) is not None:
            raise AnalysisError(
                f"the {getattr(self.base, 'name', '?')} backend "
                f"parallelizes internally; pass jobs=/executor= to it "
                f"(or use maybe_parallel) instead of wrapping it"
            )
        if self.jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {self.jobs}")
        if self.shards is not None and self.shards < 1:
            raise AnalysisError(
                f"shards must be >= 1, got {self.shards}"
            )
        if self.executor is not None and not isinstance(
            self.executor, ShardExecutor
        ):
            raise AnalysisError(
                f"executor must implement ShardExecutor "
                f"(submit/describe), got {type(self.executor).__name__}"
            )

    # -- executor selection --------------------------------------------
    @property
    def resolved_executor(self) -> ShardExecutor:
        """The substrate this backend builds on (``jobs`` sugar applied)."""
        if self.executor is not None:
            return self.executor
        if self.jobs == 1:
            return InlineExecutor()
        return PoolExecutor(jobs=self.jobs)

    # -- protocol delegation -------------------------------------------
    @property
    def needs_base_signatures(self) -> bool:
        return getattr(self.base, "needs_base_signatures", True)

    def universe_for(self, circuit: Circuit) -> VectorUniverse:
        return self.base.universe_for(circuit)

    def line_signatures(self, circuit: Circuit) -> list[int]:
        return self.base.line_signatures(circuit)

    def build_stuck_at(
        self,
        circuit: Circuit,
        faults: list[StuckAtFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = False,
    ) -> DetectionTable:
        if faults is None:
            faults = collapsed_stuck_at_faults(circuit)
        return self._build(
            circuit, "stuck_at", list(faults), base_signatures,
            drop_undetectable,
        )

    def build_bridging(
        self,
        circuit: Circuit,
        faults: list[BridgingFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = True,
    ) -> DetectionTable:
        if faults is None:
            faults = four_way_bridging_faults(circuit)
        return self._build(
            circuit, "bridging", list(faults), base_signatures,
            drop_undetectable,
        )

    # -- the sharded build ---------------------------------------------
    def _build(
        self,
        circuit: Circuit,
        kind: str,
        faults: list,
        base_signatures: list[int] | None,
        drop_undetectable: bool,
    ) -> DetectionTable:
        executor = self.resolved_executor
        tracer = obs.current_tracer()
        registry = obs.metrics()
        with tracer.span(
            "parallel_build",
            circuit=circuit.name,
            kind=kind,
            faults=len(faults),
            executor=executor.describe(),
        ) as build_span:
            universe = self.base.universe_for(circuit)
            if self.needs_base_signatures and base_signatures is None:
                base_signatures = self.base.line_signatures(circuit)
            shipped = (
                tuple(base_signatures) if base_signatures is not None else None
            )
            plan = ShardPlan(self.shards or DEFAULT_NUM_SHARDS)
            slices = plan.split(faults)
            cache = ShardCache(self.cache_dir) if self.use_cache else None
            results: dict[int, list[int]] = {}
            keys: dict[int, str] = {}
            pending: list[ShardTask] = []
            with tracer.span("cache_lookup", shards=len(slices)):
                for index, shard_faults in enumerate(slices):
                    if cache is not None:
                        key = shard_key(circuit, self.base, kind, shard_faults)
                        keys[index] = key
                        cached = cache.get(key)
                        if cached is not None:
                            results[index] = cached
                            continue
                    pending.append(
                        ShardTask(
                            circuit=circuit,
                            backend=self.base,
                            kind=kind,
                            faults=tuple(shard_faults),
                            base_signatures=shipped,
                            shard_index=index,
                            trace=build_span.remote(),
                        )
                    )
            hits = len(results)
            build_span.set(cache_hits=hits, cache_misses=len(pending))
            registry.counter(
                "repro_shard_cache_lookups_total",
                help="Per-shard cache probes during parallel builds",
                outcome="hit",
            ).inc(hits)
            registry.counter(
                "repro_shard_cache_lookups_total", outcome="miss"
            ).inc(len(pending))
            if pending:
                # Executors may complete out of order (the queue executor
                # collects results as workers finish); reassembly goes by
                # the shard index each outcome carries.
                for index, shard_signatures in executor.submit(pending):
                    results[index] = shard_signatures
                    if cache is not None:
                        cache.put(keys[index], shard_signatures)
            with tracer.span("merge", shards=len(slices)):
                signatures = [
                    sig
                    for index in range(len(slices))
                    for sig in results[index]
                ]
                if drop_undetectable:
                    kept = [
                        (f, s)
                        for f, s in zip(faults, signatures, strict=True)
                        if s
                    ]
                    faults = [f for f, _ in kept]
                    signatures = [s for _, s in kept]
        registry.counter(
            "repro_parallel_builds_total",
            help="Sharded table builds, by kind and executor",
            kind=kind,
            executor=executor.name,
        ).inc()
        if getattr(
            self.base, "builds_packed",
            getattr(self.base, "name", "") == "packed",
        ):
            from repro.faultsim.packed_table import PackedDetectionTable

            return PackedDetectionTable(
                circuit, list(faults), signatures, universe
            )
        return DetectionTable(circuit, list(faults), signatures, universe)
