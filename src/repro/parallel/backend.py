"""The :class:`ParallelBackend`: sharded multiprocessing table builds.

Wraps any base :class:`~repro.faultsim.backends.DetectionBackend`
(exhaustive / sampled / packed / serial) and satisfies the same
protocol, so every consumer — :class:`~repro.faults.universe.FaultUniverse`,
the experiment caches, the CLI — composes with it unchanged.  A build

1. cuts the fault list with a :class:`~repro.parallel.plan.ShardPlan`
   (deterministic, independent of the worker count),
2. satisfies shards from the persistent
   :class:`~repro.parallel.cache.ShardCache` where possible,
3. executes the remaining shards as :func:`~repro.parallel.worker.run_shard`
   tasks on a ``concurrent.futures.ProcessPoolExecutor``,
4. concatenates the per-shard signature lists in shard order and applies
   ``drop_undetectable`` once — producing a table *bit-for-bit
   identical* to the base backend's single-process build (the parallel
   differential suite enforces this for every base engine).

Fault-free line signatures are computed once in the parent and shipped
to every worker, so the sharded build never repeats the base
simulation.  With ``jobs=1`` (or a single shard) everything runs in
process — no pool, no pickling — which is also the fallback the CLI
uses when ``--jobs``/``REPRO_JOBS`` are absent.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.faults.bridging import BridgingFault, four_way_bridging_faults
from repro.faults.stuck_at import StuckAtFault, collapsed_stuck_at_faults
from repro.faultsim.backends import DetectionBackend
from repro.faultsim.detection import DetectionTable
from repro.faultsim.sampling import VectorUniverse
from repro.parallel.cache import ShardCache, shard_key
from repro.parallel.plan import DEFAULT_NUM_SHARDS, ShardPlan
from repro.parallel.worker import ShardTask, run_shard


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: the explicit value, else ``REPRO_JOBS``, else 1.

    Malformed or non-positive values raise :class:`AnalysisError` (the
    CLI's friendly-exit path), never fall back silently.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS")
        if raw is None or raw == "":
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise AnalysisError(
                f"REPRO_JOBS must be a positive integer, got {raw!r}"
            ) from None
    if jobs < 1:
        raise AnalysisError(f"jobs must be >= 1, got {jobs}")
    return jobs


def maybe_parallel(
    backend: DetectionBackend,
    jobs: int,
    cache_dir: str | None = None,
    use_cache: bool = True,
) -> DetectionBackend:
    """Wrap ``backend`` for ``jobs`` workers; identity at ``jobs=1``.

    Already-parallel backends pass through (their own ``jobs`` wins), so
    layered configuration — explicit backend plus ``REPRO_JOBS`` — never
    nests pools.  Backends that parallelize *internally* (the adaptive
    controller shards each growth round itself) expose ``with_jobs``;
    the worker count is injected there instead of wrapping — wrapping
    would re-run the whole controller once per fault shard.
    """
    if jobs <= 1 or isinstance(backend, ParallelBackend):
        return backend
    with_jobs = getattr(backend, "with_jobs", None)
    if with_jobs is not None:
        return with_jobs(jobs)
    return ParallelBackend(
        base=backend, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache
    )


@dataclass(frozen=True)
class ParallelBackend:
    """Sharded multiprocessing wrapper around a base backend.

    Parameters
    ----------
    base:
        Any non-parallel :class:`DetectionBackend`; fixes the vector
        universe, the engine, and the table type of the result.
    jobs:
        Maximum worker processes per build.
    shards:
        Shard count (default :data:`DEFAULT_NUM_SHARDS`).  Deliberately
        *not* defaulted from ``jobs``: a jobs-independent layout means
        runs with different ``--jobs`` share cache entries.
    cache_dir:
        Shard-cache directory override (default: ``REPRO_CACHE_DIR`` /
        the user cache dir, resolved at build time).
    use_cache:
        Disable the persistent cache entirely (benchmarks time real
        construction with this).
    """

    base: DetectionBackend
    jobs: int = 2
    shards: int | None = None
    cache_dir: str | None = None
    use_cache: bool = True
    name: str = "parallel"

    def __post_init__(self) -> None:
        if isinstance(self.base, ParallelBackend):
            raise AnalysisError(
                "parallel backends do not nest; wrap the innermost "
                "engine once"
            )
        if getattr(self.base, "with_jobs", None) is not None:
            raise AnalysisError(
                f"the {getattr(self.base, 'name', '?')} backend "
                f"parallelizes internally; pass jobs= to it (or use "
                f"maybe_parallel) instead of wrapping it"
            )
        if self.jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {self.jobs}")
        if self.shards is not None and self.shards < 1:
            raise AnalysisError(
                f"shards must be >= 1, got {self.shards}"
            )

    # -- protocol delegation -------------------------------------------
    @property
    def needs_base_signatures(self) -> bool:
        return getattr(self.base, "needs_base_signatures", True)

    def universe_for(self, circuit: Circuit) -> VectorUniverse:
        return self.base.universe_for(circuit)

    def line_signatures(self, circuit: Circuit) -> list[int]:
        return self.base.line_signatures(circuit)

    def build_stuck_at(
        self,
        circuit: Circuit,
        faults: list[StuckAtFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = False,
    ) -> DetectionTable:
        if faults is None:
            faults = collapsed_stuck_at_faults(circuit)
        return self._build(
            circuit, "stuck_at", list(faults), base_signatures,
            drop_undetectable,
        )

    def build_bridging(
        self,
        circuit: Circuit,
        faults: list[BridgingFault] | None = None,
        base_signatures: list[int] | None = None,
        drop_undetectable: bool = True,
    ) -> DetectionTable:
        if faults is None:
            faults = four_way_bridging_faults(circuit)
        return self._build(
            circuit, "bridging", list(faults), base_signatures,
            drop_undetectable,
        )

    # -- the sharded build ---------------------------------------------
    def _build(
        self,
        circuit: Circuit,
        kind: str,
        faults: list,
        base_signatures: list[int] | None,
        drop_undetectable: bool,
    ) -> DetectionTable:
        universe = self.base.universe_for(circuit)
        if self.needs_base_signatures and base_signatures is None:
            base_signatures = self.base.line_signatures(circuit)
        shipped = (
            tuple(base_signatures) if base_signatures is not None else None
        )
        plan = ShardPlan(self.shards or DEFAULT_NUM_SHARDS)
        slices = plan.split(faults)
        cache = ShardCache(self.cache_dir) if self.use_cache else None
        results: dict[int, list[int]] = {}
        pending: list[tuple[str | None, ShardTask]] = []
        for index, shard_faults in enumerate(slices):
            key = None
            if cache is not None:
                key = shard_key(circuit, self.base, kind, shard_faults)
                cached = cache.get(key)
                if cached is not None:
                    results[index] = cached
                    continue
            pending.append(
                (
                    key,
                    ShardTask(
                        circuit=circuit,
                        backend=self.base,
                        kind=kind,
                        faults=tuple(shard_faults),
                        base_signatures=shipped,
                        shard_index=index,
                    ),
                )
            )
        if pending:
            outcomes = self._run([task for _, task in pending])
            for (key, _task), (index, signatures) in zip(pending, outcomes):
                results[index] = signatures
                if cache is not None and key is not None:
                    cache.put(key, signatures)
        signatures = [
            sig for index in range(len(slices)) for sig in results[index]
        ]
        if drop_undetectable:
            kept = [(f, s) for f, s in zip(faults, signatures) if s]
            faults = [f for f, _ in kept]
            signatures = [s for _, s in kept]
        if getattr(
            self.base, "builds_packed",
            getattr(self.base, "name", "") == "packed",
        ):
            from repro.faultsim.packed_table import PackedDetectionTable

            return PackedDetectionTable(
                circuit, list(faults), signatures, universe
            )
        return DetectionTable(circuit, list(faults), signatures, universe)

    def _run(
        self, tasks: list[ShardTask]
    ) -> list[tuple[int, list[int]]]:
        """Execute tasks on the pool (inline at ``jobs=1`` / one task)."""
        if self.jobs == 1 or len(tasks) == 1:
            return [run_shard(task) for task in tasks]
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(tasks))
        ) as pool:
            # map() preserves submission order, which `_build` zips back
            # to the shards' cache keys.
            return list(pool.map(run_shard, tasks))
