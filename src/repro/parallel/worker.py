"""The picklable unit of parallel work: one fault shard, one process.

A :class:`ShardTask` carries everything a worker process needs to
rebuild one shard of a detection table — the circuit, the *base* backend
(exhaustive / sampled / packed / serial, a small frozen dataclass), the
fault slice, and the precomputed fault-free line signatures when the
base engine consumes them.  :func:`run_shard` is a module-level function
(picklable by reference under any multiprocessing start method) that
executes the task by delegating to the base backend's own ``build_*``
method, so a sharded build runs *exactly* the single-process code path
on each slice.

Workers always build with ``drop_undetectable=False`` and return raw
signature lists; the merge step applies the drop once after
concatenation, which is precisely what the single-process build does —
one source of the bit-for-bit identity guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError

if TYPE_CHECKING:
    from repro.faultsim.backends import DetectionBackend
    from repro.faultsim.detection import Fault

_KINDS = ("stuck_at", "bridging")


@dataclass(frozen=True)
class ShardTask:
    """Self-contained spec of one shard build (fully picklable).

    Attributes
    ----------
    circuit:
        The analyzed circuit.
    backend:
        The *base* detection backend (never a
        :class:`~repro.parallel.backend.ParallelBackend` — nesting is
        rejected at construction time there).
    kind:
        ``"stuck_at"`` or ``"bridging"`` — which table family to build.
    faults:
        The shard's fault slice, in table order.
    base_signatures:
        Fault-free line signatures over the backend's universe, or
        ``None`` for engines that ignore them (serial) — computed once
        in the parent and shipped to every worker instead of being
        re-derived per process.
    shard_index:
        Position of this shard in the plan (merge order).
    trace:
        Optional ``(trace_id, parent_span_id)`` propagation context from
        the submitting build's span.  Rides inside the pickle through
        pools and queue task files, so a worker on any host stitches its
        shard span into the submitter's trace.  Excluded from equality
        (and absent from the content-addressed shard key), so tracing
        never changes what counts as the same shard.
    """

    circuit: Circuit
    backend: DetectionBackend
    kind: str
    faults: tuple[Fault, ...]
    base_signatures: tuple[int, ...] | None
    shard_index: int
    trace: tuple[str, str] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise AnalysisError(
                f"shard kind must be one of {_KINDS}, got {self.kind!r}"
            )


def run_shard(task: ShardTask) -> tuple[int, list[int]]:
    """Build one shard's signatures via the base backend's own engine.

    Returns ``(shard_index, signatures)`` so out-of-order completion can
    be reassembled deterministically.

    The build runs under a ``shard_build`` span stitched to the
    submitter's trace context when the task carries one (``getattr``
    keeps payloads pickled before the ``trace`` field existed loadable).
    The span id is ``<parent>.s<shard_index>`` — derived, not counted —
    so concurrent workers across processes never collide.
    """
    build = (
        task.backend.build_stuck_at
        if task.kind == "stuck_at"
        else task.backend.build_bridging
    )
    trace = getattr(task, "trace", None)
    span_id = f"{trace[1]}.s{task.shard_index}" if trace is not None else None
    clock = obs.system_clock()
    started = clock.monotonic()
    with obs.span(
        "shard_build",
        parent=trace,
        span_id=span_id,
        shard=task.shard_index,
        kind=task.kind,
        faults=len(task.faults),
        backend=getattr(task.backend, "name", "?"),
    ):
        table = build(
            task.circuit,
            faults=list(task.faults),
            base_signatures=(
                list(task.base_signatures)
                if task.base_signatures is not None
                else None
            ),
            drop_undetectable=False,
        )
    obs.metrics().histogram(
        "repro_shard_build_seconds",
        help="Wall time spent building one fault shard",
        kind=task.kind,
    ).observe(clock.monotonic() - started)
    return task.shard_index, list(table.signatures)
