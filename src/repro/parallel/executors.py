"""Pluggable shard executors: *where* a shard plan runs.

:class:`~repro.parallel.backend.ParallelBackend` fixes *what* a sharded
build computes — a deterministic :class:`~repro.parallel.plan.ShardPlan`
cut, merged in shard order, bit-for-bit identical to the single-process
table.  A :class:`ShardExecutor` is the orthogonal axis: the substrate
the pending shard tasks execute on.  Four implementations:

``inline`` (:class:`InlineExecutor`)
    Every task runs in the calling process — no pool, no pickling.  The
    ``jobs=1`` fast path, now an explicit strategy (useful on its own:
    it still gets the shard cut and the persistent shard cache).
``pool`` (:class:`PoolExecutor`)
    The classic ``concurrent.futures.ProcessPoolExecutor`` fan-out over
    local worker processes — exactly the pre-refactor behavior.
``queue`` (:class:`QueueExecutor`)
    Publishes the tasks to a filesystem
    :class:`~repro.parallel.workqueue.WorkQueue` and waits for
    independent ``repro worker --queue DIR`` processes — on this or any
    host sharing the directory — to drain them.  Finished shards land in
    the queue's content-addressed result store, so completed work
    survives worker death and re-submission is idempotent; expired
    leases are requeued with bounded retries, and a shard that exhausts
    its budget surfaces as a clean :class:`AnalysisError` naming it.
``tcp`` (:class:`~repro.parallel.netqueue.TcpExecutor`)
    Submits the tasks to a ``repro broker`` over TCP and blocks on the
    socket for pushed results — no shared filesystem, no polling on the
    hot path, and deterministic work stealing keeps a heterogeneous
    fleet running at the speed of its fast workers.  Defined in
    :mod:`repro.parallel.netqueue`; the factory imports it lazily.

All four satisfy ``submit(tasks) -> iterable of (shard_index,
signatures)`` and are small frozen dataclasses (hashable, picklable),
so backends that embed them stay valid cache keys.  Because every
executor runs the same :func:`~repro.parallel.worker.run_shard` code on
the same deterministic shard cut, the merged table is identical no
matter which substrate built it — the differential suite enforces this.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

from repro.errors import AnalysisError
from repro.parallel.backoff import Backoff
from repro.parallel.cache import shard_key
from repro.parallel.worker import ShardTask, run_shard
from repro.parallel.workqueue import DEFAULT_MAX_ATTEMPTS, WorkQueue

#: Names accepted by :func:`make_executor` (and ``--executor`` on the CLI).
EXECUTOR_NAMES: tuple[str, ...] = ("inline", "pool", "queue", "tcp")

#: Indirection for tests: monkeypatching ``executors._sleep`` pins the
#: submit-loop backoff schedule without wall-clock waits.
_sleep = time.sleep


@runtime_checkable
class ShardExecutor(Protocol):
    """Execution substrate for a batch of :class:`ShardTask` s.

    ``submit`` may yield results in any order — callers reassemble by
    the ``shard_index`` each tuple carries.
    """

    name: str

    def submit(
        self, tasks: list[ShardTask]
    ) -> Iterable[tuple[int, list[int]]]:
        """Execute every task; yield ``(shard_index, signatures)``."""

    def describe(self) -> str:
        """Short human-readable form for CLI labels."""


@dataclass(frozen=True)
class InlineExecutor:
    """Run every shard in the calling process (no pool, no pickling)."""

    name: str = "inline"

    def submit(
        self, tasks: list[ShardTask]
    ) -> list[tuple[int, list[int]]]:
        return [run_shard(task) for task in tasks]

    def describe(self) -> str:
        return "inline"


@dataclass(frozen=True)
class PoolExecutor:
    """Local ``ProcessPoolExecutor`` fan-out (the classic ``--jobs N``)."""

    jobs: int = 2
    name: str = "pool"

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {self.jobs}")

    def submit(
        self, tasks: list[ShardTask]
    ) -> list[tuple[int, list[int]]]:
        # One worker or one task: pooling buys nothing, pickling costs.
        if self.jobs == 1 or len(tasks) <= 1:
            return [run_shard(task) for task in tasks]
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(tasks))
        ) as pool:
            return list(pool.map(run_shard, tasks))

    def describe(self) -> str:
        return f"pool jobs={self.jobs}"


@dataclass(frozen=True)
class QueueExecutor:
    """Distributed execution through a shared-directory work queue.

    Parameters
    ----------
    queue_dir:
        The queue root (default: ``REPRO_QUEUE_DIR``, resolved at
        submit time so one executor value works across hosts).
    poll_interval:
        How often the submitter polls for results / scavenges leases.
    lease_timeout:
        Heartbeat age beyond which a claimed shard is presumed dead and
        requeued.
    max_attempts:
        Build attempts (raised builds + expired leases) before a shard
        is parked and the run fails with an error naming it.
    wait_timeout:
        Give up after this many seconds *without any shard completing*
        (a stall deadline, reset on every completion, so a large batch
        draining steadily through slow workers is never killed;
        ``REPRO_QUEUE_TIMEOUT`` overrides; the error reminds the
        operator to start ``repro worker`` processes).
    """

    queue_dir: str | None = None
    poll_interval: float = 0.05
    lease_timeout: float = 30.0
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    wait_timeout: float | None = None
    name: str = "queue"

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise AnalysisError(
                f"poll_interval must be > 0, got {self.poll_interval}"
            )
        if self.lease_timeout <= 0:
            raise AnalysisError(
                f"lease_timeout must be > 0, got {self.lease_timeout}"
            )
        if self.max_attempts < 1:
            raise AnalysisError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.wait_timeout is not None and self.wait_timeout <= 0:
            raise AnalysisError(
                f"wait_timeout must be > 0, got {self.wait_timeout}"
            )

    # -- configuration resolution --------------------------------------
    def resolved_dir(self) -> str:
        return resolve_queue_dir(self.queue_dir)

    def _resolved_wait_timeout(self) -> float:
        return resolve_wait_timeout(self.wait_timeout)

    # -- the submit/wait loop ------------------------------------------
    def submit(
        self, tasks: list[ShardTask]
    ) -> list[tuple[int, list[int]]]:
        queue = WorkQueue(self.resolved_dir())
        index_of: dict[str, int] = {}
        for task in tasks:
            key = shard_key(
                task.circuit, task.backend, task.kind, task.faults
            )
            index_of[key] = task.shard_index
            queue.enqueue(task, key, max_attempts=self.max_attempts)
        outcomes: list[tuple[int, list[int]]] = []
        outstanding = set(index_of)
        stall_limit = self._resolved_wait_timeout()
        last_progress = time.monotonic()
        # Idle polls back off geometrically (capped); any completed
        # shard resets the schedule, so a steadily-draining queue is
        # polled at poll_interval and an empty mount is not hammered.
        backoff = Backoff(self.poll_interval, cap=1.0)
        while outstanding:
            progressed = False
            for key in sorted(outstanding):
                signatures = queue.result(key)
                if signatures is not None:
                    outcomes.append((index_of[key], signatures))
                    outstanding.discard(key)
                    last_progress = time.monotonic()
                    progressed = True
                    continue
                error = queue.failure(key)
                if error is not None:
                    raise AnalysisError(
                        f"queue shard {index_of[key]} (key {key[:12]}…) "
                        f"failed permanently: {error}"
                    )
            if not outstanding:
                break
            if progressed:
                backoff.reset()
            # The submitter scavenges too, so a run never hangs on a
            # worker that died holding the only copy of a lease.
            queue.reclaim_expired(self.lease_timeout)
            if time.monotonic() - last_progress > stall_limit:
                raise AnalysisError(
                    f"work queue at {queue.root} made no progress on "
                    f"{len(outstanding)} shard(s) within "
                    f"{stall_limit:.0f}s — are any "
                    f"`repro worker --queue {queue.root}` processes "
                    f"running?"
                )
            _sleep(backoff.next())
        return outcomes

    def describe(self) -> str:
        return "queue"


def resolve_queue_dir(
    queue_dir: str | None = None,
    *,
    what: str = "the queue executor",
    flag: str = "--queue-dir",
) -> str:
    """Explicit directory, else ``REPRO_QUEUE_DIR``, else a clean error.

    ``what``/``flag`` tailor the error to the caller's surface: the
    executor takes ``--queue-dir``, while ``repro worker`` and ``repro
    queue`` spell the same directory ``--queue``.
    """
    resolved = queue_dir or os.environ.get("REPRO_QUEUE_DIR")
    if not resolved:
        raise AnalysisError(
            f"{what} needs a queue directory: pass {flag} "
            f"(or set REPRO_QUEUE_DIR)"
        )
    return resolved


def resolve_wait_timeout(wait_timeout: float | None = None) -> float:
    """The distributed-submit stall deadline, in seconds.

    An explicit value wins; else ``REPRO_QUEUE_TIMEOUT``; else 600.
    Shared by the filesystem queue executor and the TCP executor — both
    treat it as "seconds without *any* shard completing", reset on
    every completion.
    """
    if wait_timeout is not None:
        return wait_timeout
    raw = os.environ.get("REPRO_QUEUE_TIMEOUT")
    if raw:
        try:
            value = float(raw)
        except ValueError:
            raise AnalysisError(
                f"REPRO_QUEUE_TIMEOUT must be a positive number, "
                f"got {raw!r}"
            ) from None
        if value <= 0:
            raise AnalysisError(
                f"REPRO_QUEUE_TIMEOUT must be a positive number, "
                f"got {raw!r}"
            )
        return value
    return 600.0


def make_executor(
    name: str,
    jobs: int | None = None,
    queue_dir: str | None = None,
    broker: str | None = None,
) -> ShardExecutor:
    """Executor factory behind ``--executor`` / ``REPRO_EXECUTOR``.

    ``jobs`` sizes the pool executor — an explicit value (including 1,
    which degrades to inline execution) is honored as given; ``None``
    falls back to ``REPRO_JOBS`` when that asks for a real pool, else
    2, so ``--executor pool`` alone always means an actual pool.
    ``queue_dir`` applies only to the queue executor and ``broker``
    only to the tcp executor; each is validated eagerly so the CLI
    fails before any table work starts.
    """
    if name != "tcp" and broker is not None:
        raise AnalysisError(
            f"--broker only applies to --executor tcp "
            f"(got --executor {name})"
        )
    if name == "inline":
        if queue_dir is not None:
            raise AnalysisError(
                "--queue-dir only applies to --executor queue "
                "(got --executor inline)"
            )
        return InlineExecutor()
    if name == "pool":
        if queue_dir is not None:
            raise AnalysisError(
                "--queue-dir only applies to --executor queue "
                "(got --executor pool)"
            )
        if jobs is None:
            from repro.parallel.backend import resolve_jobs

            env_jobs = resolve_jobs(None)
            jobs = env_jobs if env_jobs > 1 else 2
        return PoolExecutor(jobs=jobs)
    if name == "queue":
        return QueueExecutor(queue_dir=resolve_queue_dir(queue_dir))
    if name == "tcp":
        if queue_dir is not None:
            raise AnalysisError(
                "--queue-dir only applies to --executor queue "
                "(got --executor tcp)"
            )
        # Imported lazily: netqueue imports resolve_wait_timeout from
        # this module, so a top-level import would be a cycle.
        from repro.parallel.netqueue import TcpExecutor, resolve_broker

        resolve_broker(broker)  # fail before any table work starts
        return TcpExecutor(broker=broker)
    raise AnalysisError(
        f"unknown executor {name!r}; choose from "
        f"{', '.join(EXECUTOR_NAMES)}"
    )


def resolve_executor(
    name: str | None = None,
    jobs: int | None = None,
    queue_dir: str | None = None,
    broker: str | None = None,
) -> ShardExecutor | None:
    """Executor from an explicit name or ``REPRO_EXECUTOR`` (else None).

    None means "derive from ``jobs`` as before" — the refactor changes
    nothing for configurations that never mention executors.
    """
    resolved = name or os.environ.get("REPRO_EXECUTOR") or None
    if resolved is None:
        if queue_dir is not None:
            raise AnalysisError(
                "--queue-dir only applies to --executor queue"
            )
        if broker is not None:
            raise AnalysisError(
                "--broker only applies to --executor tcp"
            )
        return None
    return make_executor(
        resolved, jobs=jobs, queue_dir=queue_dir, broker=broker
    )
