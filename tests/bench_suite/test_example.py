"""Paper-anchor tests: the Figure 1 circuit must reproduce Table 1 exactly.

These are the ground-truth assertions of the whole reproduction: every
published detection set, fault index, and nmin value of the paper's
example analysis is pinned here.
"""

from __future__ import annotations

import pytest

from repro.bench_suite.example import and_or_example, c17, paper_example, xor_tree
from repro.circuit.validate import validate_circuit
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse
from repro.logic.bitops import set_bits

# (index, fault name, detection vectors, nmin(g0, fi)) — paper Table 1.
PAPER_TABLE1 = [
    (0, "1/1", [4, 5, 6, 7], 3),
    (1, "2/0", [6, 7, 12, 13, 14, 15], 5),
    (3, "3/0", [2, 6, 7, 10, 14, 15], 5),
    (9, "8/0", [2, 6, 10, 14], 4),
    (11, "9/1", [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11], 11),
    (12, "10/0", [6, 7, 14, 15], 3),
    (14, "11/0", [1, 2, 3, 5, 6, 7, 9, 10, 11, 13, 14, 15], 11),
]


@pytest.fixture(scope="module")
def universe():
    u = FaultUniverse(paper_example())
    u.target_table
    u.untargeted_table
    return u


class TestFigure1Structure:
    def test_line_count_and_names(self, example_circuit):
        assert len(example_circuit.lines) == 11
        assert [ln.name for ln in example_circuit.lines] == [
            str(i) for i in range(1, 12)
        ]

    def test_outputs(self, example_circuit):
        names = [example_circuit.lines[o].name for o in example_circuit.outputs]
        assert names == ["9", "10", "11"]

    def test_validates_clean(self, example_circuit):
        assert validate_circuit(example_circuit) == []

    def test_branch_structure(self, example_circuit):
        for branch, stem in (("5", "2"), ("6", "2"), ("7", "3"), ("8", "3")):
            line = example_circuit.line(branch)
            assert line.kind.value == "branch"
            assert example_circuit.lines[line.fanin[0]].name == stem


class TestTable1:
    def test_collapsed_fault_count(self, universe):
        # 22 uncollapsed faults collapse to 16 (3 equivalence classes of
        # size 3 each, rest singletons).
        assert len(universe.target_faults) == 16

    def test_published_rows_exact(self, universe):
        circuit = universe.circuit
        table = universe.target_table
        g0_sig = universe.untargeted_table.signatures[0]
        assert set_bits(g0_sig) == [6, 7]
        overlap_rows = []
        for i in range(len(table)):
            sig = table.signatures[i]
            m = (sig & g0_sig).bit_count()
            if m:
                overlap_rows.append(
                    (
                        i,
                        table.fault_name(i),
                        set_bits(sig),
                        sig.bit_count() - m + 1,
                    )
                )
        assert overlap_rows == PAPER_TABLE1

    def test_g0_identity(self, universe):
        assert universe.untargeted_table.fault_name(0) == "(9,0,10,1)"

    def test_nmin_g0_is_3(self, universe):
        wc = WorstCaseAnalysis(
            universe.target_table, universe.untargeted_table
        )
        assert wc.records[0].nmin == 3

    def test_g6_vectors_and_nmin(self, universe):
        """The paper's g6 has T(g6) = {12} and nmin(g6) = 4."""
        table = universe.untargeted_table
        assert set_bits(table.signatures[6]) == [12]
        wc = WorstCaseAnalysis(universe.target_table, table)
        assert wc.records[6].nmin == 4

    def test_all_bridging_faults_detectable_subset(self, universe):
        # 3 pairs x 4 orientations = 12 raw faults; 10 are detectable.
        assert len(universe.untargeted_faults) == 12
        assert len(universe.untargeted_table) == 10


class TestOtherExamples:
    def test_c17_shape(self):
        c = c17()
        assert c.num_inputs == 5
        assert c.num_outputs == 2
        assert c.num_gates == 6
        assert validate_circuit(c) == []

    def test_and_or_width_guard(self):
        with pytest.raises(ValueError):
            and_or_example(0)

    def test_xor_tree_depth_guard(self):
        with pytest.raises(ValueError):
            xor_tree(0)

    def test_xor_tree_inputs(self):
        c = xor_tree(3)
        assert c.num_inputs == 8
        assert c.num_outputs == 1
