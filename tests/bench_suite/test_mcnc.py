"""MCNC-style suite: source integrity, determinism, published interfaces."""

from __future__ import annotations

import pytest

from repro.bench_suite.mcnc import (
    HAND_WRITTEN_NAMES,
    MCNC_SUITE,
    kiss2_source,
)
from repro.errors import ReproError
from repro.io_formats.kiss2 import parse_kiss2

# Published MCNC interface sizes for spot checks (inputs, outputs, states).
PUBLISHED_INTERFACES = {
    "lion": (2, 1, 4),
    "train4": (2, 1, 4),
    "modulo12": (1, 1, 12),
    "dk27": (1, 2, 7),
    "bbtas": (2, 2, 6),
    "mc": (3, 5, 4),
    "lion9": (2, 1, 9),
    "train11": (2, 1, 11),
    "beecount": (3, 4, 7),
    "s8": (4, 1, 5),
    "keyb": (7, 2, 19),
    "cse": (7, 7, 16),
    "bbara": (4, 2, 10),
    "dk16": (2, 3, 27),
    "s1a": (8, 6, 20),
}


class TestSuiteIntegrity:
    def test_35_circuits_in_paper_order(self):
        assert len(MCNC_SUITE) == 35
        assert MCNC_SUITE[0] == "lion"
        assert MCNC_SUITE[-1] == "s1a"

    def test_every_source_parses_and_validates(self):
        for name in MCNC_SUITE:
            fsm = parse_kiss2(kiss2_source(name), name=name)
            assert fsm.validate() == [], name

    @pytest.mark.parametrize("name", sorted(PUBLISHED_INTERFACES))
    def test_published_interfaces(self, name):
        i, o, s = PUBLISHED_INTERFACES[name]
        fsm = parse_kiss2(kiss2_source(name), name=name)
        assert fsm.num_inputs == i
        assert fsm.num_outputs == o
        assert len(fsm.states) == s

    def test_sources_deterministic(self):
        for name in ("keyb", "dvram", "ex2"):
            assert kiss2_source(name) == kiss2_source(name)

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            kiss2_source("nonexistent")

    def test_hand_written_subset(self):
        assert HAND_WRITTEN_NAMES <= set(MCNC_SUITE)
        assert "lion" in HAND_WRITTEN_NAMES
        assert "keyb" not in HAND_WRITTEN_NAMES


class TestMachineQuality:
    @pytest.mark.parametrize("name", sorted(HAND_WRITTEN_NAMES))
    def test_hand_written_all_states_reachable(self, name):
        fsm = parse_kiss2(kiss2_source(name), name=name)
        assert fsm.reachable_states() == set(fsm.states)

    @pytest.mark.parametrize("name", list(MCNC_SUITE))
    def test_all_machines_deterministic(self, name):
        fsm = parse_kiss2(kiss2_source(name), name=name)
        assert fsm.validate(require_deterministic=True) == []

    def test_generated_machines_reachable_cycle(self):
        """The generator wires st_i -> st_{i+1}, keeping everything
        reachable from reset."""
        for name in ("keyb", "dvram", "ex4"):
            fsm = parse_kiss2(kiss2_source(name), name=name)
            assert fsm.reachable_states() == set(fsm.states)

    def test_exhaustive_input_budget(self):
        """Every suite circuit must stay analyzable: FSM inputs + state
        bits <= 14 (the full-space signature budget)."""
        for name in MCNC_SUITE:
            fsm = parse_kiss2(kiss2_source(name), name=name)
            state_bits = max(1, (len(fsm.states) - 1).bit_length())
            assert fsm.num_inputs + state_bits <= 14, name
