"""Circuit registry: names, caching, synthesis integration."""

from __future__ import annotations

import pytest

from repro.bench_suite.registry import (
    circuit_names,
    get_circuit,
    get_fsm,
    suite_table_groups,
)
from repro.circuit.validate import validate_circuit
from repro.errors import ReproError


class TestRegistry:
    def test_example_names_present(self):
        names = circuit_names()
        for expected in ("paper_example", "c17", "majority3", "lion", "s1a"):
            assert expected in names

    def test_get_circuit_cached(self):
        assert get_circuit("lion") is get_circuit("lion")

    def test_unknown_circuit(self):
        with pytest.raises(ReproError, match="unknown circuit"):
            get_circuit("zzz")

    def test_unknown_fsm(self):
        with pytest.raises(ReproError, match="no FSM"):
            get_fsm("paper_example")  # an example, not an FSM

    def test_suite_order(self):
        groups = suite_table_groups()
        assert groups[0] == "lion"
        assert len(groups) == 35


class TestSynthesizedSuiteMembers:
    @pytest.mark.parametrize(
        "name", ["lion", "dk27", "train4", "mc", "ex5", "tav", "firstex"]
    )
    def test_valid_normal_form(self, name):
        circuit = get_circuit(name)
        assert validate_circuit(circuit) == []

    @pytest.mark.parametrize("name", ["lion", "bbtas", "ex3"])
    def test_input_naming_convention(self, name):
        circuit = get_circuit(name)
        fsm = get_fsm(name)
        input_names = [circuit.lines[i].name for i in circuit.inputs]
        x_names = [n for n in input_names if n.startswith("x")]
        s_names = [n for n in input_names if n.startswith("s")]
        assert len(x_names) == fsm.num_inputs
        assert input_names == x_names + s_names

    def test_synthesis_matches_fsm_behavior(self):
        """Registry circuits implement their FSM's transition function."""
        from repro.fsm.encoding import encode_states
        from repro.simulation.twoval import output_values

        name = "dk27"
        fsm = get_fsm(name)
        circuit = get_circuit(name)
        enc = encode_states(fsm.states, "binary")
        b = enc.num_bits
        for state in fsm.states:
            for x in range(1 << fsm.num_inputs):
                vector = (x << b) | enc.codes[state]
                got = output_values(circuit, vector)
                expected_next, expected_out = fsm.step(state, x)
                got_code = 0
                for bit in got[:b]:
                    got_code = (got_code << 1) | bit
                expected_code = (
                    enc.codes[expected_next] if expected_next else 0
                )
                assert got_code == expected_code
                assert "".join(map(str, got[b:])) == expected_out
