"""Random-logic generator: determinism, structure, analyzability."""

from __future__ import annotations

import pytest

from repro.bench_suite.randlogic import random_circuit
from repro.circuit.validate import validate_circuit
from repro.errors import ReproError
from repro.faults.universe import FaultUniverse


class TestDeterminism:
    def test_same_seed_same_netlist(self):
        a = random_circuit(42)
        b = random_circuit(42)
        assert [(l.name, l.kind, l.gate_type, l.fanin) for l in a.lines] == [
            (l.name, l.kind, l.gate_type, l.fanin) for l in b.lines
        ]

    def test_different_seeds_differ(self):
        a = random_circuit(1, num_gates=20)
        b = random_circuit(2, num_gates=20)
        assert [(l.name, l.fanin) for l in a.lines] != [
            (l.name, l.fanin) for l in b.lines
        ]


class TestStructure:
    @pytest.mark.parametrize("seed", [0, 7, 99])
    def test_valid_normal_form(self, seed):
        c = random_circuit(seed, num_inputs=6, num_gates=30)
        issues = [i for i in validate_circuit(c) if "dangling" not in i]
        assert issues == []
        # No dangling gates either: generator promotes them to outputs.
        assert all(
            ln.fanout or ln.is_output or ln.kind.value == "input"
            for ln in c.lines
        )

    def test_requested_sizes(self):
        c = random_circuit(5, num_inputs=4, num_gates=12)
        assert c.num_inputs == 4
        assert c.num_gates == 12

    def test_arity_bound(self):
        c = random_circuit(11, max_arity=2, num_gates=25)
        for line in c.gate_lines():
            assert len(line.fanin) <= 2

    def test_locality_changes_depth(self):
        deep = random_circuit(3, num_gates=60, locality=0.95)
        shallow = random_circuit(3, num_gates=60, locality=0.0)
        assert deep.depth != shallow.depth

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            random_circuit(0, num_inputs=0)
        with pytest.raises(ReproError):
            random_circuit(0, num_gates=0)
        with pytest.raises(ReproError):
            random_circuit(0, max_arity=1)
        with pytest.raises(ReproError):
            random_circuit(0, locality=1.5)


class TestAnalyzability:
    def test_full_analysis_runs(self):
        from repro.core.worst_case import WorstCaseAnalysis

        c = random_circuit(13, num_inputs=6, num_gates=25)
        u = FaultUniverse(c)
        if len(u.untargeted_table) == 0:
            pytest.skip("seed produced no bridging sites")
        wc = WorstCaseAnalysis(u.target_table, u.untargeted_table)
        assert 0.0 <= wc.fraction_within(10) <= 1.0
