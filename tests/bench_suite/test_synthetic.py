"""Synthetic FSM generator: determinism, completeness, disjointness."""

from __future__ import annotations

from repro.bench_suite.synthetic import FsmSpec, generate_kiss2
from repro.io_formats.kiss2 import parse_kiss2


def _spec(**kw):
    base = {"name": "testgen", "inputs": 3, "outputs": 2, "states": 5}
    base.update(kw)
    return FsmSpec(**base)


class TestDeterminism:
    def test_same_name_same_text(self):
        assert generate_kiss2(_spec()) == generate_kiss2(_spec())

    def test_different_names_differ(self):
        a = generate_kiss2(_spec(name="aaa"))
        b = generate_kiss2(_spec(name="bbb"))
        assert a != b


class TestCoverStructure:
    def test_parses_and_validates(self):
        fsm = parse_kiss2(generate_kiss2(_spec()), name="testgen")
        assert fsm.validate() == []

    def test_cubes_partition_input_space(self):
        """Per state: every input vector matches exactly one row."""
        spec = _spec(inputs=4, split_depth=3)
        fsm = parse_kiss2(generate_kiss2(spec), name=spec.name)
        by_state = {}
        for t in fsm.transitions:
            by_state.setdefault(t.present, []).append(t)
        for state, rows in by_state.items():
            for v in range(1 << spec.inputs):
                matches = [
                    t for t in rows if t.matches(v, spec.inputs)
                ]
                assert len(matches) == 1, (state, v)

    def test_requested_sizes(self):
        spec = _spec(inputs=5, outputs=4, states=9)
        fsm = parse_kiss2(generate_kiss2(spec), name=spec.name)
        assert fsm.num_inputs == 5
        assert fsm.num_outputs == 4
        assert len(fsm.states) == 9

    def test_cycle_keeps_all_states_reachable(self):
        fsm = parse_kiss2(generate_kiss2(_spec(states=12)), name="testgen")
        assert fsm.reachable_states() == set(fsm.states)

    def test_split_depth_increases_terms(self):
        shallow = parse_kiss2(
            generate_kiss2(_spec(name="d", split_depth=1)), name="d"
        )
        deep = parse_kiss2(
            generate_kiss2(_spec(name="d", split_depth=4)), name="d"
        )
        assert len(deep.transitions) >= len(shallow.transitions)
