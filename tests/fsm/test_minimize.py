"""SOP cubes, cover cleanup, and Quine-McCluskey minimization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.fsm.minimize import SopCube, merge_cover, quine_mccluskey


def _cover_minterms(cover, width):
    out = set()
    for cube in cover:
        out.update(cube.minterms())
    return out


class TestSopCube:
    def test_string_round_trip(self):
        for text in ("1-0", "---", "111", "0-1"):
            assert SopCube.from_string(text).to_string() == text

    def test_bad_char(self):
        with pytest.raises(ReproError):
            SopCube.from_string("10z")

    def test_contains(self):
        big = SopCube.from_string("1--")
        small = SopCube.from_string("10-")
        assert big.contains(small)
        assert not small.contains(big)
        assert big.contains(big)

    def test_minterms(self):
        assert SopCube.from_string("1-0").minterms() == [4, 6]

    def test_covers_minterm(self):
        cube = SopCube.from_string("1-0")
        assert cube.covers_minterm(6)
        assert not cube.covers_minterm(7)

    def test_num_literals(self):
        assert SopCube.from_string("1-0").num_literals() == 2


class TestMergeCover:
    def test_dedupe(self):
        cover = [SopCube.from_string("1-0")] * 3
        assert len(merge_cover(cover)) == 1

    def test_distance1_merge(self):
        cover = [SopCube.from_string("10"), SopCube.from_string("11")]
        merged = merge_cover(cover)
        assert [c.to_string() for c in merged] == ["1-"]

    def test_containment_removed(self):
        cover = [SopCube.from_string("1--"), SopCube.from_string("101")]
        merged = merge_cover(cover)
        assert [c.to_string() for c in merged] == ["1--"]

    def test_minterms_preserved(self):
        cover = [
            SopCube.from_string("001"),
            SopCube.from_string("011"),
            SopCube.from_string("010"),
            SopCube.from_string("110"),
        ]
        merged = merge_cover(cover)
        assert _cover_minterms(merged, 3) == _cover_minterms(cover, 3)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=15), min_size=1, max_size=12
        )
    )
    @settings(max_examples=100)
    def test_merge_never_changes_function(self, minterms):
        cover = [
            SopCube(4, 0xF, m) for m in minterms
        ]
        merged = merge_cover(cover)
        assert _cover_minterms(merged, 4) == set(minterms)


class TestQuineMcCluskey:
    def test_simple_function(self):
        # f = a (on 2 vars): minterms {2, 3}
        cover = quine_mccluskey(2, [2, 3])
        assert [c.to_string() for c in cover] == ["1-"]

    def test_xor_not_compressible(self):
        cover = quine_mccluskey(2, [1, 2])
        assert sorted(c.to_string() for c in cover) == ["01", "10"]

    def test_tautology(self):
        cover = quine_mccluskey(2, [0, 1, 2, 3])
        assert [c.to_string() for c in cover] == ["--"]

    def test_empty(self):
        assert quine_mccluskey(3, []) == []

    def test_dont_cares_exploited(self):
        # onset {1}, dc {3}: minimal cover is -1 (uses the dc).
        cover = quine_mccluskey(2, [1], dont_cares=[3])
        assert [c.to_string() for c in cover] == ["-1"]

    def test_width_guard(self):
        with pytest.raises(ReproError, match="limited"):
            quine_mccluskey(20, [0])

    def test_range_guard(self):
        with pytest.raises(ReproError, match="out of range"):
            quine_mccluskey(2, [4])

    @given(
        st.integers(min_value=1, max_value=4).flatmap(
            lambda w: st.tuples(
                st.just(w),
                st.lists(
                    st.integers(min_value=0, max_value=(1 << w) - 1),
                    max_size=1 << w,
                ),
            )
        )
    )
    @settings(max_examples=150)
    def test_exactly_covers_onset(self, args):
        width, minterms = args
        onset = set(minterms)
        cover = quine_mccluskey(width, sorted(onset))
        covered = _cover_minterms(cover, width)
        assert covered == onset

    def test_classic_example(self):
        # f(a,b,c,d) = sum m(0,1,2,5,6,7,8,9,10,14) — textbook case.
        onset = [0, 1, 2, 5, 6, 7, 8, 9, 10, 14]
        cover = quine_mccluskey(4, onset)
        assert _cover_minterms(cover, 4) == set(onset)
        assert len(cover) <= 5
