"""State encodings: binary, gray, one-hot."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.fsm.encoding import encode_states

STATES = ["s0", "s1", "s2", "s3", "s4"]


class TestBinary:
    def test_codes_are_indices(self):
        enc = encode_states(STATES, "binary")
        assert enc.num_bits == 3
        assert [enc.codes[s] for s in STATES] == [0, 1, 2, 3, 4]

    def test_code_bits_msb_first(self):
        enc = encode_states(STATES, "binary")
        assert enc.code_bits("s4") == "100"
        assert enc.code_bits("s1") == "001"

    def test_decode(self):
        enc = encode_states(STATES, "binary")
        assert enc.decode(2) == "s2"
        assert enc.decode(7) is None

    def test_single_state_still_one_bit(self):
        enc = encode_states(["only"], "binary")
        assert enc.num_bits == 1


class TestGray:
    def test_adjacent_codes_differ_one_bit(self):
        enc = encode_states(STATES, "gray")
        codes = [enc.codes[s] for s in STATES]
        for a, b in zip(codes, codes[1:], strict=False):
            assert bin(a ^ b).count("1") == 1

    def test_codes_distinct(self):
        enc = encode_states(STATES, "gray")
        assert len(set(enc.codes.values())) == len(STATES)


class TestOneHot:
    def test_one_bit_per_state(self):
        enc = encode_states(STATES, "onehot")
        assert enc.num_bits == 5
        for s in STATES:
            assert bin(enc.codes[s]).count("1") == 1
        assert len(set(enc.codes.values())) == 5

    def test_first_state_gets_msb(self):
        enc = encode_states(STATES, "onehot")
        assert enc.code_bits("s0") == "10000"


class TestErrors:
    def test_unknown_strategy(self):
        with pytest.raises(ReproError, match="unknown encoding"):
            encode_states(STATES, "johnson")

    def test_empty_states(self):
        with pytest.raises(ReproError):
            encode_states([], "binary")

    def test_duplicate_states(self):
        with pytest.raises(ReproError, match="duplicate"):
            encode_states(["a", "a"], "binary")
