"""Sequential FSM simulation: behavioral vs synthesized trajectories."""

from __future__ import annotations

import random

import pytest

from repro.bench_suite.mcnc import HAND_WRITTEN_NAMES, kiss2_source
from repro.errors import SimulationError
from repro.fsm.encoding import encode_states
from repro.fsm.simulate import (
    simulate_circuit_sequence,
    simulate_fsm_sequence,
    trajectories_match,
)
from repro.fsm.synthesis import synthesize_fsm
from repro.io_formats.kiss2 import parse_kiss2


@pytest.fixture(scope="module")
def modulo12():
    return parse_kiss2(kiss2_source("modulo12"), name="modulo12")


class TestBehavioral:
    def test_counter_counts(self, modulo12):
        # 11 enables reach st11; output fires there.
        traj = simulate_fsm_sequence(modulo12, [1] * 12)
        assert traj.states[0] == "st0"
        assert traj.states[11] == "st11"
        assert traj.states[12] == "st0"  # wraps
        assert traj.outputs[10] == "0"
        assert traj.outputs[11] == "1"

    def test_hold_input(self, modulo12):
        traj = simulate_fsm_sequence(modulo12, [0, 0, 0])
        assert set(traj.states) == {"st0"}

    def test_start_state_override(self, modulo12):
        traj = simulate_fsm_sequence(modulo12, [1], start="st10")
        assert traj.states == ("st10", "st11")

    def test_unknown_start_rejected(self, modulo12):
        with pytest.raises(SimulationError):
            simulate_fsm_sequence(modulo12, [0], start="zz")

    def test_input_range_checked(self, modulo12):
        with pytest.raises(SimulationError):
            simulate_fsm_sequence(modulo12, [2])


class TestGateLevelAgreement:
    @pytest.mark.parametrize("name", sorted(HAND_WRITTEN_NAMES))
    def test_random_walks_match(self, name):
        fsm = parse_kiss2(kiss2_source(name), name=name)
        circuit = synthesize_fsm(fsm)
        rng = random.Random(hash(name) & 0xFFFF)
        inputs = [
            rng.randrange(1 << fsm.num_inputs) for _ in range(60)
        ]
        assert trajectories_match(fsm, circuit, inputs)

    def test_matches_under_gray_encoding(self, modulo12):
        enc = encode_states(modulo12.states, "gray")
        circuit = synthesize_fsm(modulo12, encoding=enc)
        inputs = [1] * 15 + [0, 1, 0, 1]
        behavioral = simulate_fsm_sequence(modulo12, inputs)
        gate_level = simulate_circuit_sequence(
            circuit, modulo12, inputs, encoding=enc
        )
        assert behavioral == gate_level

    def test_trajectory_lengths(self, modulo12):
        circuit = synthesize_fsm(modulo12)
        traj = simulate_circuit_sequence(circuit, modulo12, [1, 0, 1])
        assert len(traj.states) == 4
        assert len(traj.outputs) == 3
