"""FSM model: validation, matching, behavioral stepping."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.fsm.machine import Fsm, Transition


def _toy() -> Fsm:
    return Fsm(
        name="toy",
        num_inputs=2,
        num_outputs=1,
        states=["a", "b"],
        reset_state="a",
        transitions=[
            Transition("0-", "a", "a", "0"),
            Transition("1-", "a", "b", "1"),
            Transition("--", "b", "a", "1"),
        ],
    )


class TestValidate:
    def test_clean(self):
        assert _toy().validate() == []

    def test_unknown_states(self):
        fsm = _toy()
        fsm.transitions.append(Transition("--", "zz", "a", "0"))
        issues = fsm.validate(require_deterministic=False)
        assert any("unknown present state" in i for i in issues)

    def test_overlapping_cubes_flagged(self):
        fsm = _toy()
        fsm.transitions.append(Transition("11", "a", "a", "0"))
        issues = fsm.validate()
        assert any("overlapping" in i for i in issues)
        # ...but not when determinism is not required.
        assert fsm.validate(require_deterministic=False) == []

    def test_check_raises(self):
        fsm = _toy()
        fsm.transitions.append(Transition("11", "a", "a", "0"))
        with pytest.raises(ReproError, match="invalid"):
            fsm.check()

    def test_wrong_widths(self):
        fsm = _toy()
        fsm.transitions.append(Transition("0", "a", "b", "0"))
        issues = fsm.validate(require_deterministic=False)
        assert any("wrong width" in i for i in issues)


class TestMatching:
    def test_cube_matching_msb_first(self):
        t = Transition("10", "a", "b", "0")
        # Input 1 (MSB) = 1, input 2 = 0 -> vector 2.
        assert t.matches(2, 2)
        assert not t.matches(3, 2)
        assert not t.matches(0, 2)

    def test_dash_matches_both(self):
        t = Transition("1-", "a", "b", "0")
        assert t.matches(2, 2)
        assert t.matches(3, 2)


class TestStep:
    def test_deterministic_step(self):
        fsm = _toy()
        assert fsm.step("a", 0) == ("a", "0")
        assert fsm.step("a", 2) == ("b", "1")
        assert fsm.step("b", 1) == ("a", "1")

    def test_unmatched_input_goes_dark(self):
        fsm = Fsm(
            name="partial",
            num_inputs=1,
            num_outputs=2,
            states=["s"],
            reset_state="s",
            transitions=[Transition("1", "s", "s", "11")],
        )
        assert fsm.step("s", 0) == ("", "00")

    def test_dash_output_reads_zero(self):
        fsm = Fsm(
            name="d",
            num_inputs=1,
            num_outputs=2,
            states=["s"],
            reset_state="s",
            transitions=[
                Transition("0", "s", "s", "1-"),
                Transition("1", "s", "s", "-1"),
            ],
        )
        assert fsm.step("s", 0) == ("s", "10")
        assert fsm.step("s", 1) == ("s", "01")


class TestReachability:
    def test_all_reachable(self):
        assert _toy().reachable_states() == {"a", "b"}

    def test_unreachable_state(self):
        fsm = _toy()
        fsm.states.append("island")
        fsm.transitions.append(Transition("--", "island", "island", "0"))
        assert "island" not in fsm.reachable_states()

    def test_stats(self):
        assert _toy().stats() == {
            "inputs": 2, "outputs": 1, "states": 2, "terms": 3,
        }
