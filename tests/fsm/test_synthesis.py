"""FSM synthesis: the circuit must agree with behavioral stepping."""

from __future__ import annotations

import pytest

from repro.circuit.validate import validate_circuit
from repro.fsm.encoding import encode_states
from repro.fsm.machine import Fsm, Transition
from repro.fsm.synthesis import synthesize_fsm
from repro.io_formats.kiss2 import parse_kiss2
from repro.simulation.twoval import output_values


def _behavior_matches(fsm, circuit, encoding):
    """Compare gate-level outputs to Fsm.step over the whole input space."""
    enc = encoding
    b = enc.num_bits
    for state in fsm.states:
        code = enc.codes[state]
        for x in range(1 << fsm.num_inputs):
            vector = (x << b) | code
            got = output_values(circuit, vector)
            ns_bits = got[: b]
            z_bits = got[b:]
            expected_next, expected_out = fsm.step(state, x)
            if expected_next == "":
                expected_code = 0
            else:
                expected_code = enc.codes[expected_next]
            got_code = 0
            for bit in ns_bits:
                got_code = (got_code << 1) | bit
            assert got_code == expected_code, (state, x)
            assert "".join(map(str, z_bits)) == expected_out, (state, x)


@pytest.fixture(scope="module")
def toy_fsm():
    return parse_kiss2(
        ".i 2\n.o 2\n.r a\n"
        "00 a a 00\n01 a b 01\n1- a c 10\n"
        "0- b a 11\n1- b b 01\n"
        "-- c a 10\n",
        name="toy3",
    )


class TestSynthesisCorrectness:
    @pytest.mark.parametrize("strategy", ["binary", "gray", "onehot"])
    def test_matches_behavior(self, toy_fsm, strategy):
        enc = encode_states(toy_fsm.states, strategy)
        circuit = synthesize_fsm(toy_fsm, encoding=enc)
        _behavior_matches(toy_fsm, circuit, enc)

    def test_flat_pla_matches_behavior(self, toy_fsm):
        enc = encode_states(toy_fsm.states, "binary")
        circuit = synthesize_fsm(toy_fsm, encoding=enc, max_arity=None)
        _behavior_matches(toy_fsm, circuit, enc)

    def test_no_merge_matches_behavior(self, toy_fsm):
        enc = encode_states(toy_fsm.states, "binary")
        circuit = synthesize_fsm(toy_fsm, encoding=enc, merge_terms=False)
        _behavior_matches(toy_fsm, circuit, enc)

    @pytest.mark.parametrize(
        "name", ["lion", "train4", "modulo12", "dk27", "mc", "bbtas"]
    )
    def test_hand_written_suite_members(self, name):
        from repro.bench_suite.mcnc import kiss2_source

        fsm = parse_kiss2(kiss2_source(name), name=name)
        enc = encode_states(fsm.states, "binary")
        circuit = synthesize_fsm(fsm, encoding=enc)
        _behavior_matches(fsm, circuit, enc)


class TestSynthesisStructure:
    def test_validates_clean(self, toy_fsm):
        circuit = synthesize_fsm(toy_fsm)
        assert validate_circuit(circuit) == []

    def test_input_order(self, toy_fsm):
        circuit = synthesize_fsm(toy_fsm)
        names = [circuit.lines[i].name for i in circuit.inputs]
        assert names == ["x0", "x1", "s0", "s1"]

    def test_output_order(self, toy_fsm):
        circuit = synthesize_fsm(toy_fsm)
        names = [circuit.lines[o].name for o in circuit.outputs]
        assert names == ["ns0", "ns1", "z0", "z1"]

    def test_max_arity_respected(self, toy_fsm):
        circuit = synthesize_fsm(toy_fsm, max_arity=2)
        for line in circuit.gate_lines():
            assert len(line.fanin) <= 2

    def test_nondeterministic_cover_rejected(self):
        fsm = Fsm(
            name="bad",
            num_inputs=1,
            num_outputs=1,
            states=["s"],
            reset_state="s",
            transitions=[
                Transition("-", "s", "s", "1"),
                Transition("1", "s", "s", "0"),
            ],
        )
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            synthesize_fsm(fsm)

    def test_encoding_changes_circuit(self, toy_fsm):
        binary = synthesize_fsm(toy_fsm, encoding="binary")
        onehot = synthesize_fsm(toy_fsm, encoding="onehot")
        assert onehot.num_inputs > binary.num_inputs
