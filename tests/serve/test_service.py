"""AnalysisService tests: CLI byte-identity, single-flight, caching."""

from __future__ import annotations

import asyncio
import io
import threading
from contextlib import redirect_stdout

import pytest

from repro import cli
from repro.serve import AnalysisService, ServiceError
from repro.serve.service import _execution_label


def cli_output(argv):
    """stdout of a `repro` CLI run, as the service must reproduce it."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli.main(argv)
    assert code == 0
    return buffer.getvalue()


class CountingBuilds:
    """Wrap a service's build step with a thread-safe call counter.

    Optionally gates builds on an event so tests can hold a build
    in-flight while more requests pile up behind it.
    """

    def __init__(self, service, gate=None):
        self.calls = 0
        self.gate = gate
        self._lock = threading.Lock()
        self._base = service._build_pair
        service._build_pair = self  # instance attr shadows the staticmethod

    def __call__(self, circuit, backend):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            self.gate.wait(timeout=30.0)
        return self._base(circuit, backend)


class TestByteIdentity:
    def test_analyze_matches_cli(self):
        service = AnalysisService()
        payload = {
            "circuit": "c17",
            "backend": "packed",
            "samples": 16,
            "seed": 7,
        }
        report = asyncio.run(service.analyze(payload))
        assert report == cli_output(
            ["analyze", "c17", "--backend", "packed", "--samples", "16",
             "--seed", "7"]
        )

    def test_defaults_come_from_the_cli_parser(self):
        # No seed / confidence in the payload: the service must inherit
        # the CLI's own defaults (seed 2005, confidence 0.95).
        service = AnalysisService()
        report = asyncio.run(service.analyze({"circuit": "c17"}))
        assert report == cli_output(["analyze", "c17"])

    def test_escape_matches_cli(self):
        service = AnalysisService()
        payload = {"circuit": "c17", "k": 20, "nmax": 5}
        report = asyncio.run(service.escape(payload))
        assert report == cli_output(
            ["escape", "c17", "--k", "20", "--nmax", "5"]
        )

    def test_partition_matches_cli(self):
        service = AnalysisService()
        payload = {
            "circuit": "mc",
            "max_inputs": 4,
            "backend": "sampled",
            "samples": 8,
        }
        report = asyncio.run(service.partition(payload))
        assert report == cli_output(
            ["partition", "mc", "--max-inputs", "4", "--backend",
             "sampled", "--samples", "8"]
        )

    def test_inline_circuit_source(self):
        service = AnalysisService()
        bench = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"
        report = asyncio.run(
            service.analyze(
                {"circuit": {"format": "bench", "source": bench,
                             "name": "tiny"}}
            )
        )
        assert report.startswith("Worst-case analysis of tiny ")


class TestValidation:
    def test_unknown_option_rejected(self):
        service = AnalysisService()
        with pytest.raises(ServiceError, match="unknown option.*bogus"):
            asyncio.run(service.analyze({"circuit": "c17", "bogus": 1}))

    def test_missing_circuit_rejected(self):
        service = AnalysisService()
        with pytest.raises(ServiceError, match="missing 'circuit'"):
            asyncio.run(service.analyze({}))

    def test_cli_parser_errors_become_service_errors(self):
        service = AnalysisService()
        with pytest.raises(ServiceError, match="invalid int value"):
            asyncio.run(
                service.analyze({"circuit": "c17", "samples": "many"})
            )

    def test_non_object_payload_rejected(self):
        service = AnalysisService()
        with pytest.raises(ServiceError, match="JSON object"):
            asyncio.run(service.analyze(["circuit", "c17"]))

    def test_bad_inline_format_rejected(self):
        service = AnalysisService()
        with pytest.raises(ServiceError, match="'format' must be one of"):
            asyncio.run(
                service.analyze(
                    {"circuit": {"format": "vhdl", "source": "x"}}
                )
            )

    def test_service_level_execution_defaults_apply(self):
        service = AnalysisService(jobs=1)
        request = service._resolve("analyze", {"circuit": "c17"})
        assert request.args.jobs == 1
        explicit = service._resolve(
            "analyze", {"circuit": "c17", "jobs": 2}
        )
        assert explicit.args.jobs == 2


class TestSingleFlight:
    def test_concurrent_identical_requests_build_once(self):
        service = AnalysisService()
        gate = threading.Event()
        builds = CountingBuilds(service, gate=gate)
        payload = {
            "circuit": "c17",
            "backend": "packed",
            "samples": 16,
            "seed": 7,
        }
        K = 6

        async def main():
            tasks = [
                asyncio.create_task(service.analyze(payload))
                for _ in range(K)
            ]
            while service.flights.joined < K - 1:
                await asyncio.sleep(0.01)
            gate.set()
            return await asyncio.gather(*tasks)

        reports = asyncio.run(main())
        expected = cli_output(
            ["analyze", "c17", "--backend", "packed", "--samples", "16",
             "--seed", "7"]
        )
        assert builds.calls == 1
        assert reports == [expected] * K
        assert service.flights.started == 1
        assert service.flights.joined == K - 1
        assert service.flights.in_flight == 0

    def test_warm_requests_hit_the_hot_tier(self):
        service = AnalysisService()
        builds = CountingBuilds(service)
        payload = {"circuit": "c17"}
        first = asyncio.run(service.analyze(payload))
        second = asyncio.run(service.analyze(payload))
        assert first == second
        assert builds.calls == 1
        assert service.cache.hits == 1
        assert service.cache.hit_rate > 0

    def test_distinct_configurations_do_not_alias(self):
        service = AnalysisService()
        builds = CountingBuilds(service)
        asyncio.run(
            service.analyze(
                {"circuit": "c17", "backend": "sampled", "samples": 16}
            )
        )
        asyncio.run(
            service.analyze(
                {"circuit": "c17", "backend": "sampled", "samples": 16,
                 "seed": 9}
            )
        )
        assert builds.calls == 2

    def test_escape_shares_tables_with_analyze(self):
        service = AnalysisService()
        builds = CountingBuilds(service)
        asyncio.run(service.analyze({"circuit": "c17"}))
        asyncio.run(
            service.escape({"circuit": "c17", "k": 10, "nmax": 3})
        )
        assert builds.calls == 1

    def test_cancellation_mid_build_leaves_flight_reusable(self):
        service = AnalysisService()
        gate = threading.Event()
        builds = CountingBuilds(service, gate=gate)
        payload = {"circuit": "c17"}

        async def main():
            task = asyncio.create_task(service.analyze(payload))
            while service.flights.started < 1:
                await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert service.flights.in_flight == 0
            # Release the (abandoned) first build thread, then rebuild.
            gate.set()
            return await service.analyze(payload)

        report = asyncio.run(main())
        assert report == cli_output(["analyze", "c17"])
        assert builds.calls == 2
        assert service.flights.started == 2


class TestStreaming:
    def test_stream_interleaves_progress_then_identical_report(self):
        service = AnalysisService()
        payload = {
            "circuit": "wide28",
            "backend": "adaptive",
            "target_halfwidth": 0.5,
            "initial_samples": 32,
            "max_samples": 64,
        }

        async def main():
            chunks = []
            async for chunk in service.analyze_stream(payload):
                chunks.append(chunk)
            return chunks

        chunks = asyncio.run(main())
        progress = [c for c in chunks if c.startswith("progress: ")]
        assert progress, "adaptive build produced no progress lines"
        assert all(c.startswith("progress: round ") for c in progress)
        report = "".join(c for c in chunks if not c.startswith("progress: "))
        assert report == cli_output(
            ["analyze", "wide28", "--backend", "adaptive",
             "--target-halfwidth", "0.5", "--initial-samples", "32",
             "--max-samples", "64"]
        )

    def test_warm_stream_skips_progress(self):
        service = AnalysisService()
        payload = {
            "circuit": "wide28",
            "backend": "adaptive",
            "target_halfwidth": 0.5,
            "initial_samples": 32,
            "max_samples": 64,
        }

        async def collect():
            return [c async for c in service.analyze_stream(payload)]

        cold = asyncio.run(collect())
        warm = asyncio.run(collect())
        assert any(c.startswith("progress: ") for c in cold)
        assert not any(c.startswith("progress: ") for c in warm)
        # Identical final report either way.
        assert cold[-1] == warm[-1]
        assert len(warm) == 1

    def test_stream_with_non_adaptive_backend_is_just_the_report(self):
        service = AnalysisService()
        payload = {"circuit": "c17"}

        async def collect():
            return [c async for c in service.analyze_stream(payload)]

        chunks = asyncio.run(collect())
        assert len(chunks) == 1
        assert chunks[0] == cli_output(["analyze", "c17"])

    def test_streamed_and_plain_requests_share_cache_keys(self):
        # on_round must not leak into cache identity: a streamed run
        # warms the cache for a later plain request of the same config.
        service = AnalysisService()
        payload = {
            "circuit": "wide28",
            "backend": "adaptive",
            "target_halfwidth": 0.5,
            "initial_samples": 32,
            "max_samples": 64,
        }

        async def main():
            async for _chunk in service.analyze_stream(payload):
                pass
            before = service.flights.started
            await service.analyze(payload)
            return before

        started_after_stream = asyncio.run(main())
        assert service.flights.started == started_after_stream


class TestCacheKeys:
    def test_execution_label_default_backend(self):
        service = AnalysisService()
        request = service._resolve("analyze", {"circuit": "c17"})
        assert _execution_label(request.backend) == (None, None)

    def test_partition_key_separates_max_inputs(self):
        service = AnalysisService()
        a = service._resolve(
            "partition", {"circuit": "mc", "max_inputs": 4}
        )
        b = service._resolve(
            "partition", {"circuit": "mc", "max_inputs": 5}
        )
        assert a.cache_key != b.cache_key

    def test_stats_snapshot_shape(self):
        service = AnalysisService()
        snapshot = service.stats_snapshot()
        assert set(snapshot) == {
            "requests", "endpoints", "hot_tier", "flights"
        }
        assert snapshot["flights"] == {
            "started": 0, "joined": 0, "in_flight": 0
        }
