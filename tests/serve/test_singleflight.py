"""Unit tests for the single-flight build deduplicator."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import SingleFlight


def run(coro):
    return asyncio.run(coro)


class Factory:
    """A controllable factory: counts calls, can block on an event."""

    def __init__(self, value="built", gate=None):
        self.calls = 0
        self.value = value
        self.gate = gate

    async def __call__(self):
        self.calls += 1
        if self.gate is not None:
            await self.gate.wait()
        return f"{self.value}#{self.calls}"


class TestDedup:
    def test_concurrent_identical_requests_build_once(self):
        async def main():
            flight = SingleFlight()
            gate = asyncio.Event()
            factory = Factory(gate=gate)

            async def request():
                return await flight.run("key", factory)

            tasks = [asyncio.create_task(request()) for _ in range(5)]
            while flight.joined < 4:
                await asyncio.sleep(0)
            assert flight.in_flight == 1
            assert flight.keys() == ["key"]
            gate.set()
            results = await asyncio.gather(*tasks)
            return results, factory.calls, flight.stats()

        results, calls, stats = run(main())
        assert calls == 1
        assert results == ["built#1"] * 5
        assert stats == {"started": 1, "joined": 4, "in_flight": 0}

    def test_distinct_keys_run_independently(self):
        async def main():
            flight = SingleFlight()
            fa, fb = Factory("a"), Factory("b")
            ra, rb = await asyncio.gather(
                flight.run("a", fa), flight.run("b", fb)
            )
            return ra, rb, fa.calls, fb.calls, flight.started

        ra, rb, ca, cb, started = run(main())
        assert (ra, rb) == ("a#1", "b#1")
        assert (ca, cb) == (1, 1)
        assert started == 2

    def test_sequential_requests_lead_fresh_flights(self):
        async def main():
            flight = SingleFlight()
            factory = Factory()
            first = await flight.run("key", factory)
            second = await flight.run("key", factory)
            return first, second, factory.calls, flight.stats()

        first, second, calls, stats = run(main())
        # No result reuse: that's the cache's job, one layer up.
        assert (first, second) == ("built#1", "built#2")
        assert calls == 2
        assert stats == {"started": 2, "joined": 0, "in_flight": 0}


class TestErrors:
    def test_error_rejects_every_waiter_then_resets(self):
        async def main():
            flight = SingleFlight()
            gate = asyncio.Event()
            state = {"calls": 0}

            async def failing():
                state["calls"] += 1
                await gate.wait()
                raise ValueError("table build exploded")

            async def request():
                return await flight.run("key", failing)

            tasks = [asyncio.create_task(request()) for _ in range(3)]
            while flight.joined < 2:
                await asyncio.sleep(0)
            gate.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            # The failed flight is gone; a retry leads a fresh build.
            retry = await flight.run("key", Factory("retry"))
            return results, retry, state["calls"], flight.in_flight

        results, retry, calls, in_flight = run(main())
        assert calls == 1
        assert all(isinstance(r, ValueError) for r in results)
        assert {str(r) for r in results} == {"table build exploded"}
        assert retry == "retry#1"
        assert in_flight == 0


class TestCancellation:
    def test_one_waiter_cancelling_leaves_others_running(self):
        async def main():
            flight = SingleFlight()
            gate = asyncio.Event()
            factory = Factory(gate=gate)

            async def request():
                return await flight.run("key", factory)

            keeper = asyncio.create_task(request())
            leaver = asyncio.create_task(request())
            while flight.joined < 1:
                await asyncio.sleep(0)
            leaver.cancel()
            with pytest.raises(asyncio.CancelledError):
                await leaver
            assert flight.in_flight == 1  # the build survived
            gate.set()
            return await keeper, factory.calls

        result, calls = run(main())
        assert result == "built#1"
        assert calls == 1

    def test_last_waiter_cancelling_abandons_the_flight(self):
        async def main():
            flight = SingleFlight()
            gate = asyncio.Event()
            factory = Factory(gate=gate)

            only = asyncio.create_task(flight.run("key", factory))
            while flight.started < 1:
                await asyncio.sleep(0)
            only.cancel()
            with pytest.raises(asyncio.CancelledError):
                await only
            await asyncio.sleep(0)  # let the leader task unwind
            assert flight.in_flight == 0
            # The flight is reusable: the next request leads fresh.
            gate.set()
            fresh = await flight.run("key", factory)
            return fresh, factory.calls

        fresh, calls = run(main())
        assert fresh == "built#2"
        assert calls == 2

    def test_keys_sorted_for_stable_reporting(self):
        async def main():
            flight = SingleFlight()
            gate = asyncio.Event()
            tasks = [
                asyncio.create_task(flight.run(k, Factory(k, gate=gate)))
                for k in ("zebra", "alpha", "mid")
            ]
            while flight.started < 3:
                await asyncio.sleep(0)
            keys = flight.keys()
            gate.set()
            await asyncio.gather(*tasks)
            return keys

        assert run(main()) == ["alpha", "mid", "zebra"]
