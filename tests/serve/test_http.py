"""Socket-level tests of the HTTP transport (`repro serve`)."""

from __future__ import annotations

import io
import json
import re
import socket
import threading
import urllib.error
import urllib.request
from contextlib import redirect_stdout

import pytest

from repro import cli
from repro.serve import AnalysisService, BackgroundServer


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(AnalysisService()) as running:
        yield running


def get(server, path):
    with urllib.request.urlopen(server.address + path, timeout=60) as resp:
        return resp.status, resp.read()


def post(server, path, payload):
    request = urllib.request.Request(
        server.address + path, data=json.dumps(payload).encode()
    )
    with urllib.request.urlopen(request, timeout=120) as resp:
        return resp.status, resp.read()


def cli_output(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli.main(argv)
    assert code == 0
    return buffer.getvalue()


class TestPlumbing:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/nope")
        assert err.value.code == 404

    def test_invalid_json_400(self, server):
        request = urllib.request.Request(
            server.address + "/analyze", data=b"{not json"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=60)
        assert err.value.code == 400
        assert "JSON" in json.loads(err.value.read())["error"]

    def test_bad_request_400_with_cli_error_text(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/analyze", {"circuit": "no_such_circuit"})
        assert err.value.code == 400
        assert "unknown circuit" in json.loads(err.value.read())["error"]

    def test_garbage_request_line_just_closes(self, server):
        host, port = server.host, server.port
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            assert sock.recv(1024) == b""  # closed without a response


class TestEndpoints:
    def test_analyze_byte_identical_to_cli(self, server):
        payload = {
            "circuit": "c17",
            "backend": "packed",
            "samples": 16,
            "seed": 7,
        }
        status, body = post(server, "/analyze", payload)
        assert status == 200
        assert body.decode() == cli_output(
            ["analyze", "c17", "--backend", "packed", "--samples", "16",
             "--seed", "7"]
        )

    def test_escape_byte_identical_to_cli(self, server):
        status, body = post(
            server, "/escape", {"circuit": "c17", "k": 10, "nmax": 3}
        )
        assert status == 200
        assert body.decode() == cli_output(
            ["escape", "c17", "--k", "10", "--nmax", "3"]
        )

    def test_partition_byte_identical_to_cli(self, server):
        payload = {
            "circuit": "mc",
            "max_inputs": 4,
            "backend": "sampled",
            "samples": 8,
        }
        status, body = post(server, "/partition", payload)
        assert status == 200
        assert body.decode() == cli_output(
            ["partition", "mc", "--max-inputs", "4", "--backend",
             "sampled", "--samples", "8"]
        )

    def test_cli_analysis_error_is_a_400(self, server):
        # Exhaustive partitioning fails on a cone wider than the bound;
        # the service mirrors the CLI's error as a client error.
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/partition", {"circuit": "mc", "max_inputs": 4})
        assert err.value.code == 400
        assert "cannot partition" in json.loads(err.value.read())["error"]

    def test_stream_progress_then_identical_report(self, server):
        payload = {
            "circuit": "wide28",
            "backend": "adaptive",
            "target_halfwidth": 0.5,
            "initial_samples": 32,
            "max_samples": 64,
            "seed": 1,
        }
        status, body = post(server, "/analyze/stream", payload)
        assert status == 200
        lines = body.decode().splitlines(keepends=True)
        progress = [l for l in lines if l.startswith("progress: ")]
        assert progress
        report = "".join(l for l in lines if not l.startswith("progress: "))
        assert report == cli_output(
            ["analyze", "wide28", "--backend", "adaptive",
             "--target-halfwidth", "0.5", "--initial-samples", "32",
             "--max-samples", "64", "--seed", "1"]
        )

    def test_stream_validation_error_is_a_clean_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/analyze/stream", {"circuit": "nope"})
        assert err.value.code == 400


class TestStats:
    def test_stats_reflect_traffic_and_flights(self, server):
        payload = {"circuit": "c17", "seed": 11}
        K = 4
        results = []

        def client():
            results.append(post(server, "/analyze", payload))

        threads = [threading.Thread(target=client) for _ in range(K)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({body for _status, body in results}) == 1

        status, body = get(server, "/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["requests"] >= K
        endpoint = stats["endpoints"]["POST /analyze"]
        assert endpoint["requests"] >= K
        latency = endpoint["latency"]
        assert latency["count"] >= K
        assert latency["p99_s"] >= latency["p50_s"] > 0
        assert "buckets" in latency
        flights = stats["flights"]
        # seed=11 is unique to this test: exactly one build happened,
        # however the K concurrent requests interleaved.
        assert flights["started"] >= 1
        assert flights["in_flight"] == 0
        hot = stats["hot_tier"]
        assert hot["capacity"] >= 1
        assert hot["hits"] + hot["misses"] >= K


class TestObservability:
    def test_metrics_is_parseable_prometheus_text(self, server):
        get(server, "/healthz")  # ensure at least one observed request
        with urllib.request.urlopen(
            server.address + "/metrics", timeout=60
        ) as resp:
            assert resp.status == 200
            content_type = resp.headers["Content-Type"]
            body = resp.read().decode()
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        series = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$"
        )
        for line in body.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert series.match(line), line
                float(line.rsplit(" ", 1)[1])  # the sample value parses
        assert "repro_http_requests_total" in body
        assert "repro_http_request_seconds_bucket" in body
        assert 'le="+Inf"' in body
        assert "repro_hot_tier_" in body
        assert "repro_flights_" in body

    def test_untraced_responses_have_no_trace_headers(self, server):
        # Tracing off (the default): zero tracer overhead, no headers.
        with urllib.request.urlopen(
            server.address + "/healthz", timeout=60
        ) as resp:
            assert resp.headers["X-Repro-Trace-Id"] is None
            assert resp.headers["X-Repro-Span-Id"] is None

    def test_traced_responses_carry_trace_headers(self):
        from repro import obs
        from repro.obs.tracer import ListTraceWriter, Tracer

        previous = obs.activate(Tracer(ListTraceWriter(), trace_id="SRV"))
        try:
            with BackgroundServer(AnalysisService()) as fresh:
                with urllib.request.urlopen(
                    fresh.address + "/healthz", timeout=60
                ) as resp:
                    assert resp.headers["X-Repro-Trace-Id"] == "SRV"
                    first_span = resp.headers["X-Repro-Span-Id"]
                with urllib.request.urlopen(
                    fresh.address + "/healthz", timeout=60
                ) as resp:
                    # Same serving trace, a distinct span per request.
                    assert resp.headers["X-Repro-Trace-Id"] == "SRV"
                    assert resp.headers["X-Repro-Span-Id"] != first_span
        finally:
            obs.reset(previous)

    def test_idle_endpoint_stats_report_null_quantiles(self):
        # Regression: an endpoint with zero completed requests must
        # serve null p50/p99, not the lowest bucket bound.  The very
        # first GET /stats sees its own route registered but not yet
        # observed, so a fresh server exposes the empty histogram.
        with BackgroundServer(AnalysisService()) as fresh:
            status, body = get(fresh, "/stats")
        assert status == 200
        endpoint = json.loads(body)["endpoints"]["GET /stats"]
        assert endpoint["requests"] == 0
        latency = endpoint["latency"]
        assert latency["count"] == 0
        assert latency["p50_s"] is None
        assert latency["p99_s"] is None
