"""Unit tests for the shared size-bounded LRU (`repro.caching`)."""

from __future__ import annotations

import pytest

from repro.caching import DEFAULT_TABLE_LRU, LRUCache, table_lru_capacity
from repro.errors import AnalysisError


class TestCapacityResolution:
    def test_default_preserved(self, monkeypatch):
        monkeypatch.delenv("REPRO_TABLE_LRU", raising=False)
        assert table_lru_capacity() == DEFAULT_TABLE_LRU == 40

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TABLE_LRU", "3")
        assert table_lru_capacity() == 3

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TABLE_LRU", "")
        assert table_lru_capacity() == DEFAULT_TABLE_LRU

    def test_non_integer_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TABLE_LRU", "many")
        with pytest.raises(AnalysisError, match="must be an integer"):
            table_lru_capacity()

    def test_non_positive_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TABLE_LRU", "0")
        with pytest.raises(AnalysisError, match=">= 1"):
            table_lru_capacity()

    def test_explicit_default_parameter(self, monkeypatch):
        monkeypatch.delenv("REPRO_TABLE_LRU", raising=False)
        assert table_lru_capacity(default=7) == 7


class TestLRUCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(AnalysisError, match=">= 1"):
            LRUCache(0)

    def test_get_put_roundtrip(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert "a" in cache
        assert len(cache) == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now the oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh via put
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_peek_does_not_touch_recency_or_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        assert (cache.hits, cache.misses) == (0, 0)
        cache.put("c", 3)  # "a" was NOT refreshed by peek
        assert cache.peek("a") is None

    def test_none_values_rejected(self):
        cache = LRUCache(1)
        with pytest.raises(AnalysisError, match="must not be None"):
            cache.put("a", None)

    def test_hit_rate_and_stats(self):
        cache = LRUCache(4)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("nope")
        stats = cache.stats()
        assert stats["capacity"] == 4
        assert stats["size"] == 1
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.get("a") is None


class TestExperimentLayerIntegration:
    def test_experiment_caches_are_shared_lru_instances(self):
        from repro.experiments import common

        assert isinstance(common._UNIVERSE_CACHE, LRUCache)
        assert isinstance(common._WORST_CASE_CACHE, LRUCache)
        assert common._UNIVERSE_CACHE.capacity == table_lru_capacity()

    def test_get_universe_hits_the_lru(self):
        from repro.experiments.common import get_universe

        first = get_universe("paper_example")
        again = get_universe("paper_example")
        assert first is again
