"""The metrics registry: instruments, label addressing, rendering.

The Prometheus rendering must be deterministic (families by name,
series by label values, cumulative buckets) because the serve smoke
test and operators' scrapers diff it; the empty-histogram quantile
contract (``None``, not the lowest bound) is the ``/stats`` regression
this PR fixes.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negatives(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match=">= 0"):
            counter.inc(-1)

    def test_gauge_sets_and_adds(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_histogram_buckets_by_bisect(self):
        h = Histogram(bounds=(0.1, 1.0))
        h.observe(0.05)   # first bucket (le 0.1)
        h.observe(0.1)    # boundary lands in its own bucket
        h.observe(0.5)    # second bucket
        h.observe(99.0)   # overflow
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.max == 99.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram(bounds=(1.0, 0.5))
        with pytest.raises(ValueError, match="increasing"):
            Histogram(bounds=(1.0, 1.0))


class TestEmptyHistogramQuantiles:
    """Regression: an idle endpoint must report null, not a fake 1 ms."""

    def test_empty_quantiles_are_none(self):
        h = Histogram()
        assert h.quantile(0.5) is None
        assert h.quantile(0.99) is None

    def test_empty_snapshot_serializes_null_quantiles(self):
        snapshot = Histogram().snapshot()
        assert snapshot["p50_s"] is None
        assert snapshot["p99_s"] is None
        assert snapshot["count"] == 0

    def test_first_observation_restores_quantiles(self):
        h = Histogram()
        h.observe(0.003)
        assert h.quantile(0.5) == 0.005  # upper bound of its bucket
        assert h.snapshot()["p50_s"] == 0.005

    def test_overflow_quantile_reports_observed_max(self):
        h = Histogram()
        h.observe(500.0)
        assert h.quantile(0.99) == 500.0


class TestRegistry:
    def test_same_labels_any_kwarg_order_address_one_series(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", kind="a", outcome="hit").inc()
        registry.counter("repro_x_total", outcome="hit", kind="a").inc()
        snapshot = registry.snapshot()
        series = snapshot["repro_x_total"]
        assert list(series.values()) == [2.0]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="counter"):
            registry.gauge("repro_x_total")

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="metric name"):
            registry.counter("0bad")
        with pytest.raises(ValueError, match="label name"):
            registry.counter("repro_ok", **{"le": "x"})

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc()
        registry.reset()
        assert registry.render() == ""


class TestRendering:
    def test_counter_and_gauge_exposition(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_b_total", help="b things", kind="stuck_at"
        ).inc(3)
        registry.gauge("repro_a_depth").set(2)
        text = registry.render()
        assert text == (
            "# TYPE repro_a_depth gauge\n"
            "repro_a_depth 2\n"
            "# HELP repro_b_total b things\n"
            "# TYPE repro_b_total counter\n"
            'repro_b_total{kind="stuck_at"} 3\n'
        )

    def test_histogram_exposition_is_cumulative_with_inf(self):
        registry = MetricsRegistry()
        h = registry.histogram("repro_lat_seconds", bounds=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(10.0)
        text = registry.render()
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_sum 10.55" in text
        assert "repro_lat_seconds_count 3" in text

    def test_series_order_is_deterministic(self):
        def build() -> str:
            registry = MetricsRegistry()
            registry.counter("repro_x_total", kind="b").inc()
            registry.counter("repro_x_total", kind="a").inc(2)
            registry.gauge("repro_a_gauge").set(1)
            return registry.render()

        text = build()
        assert text == build()
        assert text.index('kind="a"') < text.index('kind="b"')
        assert text.index("repro_a_gauge") < text.index("repro_x_total")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", path='a"b\\c\nd').inc()
        text = registry.render()
        assert '{path="a\\"b\\\\c\\nd"}' in text

    def test_default_bounds_cover_one_ms_to_one_hundred_seconds(self):
        assert DEFAULT_BOUNDS[0] == 0.001
        assert DEFAULT_BOUNDS[-1] == 100.0
        assert list(DEFAULT_BOUNDS) == sorted(DEFAULT_BOUNDS)
