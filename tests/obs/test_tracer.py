"""The span tracer: deterministic ids, stitching, writers, the facade.

Determinism is the load-bearing property: under a ``ManualClock`` and a
pinned trace id, two identical traced programs must serialize to
byte-identical JSONL.  Stitching is the second: a worker-side tracer
with its *own* trace id must adopt the submitter's id when handed a
propagated ``(trace_id, span_id)`` tuple.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.obs.clock import ManualClock
from repro.obs.tracer import JsonlTraceWriter, ListTraceWriter, Tracer


def manual_tracer(
    trace_id: str = "T", proc: str | None = "p1"
) -> tuple[Tracer, ListTraceWriter, ManualClock]:
    writer = ListTraceWriter()
    clock = ManualClock()
    return Tracer(writer, clock=clock, trace_id=trace_id, proc=proc), writer, clock


class TestSpanIds:
    def test_root_spans_number_sequentially(self):
        tracer, writer, _ = manual_tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r["span"] for r in writer.records] == ["1", "2"]
        assert all(r["parent"] is None for r in writer.records)

    def test_nesting_follows_the_ambient_context(self):
        tracer, writer, _ = manual_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        spans = {r["name"]: r for r in writer.records}
        assert spans["outer"]["span"] == "1"
        # Inner spans finish (and record) before the outer one.
        assert [r["span"] for r in writer.records[:2]] == ["1.1", "1.2"]
        assert all(r["parent"] == "1" for r in writer.records[:2])

    def test_ambient_context_restored_after_exit(self):
        tracer, _, _ = manual_tracer()
        assert obs.current_context() is None
        with tracer.span("a") as span:
            assert obs.current_context() is span.context
        assert obs.current_context() is None

    def test_explicit_span_id_overrides_allocation(self):
        tracer, writer, _ = manual_tracer()
        with tracer.span("shard", span_id="1.s7"):
            pass
        assert writer.records[0]["span"] == "1.s7"

    def test_root_prefix_namespaces_root_ids_only(self):
        writer = ListTraceWriter()
        tracer = Tracer(
            writer, clock=ManualClock(), trace_id="T", root_prefix="w9-"
        )
        with tracer.span("reclaim"):
            with tracer.span("inner"):
                pass
        tracer.event("parked")
        ids = [r["span"] for r in writer.records]
        # Roots get the worker namespace; children inherit the parent
        # id, so only roots needed disambiguation.
        assert ids == ["w9-1.1", "w9-1", "w9-2"]


class TestStitching:
    def test_remote_parent_adopts_submitter_trace_id(self):
        # The worker has its own tracer (own trace id, own process) but
        # opens the shard span with the submitter's propagated tuple.
        worker, writer, _ = manual_tracer(trace_id="WORKER", proc="w")
        with worker.span(
            "shard_build", parent=("T1", "1.2"), span_id="1.2.s3"
        ):
            pass
        record = writer.records[0]
        assert record["trace"] == "T1"
        assert record["span"] == "1.2.s3"
        assert record["parent"] == "1.2"

    def test_remote_tuple_comes_from_span_remote(self):
        tracer, _, _ = manual_tracer()
        with tracer.span("build") as span:
            assert span.remote() == ("T", "1")

    def test_record_writes_externally_measured_span(self):
        tracer, writer, _ = manual_tracer()
        tracer.record(
            "queue_wait", 0.25, parent=("T1", "1.2"), span_id="1.2.q3"
        )
        record = writer.records[0]
        assert record["trace"] == "T1"
        assert record["dur"] == 0.25
        assert record["span"] == "1.2.q3"


class TestRecords:
    def test_durations_come_from_the_injected_clock(self):
        tracer, writer, clock = manual_tracer()
        with tracer.span("timed"):
            clock.advance(1.5)
        assert writer.records[0]["dur"] == 1.5
        assert writer.records[0]["t0"] == 1_000_000.0

    def test_exception_stamps_error_attr_and_still_records(self):
        tracer, writer, _ = manual_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        record = writer.records[0]
        assert record["attrs"]["error"] == "RuntimeError"

    def test_attrs_are_sorted_and_set_merges(self):
        tracer, writer, _ = manual_tracer()
        with tracer.span("s", zebra=1, alpha=2) as span:
            span.set(mid=3)
        assert list(writer.records[0]["attrs"]) == ["alpha", "mid", "zebra"]

    def test_trace_is_byte_deterministic_under_manual_clock(self):
        def run() -> bytes:
            tracer, writer, clock = manual_tracer()
            with tracer.span("build", circuit="lion"):
                clock.advance(0.5)
                with tracer.span("shard", span_id="1.s0"):
                    clock.advance(0.25)
            tracer.event("done", parent=None, built=2)
            return b"".join(
                json.dumps(
                    r, sort_keys=True, separators=(",", ":")
                ).encode() + b"\n"
                for r in writer.records
            )

        assert run() == run()

    def test_proc_defaults_to_pid_at_record_time(self):
        import os

        tracer, writer, _ = manual_tracer(proc=None)
        with tracer.span("s"):
            pass
        assert writer.records[0]["proc"] == str(os.getpid())


class TestJsonlWriter:
    def test_truncate_then_append_interleaves_processes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        first = JsonlTraceWriter(str(path), truncate=True)
        first.write({"kind": "span", "name": "a"})
        first.close()
        # A second writer (another process in production) appends.
        second = JsonlTraceWriter(str(path))
        second.write({"kind": "span", "name": "b"})
        second.close()
        names = [
            json.loads(line)["name"]
            for line in path.read_text().splitlines()
        ]
        assert names == ["a", "b"]

    def test_truncate_empties_a_previous_run(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"stale": true}\n')
        writer = JsonlTraceWriter(str(path), truncate=True)
        writer.close()
        assert path.read_text() == ""

    def test_lazy_open_never_creates_an_unused_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = JsonlTraceWriter(str(path))
        writer.close()
        assert not path.exists()


class TestActivation:
    def test_null_tracer_is_the_default(self):
        assert not obs.tracing_enabled()
        span = obs.span("anything")
        assert span.remote() is None
        with span:
            pass  # shared no-op; nothing written anywhere

    def test_environment_resolution_joins_a_trace(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE_FILE", str(path))
        obs.reset()  # drop the conftest pin; re-resolve from env
        assert obs.tracing_enabled()
        with obs.span("from_env"):
            pass
        obs.current_tracer().close()
        assert json.loads(path.read_text())["name"] == "from_env"

    def test_trace_id_env_pins_the_id(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_ID", "PINNED")
        tracer = Tracer(ListTraceWriter())
        assert tracer.trace_id == "PINNED"

    def test_activate_returns_previous_resolution(self):
        tracer, _, _ = manual_tracer()
        previous = obs.activate(tracer)
        assert obs.current_tracer() is tracer
        obs.reset(previous)
        assert obs.current_tracer() is previous


class TestEventFacade:
    def test_event_writes_record_and_deterministic_log_line(self, caplog):
        tracer, writer, _ = manual_tracer()
        obs.activate(tracer)
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            obs.event("lease_reclaimed", key="abc123", worker="w1")
        assert writer.records[0]["kind"] == "event"
        assert writer.records[0]["name"] == "lease_reclaimed"
        assert caplog.messages == ["event=lease_reclaimed key=abc123 worker=w1"]

    def test_event_logs_even_when_tracing_is_off(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            obs.event("shard_parked", key="k", error="AnalysisError: x")
        assert "event=shard_parked" in caplog.messages[0]
