"""Trace analysis: forest building, self time, coverage, rendering.

Traces are produced with a ``ManualClock`` tracer writing real JSONL,
then read back through ``load_trace`` — the same round trip ``repro
trace summary`` makes — so these tests pin the whole pipeline, not
just the aggregation arithmetic.
"""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.obs.clock import ManualClock
from repro.obs.summary import (
    build_forest,
    load_trace,
    render_summary,
    render_tree,
    summarize,
)
from repro.obs.tracer import JsonlTraceWriter, Tracer


def write_sample_trace(path: str) -> None:
    """analyze(2s) -> build(1.5s) -> shards s0 (local) + s1 (remote).

    The two shards take 1s each, so they *overrun* their 1.5s parent —
    the shape a parallel build produces — which exercises the self-time
    clamp.  The remote shard is written by a second tracer with its own
    trace id but a propagated parent tuple, like a queue worker.
    """
    clock = ManualClock()
    tracer = Tracer(
        JsonlTraceWriter(path, truncate=True),
        clock=clock,
        trace_id="T",
        proc="sub",
    )
    with tracer.span("analyze"):
        with tracer.span("build", circuit="lion") as build:
            with tracer.span("shard", span_id=f"{build.context.span_id}.s0"):
                clock.advance(1.0)
            clock.advance(0.5)
        tracer.event("done", built=2)
        clock.advance(0.5)
    # A worker process: different tracer, stitches via the remote tuple.
    worker = Tracer(
        JsonlTraceWriter(path), clock=clock, trace_id="W", proc="wrk"
    )
    with worker.span("shard", parent=("T", "1.1"), span_id="1.1.s1"):
        clock.advance(1.0)
    tracer.close()
    worker.close()


@pytest.fixture()
def sample_summary(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    write_sample_trace(path)
    return summarize(load_trace(path))


class TestLoadAndForest:
    def test_round_trip_reads_every_record(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_sample_trace(path)
        nodes = load_trace(path)
        assert len(nodes) == 5  # 4 spans + 1 event
        assert {n.kind for n in nodes} == {"span", "event"}

    def test_worker_spans_join_the_submitter_trace(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_sample_trace(path)
        forest = build_forest(load_trace(path))
        assert list(forest) == ["T"]  # one stitched trace, no orphans
        (root,) = forest["T"]
        build = root.children[0]
        assert sorted(c.span_id for c in build.children) == [
            "1.1.s0",
            "1.1.s1",
        ]
        assert {c.proc for c in build.children} == {"sub", "wrk"}

    def test_bad_record_names_file_and_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = '{"kind":"span","trace":"T","span":"1","name":"a"}'
        path.write_text(good + "\nnot json\n")
        with pytest.raises(AnalysisError, match=r"trace\.jsonl:2:"):
            load_trace(str(path))

    def test_record_missing_keys_is_a_clean_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"span"}\n')
        with pytest.raises(AnalysisError, match="missing key"):
            load_trace(str(path))

    def test_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot read trace file"):
            load_trace(str(tmp_path / "nope.jsonl"))

    def test_empty_trace_is_a_clean_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        with pytest.raises(AnalysisError, match="empty"):
            summarize(load_trace(str(path)))


class TestSummarize:
    def test_wall_and_coverage(self, sample_summary):
        assert sample_summary.trace_id == "T"
        assert sample_summary.span_count == 4
        assert sample_summary.event_count == 1
        assert sample_summary.wall == pytest.approx(2.0)
        assert sample_summary.procs == ["sub", "wrk"]

    def test_parallel_overrun_clamps_self_time_at_zero(self, sample_summary):
        (root,) = sample_summary.roots
        build = root.children[0]
        # build is 1.5s but its shards sum to 2.0s (they ran in
        # parallel): self time clamps to zero instead of going negative.
        assert build.duration == pytest.approx(1.5)
        assert build.self_time == 0.0
        # The root's 0.5s tail is genuine self time.
        assert root.self_time == pytest.approx(0.5)

    def test_aggregates_sort_by_total_descending(self, sample_summary):
        names = [a.name for a in sample_summary.aggregates]
        assert names[0] == "analyze"
        shard = next(
            a for a in sample_summary.aggregates if a.name == "shard"
        )
        assert shard.count == 2
        assert shard.total == pytest.approx(2.0)

    def test_critical_path_follows_largest_child(self, sample_summary):
        names = [n.name for n in sample_summary.critical_path]
        assert names[0] == "analyze"
        assert names[1] == "build"
        assert names[2] == "shard"

    def test_unknown_trace_id_rejected(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_sample_trace(path)
        with pytest.raises(AnalysisError, match="not in file"):
            summarize(load_trace(path), trace_id="NOPE")


class TestRendering:
    def test_summary_text_is_deterministic(self, sample_summary):
        text = render_summary(sample_summary)
        assert text == render_summary(sample_summary)
        assert "trace T" in text
        assert "critical path:" in text
        assert "analyze" in text

    def test_summary_reports_coverage_percent(self, sample_summary):
        # analyze self = 2.0 - 1.5 = 0.5s -> 75.0% attributed.
        assert "attributed to child spans: 75.0%" in render_summary(
            sample_summary
        )

    def test_tree_shows_hierarchy_events_and_procs(self, sample_summary):
        text = render_tree(sample_summary)
        lines = text.splitlines()
        assert lines[0] == "trace T"
        assert lines[1].startswith("  analyze")
        assert any("* done" in line for line in lines)  # the event
        assert any("proc wrk" in line for line in lines)

    def test_top_limit_truncates_with_a_count(self, sample_summary):
        text = render_summary(sample_summary, top=1)
        assert "more span name(s)" in text
