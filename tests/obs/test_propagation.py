"""Trace context across process boundaries, and worker event lines.

The acceptance scenario: a traced submitter drives the queue executor,
one worker is killed mid-shard (the ``REPRO_QUEUE_CRASH_AFTER_CLAIM``
hook), the shard is requeued, and a healthy ``repro worker``
subprocess — started with *no* trace environment of its own — finishes
the build.  The single JSONL file must then contain one stitched
trace: worker-side ``shard_build`` spans carrying the submitter's
trace id, parented under the submitter's ``table_build`` span.

The second half covers the worker's structured event lines: lease
reclaims, requeues, and poisoned-shard parks must emit one-line
``event=...`` log records and bump the queue counters.
"""

from __future__ import annotations

import json
import logging
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs.tracer import ListTraceWriter
from repro.bench_suite.registry import get_circuit
from repro.faults.stuck_at import collapsed_stuck_at_faults
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import ExhaustiveBackend, SerialBackend
from repro.parallel import (
    ParallelBackend,
    QueueExecutor,
    QueueWorker,
    ShardTask,
    WorkQueue,
    shard_key,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def worker_env(trace_free: bool = True) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_QUEUE_DIR", None)
    env.pop("REPRO_QUEUE_CRASH_AFTER_CLAIM", None)
    if trace_free:
        # The point of the payload-borne trace path: workers join the
        # trace without inheriting any environment from the submitter.
        env.pop("REPRO_TRACE_FILE", None)
        env.pop("REPRO_TRACE_ID", None)
    return env


def spawn_worker(queue_dir: Path, *, crash: bool = False) -> subprocess.Popen:
    env = worker_env()
    if crash:
        env["REPRO_QUEUE_CRASH_AFTER_CLAIM"] = "1"
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--queue", str(queue_dir),
            "--poll-interval", "0.01",
            "--lease-timeout", "0.5",
            "--idle-exit", "60" if crash else "3",
        ],
        env=env,
    )


def poisoned_task() -> ShardTask:
    # The serial engine is capped at 16 inputs, so this shard raises a
    # clean AnalysisError on every build attempt.
    circuit = get_circuit("wide28")
    return ShardTask(
        circuit=circuit,
        backend=SerialBackend(),
        kind="stuck_at",
        faults=tuple(collapsed_stuck_at_faults(circuit)[:2]),
        base_signatures=None,
        shard_index=0,
    )


class TestCrossProcessStitching:
    def test_worker_spans_join_submitter_trace_through_crash_requeue(
        self, tmp_path, monkeypatch
    ):
        trace_path = tmp_path / "run.jsonl"
        monkeypatch.setenv("REPRO_TRACE_FILE", str(trace_path))
        tracer = obs.Tracer(
            obs.JsonlTraceWriter(str(trace_path), truncate=True)
        )
        obs.activate(tracer)

        queue_dir = tmp_path / "queue"
        backend = ParallelBackend(
            base=ExhaustiveBackend(),
            executor=QueueExecutor(
                queue_dir=str(queue_dir),
                poll_interval=0.01,
                wait_timeout=120.0,
                lease_timeout=0.5,
            ),
            cache_dir=str(tmp_path / "shards"),
        )

        crasher = spawn_worker(queue_dir, crash=True)
        result: dict = {}

        def submit() -> None:
            with obs.span("analyze"):
                universe = FaultUniverse(
                    get_circuit("lion"), backend=backend
                )
                result["f"] = universe.target_table.signatures
                result["g"] = universe.untargeted_table.signatures

        submitter = threading.Thread(target=submit, daemon=True)
        submitter.start()
        assert crasher.wait(timeout=60) == 42  # died holding a lease
        healthy = spawn_worker(queue_dir)
        submitter.join(timeout=120)
        assert not submitter.is_alive()
        assert healthy.wait(timeout=120) == 0
        tracer.close()

        reference = FaultUniverse(get_circuit("lion"))
        assert result["f"] == reference.target_table.signatures
        assert result["g"] == reference.untargeted_table.signatures

        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        # One stitched trace: every record — submitter and worker
        # alike — carries the submitter's trace id.
        assert {r["trace"] for r in records} == {tracer.trace_id}

        by_name: dict[str, list[dict]] = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        submitter_pid = str(os.getpid())

        # The submitter's parallel_build spans anchor the shard work
        # (workers write their own table_build spans too, for the
        # per-shard tables they build — those nest under their shard).
        builds = {
            r["span"]: r
            for r in by_name["parallel_build"]
            if r["proc"] == submitter_pid
        }
        assert builds, "submitter-side parallel_build spans missing"

        shards = by_name["shard_build"]
        assert shards, "no worker-side shard spans reached the file"
        for shard in shards:
            # Built in a worker subprocess, derived shard id, parented
            # under the submitter's parallel_build span.
            assert shard["proc"] != submitter_pid
            assert shard["parent"] in builds
            assert shard["span"].startswith(f"{shard['parent']}.s")

        for wait in by_name.get("queue_wait", []):
            assert wait["parent"] in builds
            assert ".q" in wait["span"]

    def test_pool_executor_tasks_carry_the_trace_tuple(self, tmp_path):
        # The tuple rides the pickled ShardTask itself; verify the
        # stamping side without any worker round trip.
        tracer = obs.Tracer(ListTraceWriter(), trace_id="T9")
        obs.activate(tracer)
        with obs.span("table_build") as span:
            assert span.remote() == ("T9", "1")


class TestWorkerEventLines:
    def test_poisoned_shard_park_emits_one_line_events(
        self, tmp_path, caplog
    ):
        queue = WorkQueue(tmp_path / "queue")
        bad = poisoned_task()
        key = shard_key(bad.circuit, bad.backend, bad.kind, bad.faults)
        queue.enqueue(bad, key, max_attempts=2)
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            stats = QueueWorker(queue, poll_interval=0.01).serve(
                idle_exit=0.2
            )
        assert stats["failed"] == 2
        assert queue.failed_keys() == [key]

        events = [m for m in caplog.messages if m.startswith("event=")]
        requeues = [m for m in events if m.startswith("event=task_requeued")]
        parks = [m for m in events if m.startswith("event=shard_parked")]
        assert len(requeues) == 1 and len(parks) == 1
        for line in requeues + parks:
            assert f"key={key}" in line
            assert "\n" not in line  # one line, grep-able
        assert "attempts=1" in requeues[0]
        assert "AnalysisError" in parks[0]

        counters = obs.metrics().snapshot()
        assert counters["repro_queue_requeues_total"] == {"{}": 1.0}
        assert counters["repro_queue_parked_total"] == {"{}": 1.0}

    def test_lease_reclaim_emits_event_and_counter(self, tmp_path, caplog):
        queue = WorkQueue(tmp_path / "queue")
        task = poisoned_task()
        key = shard_key(task.circuit, task.backend, task.kind, task.faults)
        queue.enqueue(task, key, max_attempts=5)
        lease = queue.claim("doomed-worker")
        assert lease is not None
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            requeued, failed = queue.reclaim_expired(
                lease_timeout=0.001, now=time.time() + 10.0
            )
        assert requeued == [key] and failed == []
        reclaims = [
            m for m in caplog.messages
            if m.startswith("event=lease_reclaimed")
        ]
        assert len(reclaims) == 1
        assert f"key={key}" in reclaims[0]
        counters = obs.metrics().snapshot()
        assert counters["repro_queue_reclaims_total"] == {"{}": 1.0}
