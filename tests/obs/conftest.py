"""Isolation for the observability suite.

The tracer resolution and the metrics registry are process-wide by
design (that is what makes instrumentation call sites cheap), so every
test here starts from a known-disabled tracer, a clean registry, and no
trace environment variables, and puts the lazy env resolution back
afterwards.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _isolate_obs(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_FILE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_ID", raising=False)
    obs.activate(obs.NULL_TRACER)
    obs.metrics().reset()
    yield
    obs.reset()  # back to lazy env resolution
    obs.metrics().reset()
