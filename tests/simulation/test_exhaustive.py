"""Exhaustive signatures: agreement with per-vector simulation, resim."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.logic.bitops import all_ones_mask
from repro.simulation.exhaustive import (
    detection_signature,
    line_signatures,
    output_response_signatures,
    resimulate_cone,
)
from repro.simulation.twoval import simulate_vector


class TestLineSignatures:
    @pytest.mark.parametrize(
        "fixture",
        ["example_circuit", "c17_circuit", "majority_circuit", "and_or_circuit"],
    )
    def test_matches_per_vector_sim(self, fixture, request):
        circuit = request.getfixturevalue(fixture)
        sigs = line_signatures(circuit)
        for v in range(1 << circuit.num_inputs):
            vals = simulate_vector(circuit, v)
            for lid in range(len(circuit.lines)):
                assert (sigs[lid] >> v) & 1 == vals[lid], (
                    f"line {circuit.lines[lid].name} vector {v}"
                )

    def test_example_known_signatures(self, example_circuit):
        sigs = line_signatures(example_circuit)
        c = example_circuit
        assert sigs[c.lid_of("9")] == 0xF000   # vectors 12-15
        assert sigs[c.lid_of("10")] == 0xC0C0  # vectors 6,7,14,15
        assert sigs[c.lid_of("11")] == 0xEEEE  # all but 0,4,8,12

    def test_output_response_signatures(self, example_circuit):
        outs = output_response_signatures(example_circuit)
        assert outs == [0xF000, 0xC0C0, 0xEEEE]

    def test_input_cap(self):
        from repro.circuit.builder import CircuitBuilder
        from repro.circuit.gate import GateType

        b = CircuitBuilder("wide")
        names = [b.input(f"x{i}") for i in range(25)]
        b.gate("g", GateType.AND, names)
        b.output("g")
        with pytest.raises(SimulationError, match="partition"):
            line_signatures(b.build())


class TestResimulateCone:
    def test_stuck_at_injection(self, example_circuit):
        c = example_circuit
        sigs = line_signatures(c)
        mask = all_ones_mask(4)
        # Line 5 (branch of 2) stuck at 1.
        changed = resimulate_cone(c, sigs, {c.lid_of("5"): mask}, mask)
        # 9 = AND(1, 5): with 5 forced to 1, 9 = 1.
        assert changed[c.lid_of("9")] == 0xFF00
        # 10 unaffected (depends on branch 6, not 5).
        assert c.lid_of("10") not in changed

    def test_noop_forcing(self, example_circuit):
        c = example_circuit
        sigs = line_signatures(c)
        mask = all_ones_mask(4)
        changed = resimulate_cone(
            c, sigs, {c.lid_of("9"): sigs[c.lid_of("9")]}, mask
        )
        assert changed == {}

    def test_detection_signature(self, example_circuit):
        c = example_circuit
        sigs = line_signatures(c)
        mask = all_ones_mask(4)
        # 9 stuck at 1: detected whenever fault-free 9 = 0 (9 is a PO).
        changed = resimulate_cone(c, sigs, {c.lid_of("9"): mask}, mask)
        det = detection_signature(c, sigs, changed)
        assert det == ~0xF000 & mask

    def test_partial_forcing_bridging_style(self, example_circuit):
        """Forcing only some vectors' bits (as bridging faults do)."""
        c = example_circuit
        sigs = line_signatures(c)
        mask = all_ones_mask(4)
        s9 = sigs[c.lid_of("9")]
        flipped = s9 ^ (1 << 12)  # flip vector 12 only
        changed = resimulate_cone(c, sigs, {c.lid_of("9"): flipped}, mask)
        det = detection_signature(c, sigs, changed)
        assert det == 1 << 12
