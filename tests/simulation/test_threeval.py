"""3-valued simulation: soundness versus 2-valued completions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.logic.cube import Cube
from repro.logic.values import ONE, X, ZERO
from repro.simulation.threeval import simulate_cube, simulate_cubes_dualrail
from repro.simulation.twoval import simulate_vector


def _cube_strategy(width):
    return st.lists(
        st.sampled_from([ZERO, ONE, X]), min_size=width, max_size=width
    ).map(
        lambda vals: _build_cube(vals)
    )


def _build_cube(vals):
    c = Cube.empty(len(vals))
    for i, v in enumerate(vals):
        c = c.with_input(i, v)
    return c


class TestScalarSoundness:
    @given(_cube_strategy(4))
    @settings(max_examples=100)
    def test_definite_values_agree_with_all_completions(self, cube):
        from repro.bench_suite.example import paper_example

        circuit = paper_example()
        vals3 = simulate_cube(circuit, cube)
        for v in cube.completions():
            vals2 = simulate_vector(circuit, v)
            for lid in range(len(circuit.lines)):
                if vals3[lid] != X:
                    assert vals3[lid] == vals2[lid]

    def test_fully_specified_matches_twoval(self, c17_circuit):
        for v in range(32):
            cube = Cube.full(v, 5)
            vals3 = simulate_cube(c17_circuit, cube)
            vals2 = simulate_vector(c17_circuit, v)
            assert vals3 == vals2

    def test_all_x_yields_x_at_gates(self, example_circuit):
        vals = simulate_cube(example_circuit, Cube.empty(4))
        for o in example_circuit.outputs:
            assert vals[o] == X

    def test_controlling_value_decides(self, example_circuit):
        # Input 2 = 0 forces 9 = 0 and 10 = 0 regardless of the X inputs.
        cube = Cube.from_string("x0xx")
        vals = simulate_cube(example_circuit, cube)
        c = example_circuit
        assert vals[c.lid_of("9")] == ZERO
        assert vals[c.lid_of("10")] == ZERO
        assert vals[c.lid_of("11")] == X

    def test_width_mismatch(self, example_circuit):
        with pytest.raises(SimulationError):
            simulate_cube(example_circuit, Cube.empty(3))

    def test_forced_line(self, example_circuit):
        c = example_circuit
        vals = simulate_cube(
            c, Cube.empty(4), forced={c.lid_of("9"): 1}
        )
        assert vals[c.lid_of("9")] == ONE


class TestDualRailBatch:
    def test_matches_scalar(self, example_circuit):
        cubes = [
            Cube.from_string("01xx"),
            Cube.from_string("xxxx"),
            Cube.from_string("1111"),
            Cube.from_string("x0x1"),
        ]
        ones, zeros = simulate_cubes_dualrail(example_circuit, cubes)
        for lane, cube in enumerate(cubes):
            scalar = simulate_cube(example_circuit, cube)
            for lid in range(len(example_circuit.lines)):
                o = (ones[lid] >> lane) & 1
                z = (zeros[lid] >> lane) & 1
                assert o + z <= 1
                if scalar[lid] == ONE:
                    assert o == 1
                elif scalar[lid] == ZERO:
                    assert z == 1
                else:
                    assert o == 0 and z == 0

    def test_matches_scalar_with_fault(self, c17_circuit):
        c = c17_circuit
        forced = {c.lid_of("11"): 0}
        cubes = [Cube.from_string("1x0x1"), Cube.from_string("xxxxx")]
        ones, zeros = simulate_cubes_dualrail(c, cubes, forced=forced)
        for lane, cube in enumerate(cubes):
            scalar = simulate_cube(c, cube, forced=forced)
            for lid in range(len(c.lines)):
                o = (ones[lid] >> lane) & 1
                z = (zeros[lid] >> lane) & 1
                if scalar[lid] == ONE:
                    assert o == 1
                elif scalar[lid] == ZERO:
                    assert z == 1
                else:
                    assert o == z == 0

    def test_empty_batch(self, example_circuit):
        ones, zeros = simulate_cubes_dualrail(example_circuit, [])
        assert all(o == 0 for o in ones)
        assert all(z == 0 for z in zeros)

    def test_width_mismatch(self, example_circuit):
        with pytest.raises(SimulationError):
            simulate_cubes_dualrail(example_circuit, [Cube.empty(2)])
