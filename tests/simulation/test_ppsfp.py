"""PPSFP kernel unit tests: word layout, batching, env gates.

The cross-engine bit-identity sweep lives in
``tests/test_ppsfp_differential.py``; this module covers the kernel's
own invariants — base words vs the big-int line signatures, batching
invariance, input-site forcing, the ``REPRO_PPSFP`` escape hatch, and
non-word-multiple universe sizes.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.bench_suite.randlogic import random_circuit
from repro.bench_suite.registry import get_circuit
from repro.circuit.netlist import LineKind
from repro.errors import SimulationError
from repro.faults.bridging import four_way_bridging_faults
from repro.faults.stuck_at import StuckAtFault, collapsed_stuck_at_faults
from repro.faultsim.detection import DetectionTable, universe_line_signatures
from repro.faultsim.sampling import VectorUniverse, draw_universe
from repro.logic.packed import pack_signature, words_for
from repro.simulation import ppsfp


def _sampled(circuit, k, seed=11):
    k = min(k, 1 << circuit.num_inputs)
    return draw_universe(circuit.num_inputs, k, seed=seed)


class TestInputLaneMatrix:
    @pytest.mark.parametrize("p,count", [(3, 5), (6, 64), (7, 100)])
    def test_matches_per_bit_definition(self, p, count):
        import random

        rng = random.Random(p * 1000 + count)
        vectors = [rng.randrange(1 << p) for _ in range(count)]
        rows = ppsfp.input_lane_matrix(p, vectors)
        assert rows.shape == (p, words_for(count))
        for j in range(p):
            want = 0
            for lane, v in enumerate(vectors):
                if (v >> (p - 1 - j)) & 1:
                    want |= 1 << lane
            got = int.from_bytes(
                rows[j].astype("<u8", copy=False).tobytes(), "little"
            )
            assert got == want

    def test_out_of_range_vector_rejected(self):
        with pytest.raises(SimulationError):
            ppsfp.input_lane_matrix(3, [0, 8])
        with pytest.raises(SimulationError):
            ppsfp.input_lane_matrix(3, [-1])

    def test_wide_vectors_rejected(self):
        with pytest.raises(SimulationError):
            ppsfp.input_lane_matrix(65, [0])


class TestBaseWords:
    @pytest.mark.parametrize("name", ["lion", "beecount", "wide28"])
    def test_base_matches_big_int_signatures(self, name):
        circuit = get_circuit(name)
        for universe in (
            VectorUniverse(circuit.num_inputs)
            if circuit.num_inputs <= 12
            else None,
            _sampled(circuit, 77),
        ):
            if universe is None:
                continue
            base = ppsfp.packed_line_words(circuit, universe)
            sigs = universe_line_signatures(circuit, universe)
            for lid, sig in enumerate(sigs):
                assert base[lid].tolist() == (
                    pack_signature(sig, universe.size).tolist()
                ), f"{name}: line {lid} base words differ"


class TestKernelGates:
    def test_env_disable(self, monkeypatch):
        u = VectorUniverse(4)
        monkeypatch.setenv("REPRO_PPSFP", "0")
        assert not ppsfp.kernel_enabled()
        assert not ppsfp.kernel_supports(u)
        circuit = get_circuit("lion")
        faults = collapsed_stuck_at_faults(circuit)
        assert (
            ppsfp.try_stuck_at_matrix(
                circuit, VectorUniverse(circuit.num_inputs), faults
            )
            is None
        )

    def test_word_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_PPSFP_MAX_WORDS", "2")
        assert ppsfp.kernel_supports(VectorUniverse(7))  # 128 bits = 2 words
        assert not ppsfp.kernel_supports(VectorUniverse(8))

    def test_batch_rows_bounds(self):
        assert ppsfp.batch_rows_for(1) == ppsfp.MAX_BATCH_ROWS
        assert ppsfp.batch_rows_for(10**9) == 1


class TestDetectionMatrices:
    def test_batching_invariance(self):
        circuit = random_circuit(5, num_inputs=6, num_gates=14)
        universe = _sampled(circuit, 37)  # not a multiple of 64
        faults = collapsed_stuck_at_faults(circuit)
        whole = ppsfp.stuck_at_matrix(
            circuit, universe, faults, batch_rows=len(faults)
        )
        tiny = ppsfp.stuck_at_matrix(circuit, universe, faults, batch_rows=3)
        assert whole.to_bigints() == tiny.to_bigints()
        bfaults = four_way_bridging_faults(circuit)
        whole = ppsfp.bridging_matrix(
            circuit, universe, bfaults, batch_rows=len(bfaults)
        )
        tiny = ppsfp.bridging_matrix(
            circuit, universe, bfaults, batch_rows=5
        )
        assert whole.to_bigints() == tiny.to_bigints()

    def test_matches_big_int_table_including_input_sites(self, monkeypatch):
        circuit = get_circuit("lion")
        universe = VectorUniverse(circuit.num_inputs)
        # Faults on every input and branch line, both polarities: the
        # pre-seeded input path and the branch-alias path are on-table.
        faults = [
            StuckAtFault(ln.lid, v)
            for ln in circuit.lines
            if ln.kind in (LineKind.INPUT, LineKind.BRANCH)
            for v in (0, 1)
        ]
        matrix = ppsfp.stuck_at_matrix(circuit, universe, faults)
        monkeypatch.setenv("REPRO_PPSFP", "0")
        table = DetectionTable.for_stuck_at(circuit, faults=faults)
        assert matrix.to_bigints() == table.signatures

    def test_non_word_multiple_universe(self, monkeypatch):
        circuit = random_circuit(9, num_inputs=7, num_gates=18)
        universe = _sampled(circuit, 70)  # 70 bits -> 2 words, 6 spare
        faults = collapsed_stuck_at_faults(circuit)
        matrix = ppsfp.stuck_at_matrix(circuit, universe, faults)
        monkeypatch.setenv("REPRO_PPSFP", "0")
        table = DetectionTable.for_stuck_at(
            circuit, faults=faults, universe=universe
        )
        assert matrix.to_bigints() == table.signatures
        mask = universe.mask
        for sig in matrix.to_bigints():
            assert sig & ~mask == 0, "detection bits beyond the universe"

    def test_zero_activation_bridging_rows_are_zero(self, monkeypatch):
        circuit = get_circuit("beecount")
        universe = _sampled(circuit, 9, seed=5)
        faults = four_way_bridging_faults(circuit)
        matrix = ppsfp.bridging_matrix(circuit, universe, faults)
        monkeypatch.setenv("REPRO_PPSFP", "0")
        table = DetectionTable.for_bridging(
            circuit,
            faults=faults,
            universe=universe,
            drop_undetectable=False,
        )
        assert matrix.to_bigints() == table.signatures
