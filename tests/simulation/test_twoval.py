"""2-valued simulation: reference semantics and batch consistency."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation.twoval import (
    output_values,
    response_word,
    simulate_batch,
    simulate_vector,
)


def _example_reference(v):
    """Hand-computed truth function of the Figure 1 circuit."""
    i1 = (v >> 3) & 1
    i2 = (v >> 2) & 1
    i3 = (v >> 1) & 1
    i4 = v & 1
    return (i1 & i2, i2 & i3, i3 | i4)


class TestSimulateVector:
    def test_example_truth_table(self, example_circuit):
        for v in range(16):
            assert output_values(example_circuit, v) == _example_reference(v)

    def test_vector_out_of_range(self, example_circuit):
        with pytest.raises(SimulationError):
            simulate_vector(example_circuit, 16)
        with pytest.raises(SimulationError):
            simulate_vector(example_circuit, -1)

    def test_branch_copies_stem(self, example_circuit):
        c = example_circuit
        vals = simulate_vector(c, 0b0100)
        assert vals[c.lid_of("5")] == vals[c.lid_of("2")] == 1
        assert vals[c.lid_of("6")] == 1

    def test_forced_value(self, example_circuit):
        c = example_circuit
        forced = {c.lid_of("9"): 1}
        vals = simulate_vector(c, 0, forced=forced)
        assert vals[c.lid_of("9")] == 1

    def test_forced_input(self, example_circuit):
        c = example_circuit
        forced = {c.lid_of("1"): 1}
        vals = simulate_vector(c, 0b0100, forced=forced)
        assert vals[c.lid_of("9")] == 1  # AND(1=forced 1, 5=1)


class TestBatch:
    def test_batch_matches_singles(self, c17_circuit):
        vectors = list(range(32))
        words = simulate_batch(c17_circuit, vectors)
        for lane, v in enumerate(vectors):
            single = simulate_vector(c17_circuit, v)
            for lid in range(len(c17_circuit.lines)):
                assert (words[lid] >> lane) & 1 == single[lid]

    def test_response_word(self, example_circuit):
        responses = response_word(example_circuit, [6, 7, 12])
        assert responses == [
            _example_reference(6),
            _example_reference(7),
            _example_reference(12),
        ]

    def test_empty_batch(self, example_circuit):
        words = simulate_batch(example_circuit, [])
        assert all(w == 0 for w in words)

    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_batch_any_order(self, c17_circuit, vectors):
        words = simulate_batch(c17_circuit, vectors)
        for lane, v in enumerate(vectors):
            expected = output_values(c17_circuit, v)
            got = tuple(
                (words[o] >> lane) & 1 for o in c17_circuit.outputs
            )
            assert got == expected


class TestMajority:
    def test_majority_function(self, majority_circuit):
        for v in range(8):
            a, b, c = (v >> 2) & 1, (v >> 1) & 1, v & 1
            expected = int(a + b + c >= 2)
            assert output_values(majority_circuit, v) == (expected,)


class TestXorTree:
    def test_parity(self, xor_tree_circuit):
        p = xor_tree_circuit.num_inputs
        for v in range(1 << p):
            expected = bin(v).count("1") % 2
            assert output_values(xor_tree_circuit, v) == (expected,)


class TestInputLaneWords:
    """The bulk bit-transpose must match the per-bit reference exactly."""

    def _reference_words(self, circuit, vectors):
        p = circuit.num_inputs
        words = [0] * p
        for lane, v in enumerate(vectors):
            for j in range(p):
                if (v >> (p - 1 - j)) & 1:
                    words[j] |= 1 << lane
        return words

    def test_bulk_matches_per_bit_loop_10k(self, c17_circuit):
        """Regression for the quadratic lane builder: 10k-vector batch."""
        import random

        from repro.simulation.twoval import _input_lane_words

        rng = random.Random(20250807)
        p = c17_circuit.num_inputs
        vectors = [rng.randrange(1 << p) for _ in range(10_000)]
        assert _input_lane_words(c17_circuit, vectors) == (
            self._reference_words(c17_circuit, vectors)
        )

    def test_numpy_less_fallback_matches(self, c17_circuit, monkeypatch):
        import repro.logic.packed as packed
        from repro.simulation.twoval import _input_lane_words

        vectors = [3, 17, 0, 31, 8, 8, 25]
        bulk = _input_lane_words(c17_circuit, vectors)
        monkeypatch.setattr(packed, "_np", None)
        loop = _input_lane_words(c17_circuit, vectors)
        assert bulk == loop == self._reference_words(c17_circuit, vectors)

    def test_out_of_range_rejected_on_both_paths(
        self, c17_circuit, monkeypatch
    ):
        import repro.logic.packed as packed
        from repro.simulation.twoval import _input_lane_words

        with pytest.raises(SimulationError):
            _input_lane_words(c17_circuit, [0, 1 << c17_circuit.num_inputs])
        monkeypatch.setattr(packed, "_np", None)
        with pytest.raises(SimulationError):
            _input_lane_words(c17_circuit, [0, 1 << c17_circuit.num_inputs])

    def test_simulate_batch_10k_consistent_with_singles(self, c17_circuit):
        import random

        rng = random.Random(7)
        vectors = [rng.randrange(32) for _ in range(10_000)]
        words = simulate_batch(c17_circuit, vectors)
        for lane in (0, 1, 4999, 9998, 9999):
            expected = output_values(c17_circuit, vectors[lane])
            got = tuple(
                (words[o] >> lane) & 1 for o in c17_circuit.outputs
            )
            assert got == expected
