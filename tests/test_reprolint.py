"""reprolint: per-rule fixture pairs, suppressions, and the HEAD self-check.

Each rule gets a *flag* fixture (a distilled version of the historical
bug it protects against — the pre-PR-6 pickle leak, the pre-fix
``WorkQueue.enqueue`` probe windows) and an *ok* fixture (the repaired
idiom).  Fixture trees embed an ``src/repro/...`` layout so the engine
scopes them exactly like the real tree.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
TOOLS = REPO / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from reprolint import ALL_RULES, lint_file, lint_paths  # noqa: E402
from reprolint.engine import (  # noqa: E402
    MISSING_JUSTIFICATION,
    module_parts,
)

FIXTURES = REPO / "tests" / "fixtures" / "reprolint"
FLAG = FIXTURES / "flag" / "src"
OK = FIXTURES / "ok" / "src"

#: rule code -> (flag fixture, ok fixture), repo-relative under the trees
PAIRS = {
    "RPL001": ("repro/seeding.py", "repro/seeding.py"),
    "RPL002": (
        "repro/parallel/ordering.py",
        "repro/parallel/ordering.py",
    ),
    "RPL003": (
        "repro/faultsim/sampling_universe.py",
        "repro/faultsim/sampling_universe.py",
    ),
    "RPL004": (
        "repro/parallel/queue_probe.py",
        "repro/parallel/queue_probe.py",
    ),
    "RPL005": ("repro/logic/packed.py", "repro/logic/packed.py"),
    "RPL006": ("repro/adaptive/stopping.py", "repro/adaptive/stopping.py"),
    "RPL007": ("repro/obs/span_timing.py", "repro/obs/span_timing.py"),
}

#: rule code -> (flag fixture, ok fixture) for the ``repro.serve`` tree.
#: Kept separate from PAIRS (one canonical pair per rule); these pin the
#: service-scoping added when ``repro serve`` landed.
SERVE_PAIRS = {
    "RPL001": ("repro/serve/jitter.py", "repro/serve/jitter.py"),
    "RPL002": ("repro/serve/hub_order.py", "repro/serve/hub_order.py"),
    "RPL004": ("repro/serve/cache_spill.py", "repro/serve/cache_spill.py"),
}

#: minimum finding count the serve flag fixture must produce, per rule
SERVE_MIN_FINDINGS = {
    "RPL001": 2,  # random.Random() and np.random.default_rng()
    "RPL002": 3,  # for-loop, list() call, comprehension over a union
    "RPL004": 2,  # probed-read and probed-write windows
}

#: rule code -> (flag fixture, ok fixture) for the TCP transport.
#: Distilled from the ``repro.parallel.netqueue`` hazards: hash-ordered
#: broker dispatch/steal decisions (RPL002) and probe-then-act on the
#: shard cache two workers share after a steal (RPL004).
NETQUEUE_PAIRS = {
    "RPL002": (
        "repro/parallel/broker_order.py",
        "repro/parallel/broker_order.py",
    ),
    "RPL004": (
        "repro/parallel/worker_cache_probe.py",
        "repro/parallel/worker_cache_probe.py",
    ),
}

#: minimum finding count the netqueue flag fixture must produce, per rule
NETQUEUE_MIN_FINDINGS = {
    "RPL002": 3,  # set comprehension source, dict for-loop, set for-loop
    "RPL004": 2,  # probed-read and probed-write windows
}

#: minimum finding count the flag fixture must produce, per rule
MIN_FINDINGS = {
    "RPL001": 2,  # random.Random() and np.random.default_rng()
    "RPL002": 3,  # for-loop, list() call, comprehension source
    "RPL003": 1,
    "RPL004": 2,  # probed-unlink and probed-write windows
    "RPL005": 5,  # /, **, astype(int64), view("int64"), -uint64, +int
    "RPL006": 2,  # == 0.0 and != 0.95
    "RPL007": 4,  # time.monotonic(), time.time(), bare monotonic(), pc()
}


class TestRulePairs:
    @pytest.mark.parametrize("code", sorted(PAIRS))
    def test_flag_fixture_is_flagged(self, code):
        flag_path = FLAG / PAIRS[code][0]
        findings = lint_file(flag_path, select=[code])
        assert findings, f"{code}: flag fixture produced no findings"
        assert all(f.rule == code for f in findings)
        assert len(findings) >= MIN_FINDINGS[code], [
            f.render() for f in findings
        ]

    @pytest.mark.parametrize("code", sorted(PAIRS))
    def test_ok_fixture_is_clean(self, code):
        ok_path = OK / PAIRS[code][1]
        findings = lint_file(ok_path, select=[code])
        assert findings == [], [f.render() for f in findings]

    def test_every_rule_has_a_pair(self):
        assert sorted(PAIRS) == sorted(r.code for r in ALL_RULES)


class TestServePairs:
    """The analysis service is in scope for the determinism rules.

    ``repro.serve`` renders byte-diffed documents (RPL002), shares the
    shard cache / queue directories with ``repro worker`` processes
    (RPL004), and must never jitter from OS entropy (RPL001).
    """

    @pytest.mark.parametrize("code", sorted(SERVE_PAIRS))
    def test_flag_fixture_is_flagged(self, code):
        flag_path = FLAG / SERVE_PAIRS[code][0]
        findings = lint_file(flag_path, select=[code])
        assert findings, f"{code}: serve flag fixture produced no findings"
        assert all(f.rule == code for f in findings)
        assert len(findings) >= SERVE_MIN_FINDINGS[code], [
            f.render() for f in findings
        ]

    @pytest.mark.parametrize("code", sorted(SERVE_PAIRS))
    def test_ok_fixture_is_clean(self, code):
        ok_path = OK / SERVE_PAIRS[code][1]
        findings = lint_file(ok_path, select=[code])
        assert findings == [], [f.render() for f in findings]

    def test_serve_tree_is_in_scope_for_order_and_toctou_rules(self):
        by_code = {r.code: r for r in ALL_RULES}
        serve_parts = ("repro", "serve", "service")
        assert by_code["RPL002"].applies_to(serve_parts)
        assert by_code["RPL004"].applies_to(serve_parts)

    def test_serve_tree_stays_out_of_scope_for_kernel_rules(self):
        # The uint64 lane rule has nothing to say about the service; the
        # RPL002-rotten fixture must come back clean under it.
        findings = lint_file(
            FLAG / "repro/serve/hub_order.py", select=["RPL005"]
        )
        assert findings == []


class TestNetqueuePairs:
    """The TCP transport is in scope for the determinism rules.

    ``repro.parallel.netqueue`` decides who builds what (dispatch order,
    steal victims — RPL002) and shares the content-addressed shard
    cache across workers that may double-complete a stolen shard
    (RPL004).
    """

    @pytest.mark.parametrize("code", sorted(NETQUEUE_PAIRS))
    def test_flag_fixture_is_flagged(self, code):
        flag_path = FLAG / NETQUEUE_PAIRS[code][0]
        findings = lint_file(flag_path, select=[code])
        assert findings, f"{code}: netqueue flag fixture produced no findings"
        assert all(f.rule == code for f in findings)
        assert len(findings) >= NETQUEUE_MIN_FINDINGS[code], [
            f.render() for f in findings
        ]

    @pytest.mark.parametrize("code", sorted(NETQUEUE_PAIRS))
    def test_ok_fixture_is_clean(self, code):
        ok_path = OK / NETQUEUE_PAIRS[code][1]
        findings = lint_file(ok_path, select=[code])
        assert findings == [], [f.render() for f in findings]

    def test_netqueue_module_is_in_scope_for_order_and_toctou_rules(self):
        by_code = {r.code: r for r in ALL_RULES}
        netqueue_parts = ("repro", "parallel", "netqueue")
        assert by_code["RPL002"].applies_to(netqueue_parts)
        assert by_code["RPL004"].applies_to(netqueue_parts)


class TestScoping:
    def test_module_parts_strips_through_last_src(self):
        parts = module_parts(
            Path("tests/fixtures/reprolint/flag/src/repro/parallel/x.py")
        )
        assert parts == ("repro", "parallel", "x")
        assert module_parts(Path("src/repro/logic/packed.py")) == (
            "repro",
            "logic",
            "packed",
        )

    def test_tests_modules_are_exempt_from_rng_rule(self):
        findings = lint_file(
            OK / "tests" / "entropy_ok.py", select=["RPL001"]
        )
        assert findings == []

    def test_obs_clock_module_is_exempt_from_clock_rule(self):
        # repro.obs.clock is the single audited time call site; every
        # other repro.obs module is in scope.
        by_code = {r.code: r for r in ALL_RULES}
        assert not by_code["RPL007"].applies_to(("repro", "obs", "clock"))
        assert by_code["RPL007"].applies_to(("repro", "obs", "tracer"))
        assert not by_code["RPL007"].applies_to(("repro", "serve", "http"))

    def test_scoped_rule_ignores_out_of_scope_modules(self):
        # The RPL004 flag fixture is rotten with probe windows, but the
        # rule only applies under repro.parallel — select a rule scoped
        # elsewhere and the same file must come back clean.
        findings = lint_file(
            FLAG / "repro/parallel/queue_probe.py", select=["RPL005"]
        )
        assert findings == []


class TestInheritance:
    def test_getstate_inherited_across_files(self):
        # StratifiedVectorUniverse (no own __getstate__) inherits the
        # dropper from VectorUniverse defined in a sibling file; linted
        # together, the project index resolves the base class.
        findings = lint_paths(
            [OK / "repro" / "faultsim"], select=["RPL003"]
        )
        assert findings == [], [f.render() for f in findings]

    def test_subclass_alone_is_flagged(self):
        # Linted in isolation the base class is invisible, so the
        # subclass's init=False cache has no visible dropper.
        findings = lint_file(
            OK / "repro" / "faultsim" / "stratified.py", select=["RPL003"]
        )
        assert len(findings) == 1
        assert "StratifiedVectorUniverse" in findings[0].message


class TestSuppressions:
    def test_justified_pragma_suppresses(self):
        findings = lint_file(OK / "repro" / "adaptive" / "suppressed.py")
        assert findings == [], [f.render() for f in findings]

    def test_bare_pragma_reports_rpl000_and_does_not_suppress(self):
        findings = lint_file(FLAG / "repro" / "adaptive" / "bad_pragma.py")
        codes = sorted(f.rule for f in findings)
        assert MISSING_JUSTIFICATION in codes
        assert "RPL006" in codes

    def test_unknown_rule_code_rejected(self):
        with pytest.raises(ValueError, match="RPL999"):
            lint_paths([OK], select=["RPL999"])


class TestSelfCheck:
    def test_src_is_clean_at_head(self):
        """The determinism invariants hold on the real tree, by fiat."""
        findings = lint_paths([REPO / "src"])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_rule_catalog_is_complete(self):
        codes = [r.code for r in ALL_RULES]
        assert len(codes) == len(set(codes))
        assert len(codes) >= 6
        for rule in ALL_RULES:
            assert rule.code.startswith("RPL")
            assert rule.description

    def test_cli_reports_findings_with_exit_one(self):
        proc = subprocess.run(
            [sys.executable, "-m", "reprolint", str(FLAG)],
            env={"PYTHONPATH": str(TOOLS), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            cwd=str(REPO),
        )
        assert proc.returncode == 1
        assert "RPL004" in proc.stdout

    def test_cli_clean_run_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "reprolint", "src"],
            env={"PYTHONPATH": str(TOOLS), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            cwd=str(REPO),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert proc.stdout == ""
