"""Shared fixtures: the paper's example circuit and small test circuits."""

from __future__ import annotations

import pytest

from repro.bench_suite.example import (
    and_or_example,
    c17,
    majority,
    paper_example,
    xor_tree,
)
from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.faults.universe import FaultUniverse


@pytest.fixture(scope="session")
def example_circuit():
    """The paper's Figure 1 circuit."""
    return paper_example()


@pytest.fixture(scope="session")
def example_universe(example_circuit):
    """Fault universe of the Figure 1 circuit (tables prebuilt)."""
    universe = FaultUniverse(example_circuit)
    universe.target_table
    universe.untargeted_table
    return universe


@pytest.fixture(scope="session")
def c17_circuit():
    return c17()


@pytest.fixture(scope="session")
def majority_circuit():
    return majority()


@pytest.fixture(scope="session")
def xor_tree_circuit():
    return xor_tree(2)


@pytest.fixture(scope="session")
def and_or_circuit():
    return and_or_example(3)


@pytest.fixture
def tiny_and():
    """out = AND(a, b) — the smallest useful circuit."""
    b = CircuitBuilder("tiny_and")
    b.input("a")
    b.input("b")
    b.gate("out", GateType.AND, ["a", "b"])
    b.output("out")
    return b.build()


@pytest.fixture
def tiny_not_chain():
    """out = NOT(NOT(a)) — for collapsing and simulation checks."""
    b = CircuitBuilder("tiny_not_chain")
    b.input("a")
    b.gate("n1", GateType.NOT, ["a"])
    b.gate("out", GateType.NOT, ["n1"])
    b.output("out")
    return b.build()
