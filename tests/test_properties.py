"""Property-based cross-validation on randomly generated circuits.

A hypothesis strategy builds random normal-form circuits (4-6 inputs,
up to ~25 gates with random types, arities, and fanout), then the core
invariants are checked on each:

* exhaustive signatures == per-vector simulation;
* stuck-at detection tables == the independent serial engine;
* equivalence-collapsed classes share identical detection sets;
* 3-valued simulation is sound w.r.t. every completion;
* Procedure 1 snapshots really are n-detection test sets;
* p(n, g) == 1 whenever n >= nmin(g).

Random circuits explore structural corners (deep reconvergence, XOR
chains, constants) that the curated fixtures cannot.
"""

from __future__ import annotations

import random as pyrandom

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.circuit.validate import validate_circuit
from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.stuck_at import equivalence_classes
from repro.faultsim.detection import DetectionTable
from repro.faultsim.serial import detects_stuck_at
from repro.logic.cube import Cube
from repro.simulation.exhaustive import line_signatures
from repro.simulation.threeval import simulate_cube
from repro.simulation.twoval import simulate_vector

_GATES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
]


def _draw_gates(rng, builder, num_inputs, num_gates):
    """Deterministically add random gates; returns all line names."""
    lines = [f"x{i}" for i in range(num_inputs)]
    for g in range(num_gates):
        gt = rng.choice(_GATES)
        if gt in (GateType.NOT, GateType.BUF):
            fanin = [rng.choice(lines)]
        else:
            arity = rng.randint(2, min(4, len(lines)))
            fanin = rng.sample(lines, arity)
        lines.append(builder.gate(f"g{g}", gt, fanin))
    return lines


@st.composite
def circuits(draw, max_inputs=6, max_gates=25):
    """Random normal-form circuit (auto-branched, no dangling gates).

    Built in two passes from the same RNG seed: the first pass discovers
    which gate lines end up without sinks, the second promotes them to
    primary outputs so every gate is observable.
    """
    num_inputs = draw(st.integers(min_value=2, max_value=max_inputs))
    num_gates = draw(st.integers(min_value=1, max_value=max_gates))
    seed = draw(st.integers(min_value=0, max_value=2**31))

    def build(extra_outputs):
        rng = pyrandom.Random(seed)
        b = CircuitBuilder(f"rand{seed}")
        for i in range(num_inputs):
            b.input(f"x{i}")
        lines = _draw_gates(rng, b, num_inputs, num_gates)
        outputs = {lines[-1]}
        for _ in range(rng.randint(0, 2)):
            outputs.add(rng.choice(lines[num_inputs:]))
        outputs |= extra_outputs
        for name in sorted(outputs):
            b.output(name)
        return b.build(auto_branch=True)

    circuit = build(set())
    dangling = {
        ln.name
        for ln in circuit.lines
        if not ln.fanout and not ln.is_output and not ln.name.startswith("x")
    }
    if dangling:
        circuit = build(dangling)
    return circuit


_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(circuits())
@_SETTINGS
def test_random_circuits_validate(circuit):
    issues = [
        i for i in validate_circuit(circuit) if "dangling" not in i
    ]
    assert issues == []


@given(circuits())
@_SETTINGS
def test_exhaustive_matches_pervector(circuit):
    sigs = line_signatures(circuit)
    rng = pyrandom.Random(0)
    space = 1 << circuit.num_inputs
    for v in rng.sample(range(space), min(8, space)):
        vals = simulate_vector(circuit, v)
        for lid in range(len(circuit.lines)):
            assert (sigs[lid] >> v) & 1 == vals[lid]


@given(circuits(max_inputs=5, max_gates=15))
@_SETTINGS
def test_detection_table_matches_serial(circuit):
    table = DetectionTable.for_stuck_at(circuit)
    rng = pyrandom.Random(1)
    space = 1 << circuit.num_inputs
    indices = rng.sample(range(len(table)), min(6, len(table)))
    for i in indices:
        fault = table.faults[i]
        for v in rng.sample(range(space), min(6, space)):
            assert detects_stuck_at(circuit, fault, v) == bool(
                (table.signatures[i] >> v) & 1
            )


@given(circuits(max_inputs=5, max_gates=15))
@_SETTINGS
def test_equivalence_classes_share_detection_sets(circuit):
    classes = [
        members
        for members in equivalence_classes(circuit)
        if len(members) > 1
    ]
    for members in classes[:6]:
        table = DetectionTable.for_stuck_at(circuit, faults=members)
        assert len(set(table.signatures)) == 1


@given(circuits(max_inputs=5, max_gates=12), st.integers(0, 2**16))
@_SETTINGS
def test_threeval_soundness(circuit, seed):
    rng = pyrandom.Random(seed)
    cube = Cube.empty(circuit.num_inputs)
    for i in range(circuit.num_inputs):
        cube = cube.with_input(i, rng.choice([0, 1, 2]))
    vals3 = simulate_cube(circuit, cube)
    sample = cube.completions()
    rng.shuffle(sample)
    for v in sample[:4]:
        vals2 = simulate_vector(circuit, v)
        for lid in range(len(circuit.lines)):
            if vals3[lid] != 2:
                assert vals3[lid] == vals2[lid]


@given(circuits(max_inputs=5, max_gates=10), st.integers(0, 10**6))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_procedure1_invariant_and_guarantee(circuit, seed):
    targets = DetectionTable.for_stuck_at(circuit)
    n_max = 3
    family = build_random_ndetection_sets(
        targets, n_max=n_max, num_sets=8, seed=seed
    )
    # (1) Every snapshot is an n-detection set.
    for n in range(1, n_max + 1):
        for k in range(family.num_sets):
            tk = family.signature(n, k)
            for sig in targets.signatures:
                assert (sig & tk).bit_count() >= min(n, sig.bit_count())
    # (2) nmin guarantee: untargeted faults with nmin <= n are detected
    # by every n-detection snapshot.
    untargeted = DetectionTable.for_bridging(circuit)
    if len(untargeted) == 0:
        return
    wc = WorstCaseAnalysis(targets, untargeted)
    for rec in wc.records:
        if rec.nmin is None or rec.nmin > n_max:
            continue
        g_sig = untargeted.signatures[rec.fault_index]
        for n in range(rec.nmin, n_max + 1):
            for k in range(family.num_sets):
                assert family.signature(n, k) & g_sig, (
                    "worst-case guarantee violated"
                )
