"""Differential certification of the PPSFP kernel against the big-int engines.

The kernel path (``REPRO_PPSFP=1``, the default) must produce
*bit-identical* detection tables to the big-int cone-resimulation path
(``REPRO_PPSFP=0``) on every backend and universe, and both must agree
with the independent per-vector serial engine.  ``REPRO_DIFF_SUITE=full``
extends the suite sweep from the representative subset to every suite
circuit (the CI workflow runs that).

Includes the branch-site coverage the bugfix sweep asked for: stuck-at
faults forced on ``LineKind.BRANCH`` lines — the forced-after-evaluation
override on a line that merely aliases its stem — compared across the
serial, exhaustive big-int, and PPSFP engines.
"""

from __future__ import annotations

import os

import pytest

pytest.importorskip("numpy")

from repro.bench_suite.randlogic import random_circuit
from repro.bench_suite.registry import get_circuit, suite_table_groups
from repro.circuit.netlist import LineKind
from repro.faults.stuck_at import StuckAtFault
from repro.faultsim.backends import (
    ExhaustiveBackend,
    PackedBackend,
    SampledBackend,
    SerialBackend,
)
from repro.faultsim.detection import DetectionTable

#: Representative tier-1 subset; REPRO_DIFF_SUITE=full sweeps them all.
_SUITE_SUBSET = (
    "lion", "train4", "mc", "s8", "tav",
    "beecount", "ex2", "ex3", "opus", "bbara",
)


def _suite_circuits() -> list[str]:
    if os.environ.get("REPRO_DIFF_SUITE") == "full":
        return list(suite_table_groups())
    return list(_SUITE_SUBSET)


def _tables(backend, circuit):
    """(stuck-at signatures, bridging signatures) under one backend."""
    stuck = backend.build_stuck_at(circuit)
    bridge = backend.build_bridging(circuit)
    return stuck.signatures, bridge.signatures


class TestKernelVsBigInt:
    """REPRO_PPSFP=1 ≡ REPRO_PPSFP=0, backend by backend."""

    @pytest.mark.parametrize("name", _suite_circuits())
    def test_suite_exhaustive(self, name, monkeypatch):
        circuit = get_circuit(name)
        backend = ExhaustiveBackend()
        monkeypatch.setenv("REPRO_PPSFP", "0")
        big = _tables(backend, circuit)
        monkeypatch.setenv("REPRO_PPSFP", "1")
        kernel = _tables(backend, circuit)
        assert kernel == big

    @pytest.mark.parametrize("name", _suite_circuits())
    def test_suite_sampled(self, name, monkeypatch):
        circuit = get_circuit(name)
        k = min(97, 1 << circuit.num_inputs)
        backend = SampledBackend(k, seed=7)
        monkeypatch.setenv("REPRO_PPSFP", "0")
        big = _tables(backend, circuit)
        monkeypatch.setenv("REPRO_PPSFP", "1")
        kernel = _tables(backend, circuit)
        assert kernel == big

    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits_packed_backend(self, seed, monkeypatch):
        circuit = random_circuit(70 + seed, num_inputs=6, num_gates=15)
        backend = PackedBackend()
        monkeypatch.setenv("REPRO_PPSFP", "0")
        big = _tables(backend, circuit)
        monkeypatch.setenv("REPRO_PPSFP", "1")
        kernel = _tables(backend, circuit)
        assert kernel == big

    def test_kernel_path_actually_engaged(self):
        from repro.simulation import ppsfp

        circuit = get_circuit("lion")
        backend = ExhaustiveBackend()
        universe = backend.universe_for(circuit)
        assert os.environ.get("REPRO_PPSFP", "1") != "0"
        assert ppsfp.kernel_supports(universe), (
            "differential suite must exercise the kernel path"
        )


class TestBranchSiteFaults:
    """Stuck-at faults on BRANCH lines: serial ≡ exhaustive ≡ kernel."""

    def _branch_faults(self, circuit):
        return [
            StuckAtFault(ln.lid, v)
            for ln in circuit.lines
            if ln.kind is LineKind.BRANCH
            for v in (0, 1)
        ]

    @pytest.mark.parametrize("name", ["lion", "beecount", "train4"])
    def test_three_engines_agree(self, name, monkeypatch):
        circuit = get_circuit(name)
        faults = self._branch_faults(circuit)
        assert faults, f"{name} has no branch lines; pick another circuit"
        serial = SerialBackend().build_stuck_at(circuit, faults=faults)
        monkeypatch.setenv("REPRO_PPSFP", "0")
        big = ExhaustiveBackend().build_stuck_at(circuit, faults=faults)
        monkeypatch.setenv("REPRO_PPSFP", "1")
        kernel = ExhaustiveBackend().build_stuck_at(circuit, faults=faults)
        assert serial.signatures == big.signatures
        assert big.signatures == kernel.signatures

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_with_branches(self, seed, monkeypatch):
        circuit = random_circuit(90 + seed, num_inputs=5, num_gates=12)
        faults = self._branch_faults(circuit)
        if not faults:
            pytest.skip("random draw produced no branch lines")
        serial = SerialBackend().build_stuck_at(circuit, faults=faults)
        monkeypatch.setenv("REPRO_PPSFP", "0")
        big = ExhaustiveBackend().build_stuck_at(circuit, faults=faults)
        monkeypatch.setenv("REPRO_PPSFP", "1")
        kernel = ExhaustiveBackend().build_stuck_at(circuit, faults=faults)
        assert serial.signatures == big.signatures
        assert big.signatures == kernel.signatures

    def test_branch_forced_value_wins_over_stem(self, monkeypatch):
        """A branch site keeps its forced value even when its stem changes."""
        circuit = get_circuit("lion")
        branch = next(
            ln for ln in circuit.lines if ln.kind is LineKind.BRANCH
        )
        stem = circuit.lines[branch.fanin[0]]
        faults = [
            StuckAtFault(branch.lid, 0),
            StuckAtFault(branch.lid, 1),
            StuckAtFault(stem.lid, 0),
            StuckAtFault(stem.lid, 1),
        ]
        monkeypatch.setenv("REPRO_PPSFP", "0")
        big = DetectionTable.for_stuck_at(circuit, faults=faults)
        monkeypatch.setenv("REPRO_PPSFP", "1")
        kernel = DetectionTable.for_stuck_at(circuit, faults=faults)
        assert big.signatures == kernel.signatures
