"""Deeper worst-case properties: adversarial construction vs Procedure 1.

The first class closes the loop between Sections 2 and 3 at the level of
*individual faults*: for a fault with nmin(g) = n, there must exist an
(n-1)-detection set missing g (constructed), while no Procedure-1 family
member at n may miss it (sampled).
"""

from __future__ import annotations

import pytest

from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse
from repro.logic.bitops import iter_set_bits


@pytest.fixture(scope="module")
def majority_setup(majority_circuit):
    universe = FaultUniverse(majority_circuit)
    wc = WorstCaseAnalysis(universe.target_table, universe.untargeted_table)
    return universe, wc


class TestTightnessEndToEnd:
    def test_nmin_is_exactly_the_threshold(self, majority_setup):
        """Below nmin an escape is constructible; at nmin it never happens."""
        universe, wc = majority_setup
        family = build_random_ndetection_sets(
            universe.target_table, n_max=6, num_sets=30, seed=9
        )
        targets = universe.target_table
        for rec in wc.records:
            if rec.nmin is None or rec.nmin > 6:
                continue
            g_sig = universe.untargeted_table.signatures[rec.fault_index]
            # (a) guarantee at n = nmin over the random family:
            for k in range(family.num_sets):
                assert family.signature(rec.nmin, k) & g_sig
            if rec.nmin == 1:
                continue
            # (b) achievable escape at n = nmin - 1:
            n = rec.nmin - 1
            adversary = 0
            for f_sig in targets.signatures:
                want = min(n, f_sig.bit_count())
                picked = 0
                for v in iter_set_bits(f_sig & ~g_sig):
                    if picked == want:
                        break
                    adversary |= 1 << v
                    picked += 1
                assert picked == want
            assert not (adversary & g_sig)

    def test_witness_fault_forces_detection(self, majority_setup):
        """Adding nmin detections of the *witness* target alone already
        forces a test of g into the set."""
        universe, wc = majority_setup
        targets = universe.target_table
        for rec in wc.records:
            if rec.nmin is None:
                continue
            w_sig = targets.signatures[rec.witness]
            g_sig = universe.untargeted_table.signatures[rec.fault_index]
            outside = (w_sig & ~g_sig).bit_count()
            # nmin detections of the witness cannot fit outside T(g).
            assert outside == rec.nmin - 1 or outside < rec.nmin


class TestCrossFaultModels:
    def test_richer_target_set_never_hurts(self, majority_circuit):
        """Adding target faults can only lower (improve) nmin values."""
        from repro.faults.stuck_at import (
            all_stuck_at_faults,
            collapsed_stuck_at_faults,
        )
        from repro.faultsim.detection import DetectionTable

        collapsed = DetectionTable.for_stuck_at(
            majority_circuit, faults=collapsed_stuck_at_faults(majority_circuit)
        )
        full = DetectionTable.for_stuck_at(
            majority_circuit, faults=all_stuck_at_faults(majority_circuit)
        )
        untargeted = DetectionTable.for_bridging(majority_circuit)
        wc_collapsed = WorstCaseAnalysis(collapsed, untargeted)
        wc_full = WorstCaseAnalysis(full, untargeted)
        for a, b in zip(wc_collapsed.records, wc_full.records, strict=True):
            a_val = a.nmin if a.nmin is not None else 10**9
            b_val = b.nmin if b.nmin is not None else 10**9
            assert b_val <= a_val

    def test_collapsing_preserves_nmin(self, majority_circuit):
        """Equivalence collapsing must NOT change nmin: merged faults
        have identical detection sets, so the min is unaffected."""
        from repro.faults.stuck_at import (
            all_stuck_at_faults,
            collapsed_stuck_at_faults,
        )
        from repro.faultsim.detection import DetectionTable

        collapsed = DetectionTable.for_stuck_at(
            majority_circuit, faults=collapsed_stuck_at_faults(majority_circuit)
        )
        full = DetectionTable.for_stuck_at(
            majority_circuit, faults=all_stuck_at_faults(majority_circuit)
        )
        untargeted = DetectionTable.for_bridging(majority_circuit)
        wc_collapsed = WorstCaseAnalysis(collapsed, untargeted)
        wc_full = WorstCaseAnalysis(full, untargeted)
        for a, b in zip(wc_collapsed.records, wc_full.records, strict=True):
            assert a.nmin == b.nmin
