"""Definition 1 / Definition 2 detection counting."""

from __future__ import annotations

import pytest

from repro.core.definitions import (
    count_detections_def1,
    count_detections_def2,
    count_detections_def2_exact,
)
from repro.logic.bitops import signature_from_vectors


class TestDef1:
    def test_simple_intersection(self):
        f_sig = signature_from_vectors([4, 5, 6, 7], 4)
        t_sig = signature_from_vectors([5, 6, 12], 4)
        assert count_detections_def1(f_sig, t_sig) == 2

    def test_empty(self):
        assert count_detections_def1(0b1111, 0) == 0


class TestDef2Greedy:
    def test_never_exceeds_def1(self, example_universe):
        c = example_universe.circuit
        table = example_universe.target_table
        tests = list(range(16))
        for i, fault in enumerate(table.faults):
            sig = table.signatures[i]
            d1 = count_detections_def1(sig, (1 << 16) - 1)
            d2 = count_detections_def2(c, fault, sig, tests)
            assert 0 <= d2 <= d1

    def test_at_least_one_when_detected(self, example_universe):
        c = example_universe.circuit
        table = example_universe.target_table
        for i, fault in enumerate(table.faults):
            sig = table.signatures[i]
            if sig:
                d2 = count_detections_def2(c, fault, sig, list(range(16)))
                assert d2 >= 1

    def test_similar_tests_counted_once(self, example_universe):
        """Tests 4 and 5 share the detecting condition of 1/1 (common
        cube 010x detects it), so they count as one detection."""
        c = example_universe.circuit
        table = example_universe.target_table
        idx = [table.fault_name(i) for i in range(len(table))].index("1/1")
        fault = table.faults[idx]
        sig = table.signatures[idx]
        assert count_detections_def2(c, fault, sig, [4, 5]) == 1
        assert count_detections_def2(c, fault, sig, [4]) == 1

    def test_order_dependence_is_bounded(self, example_universe):
        """Greedy count varies with order but stays within [1, exact]."""
        c = example_universe.circuit
        table = example_universe.target_table
        for i, fault in enumerate(table.faults):
            sig = table.signatures[i]
            if not sig:
                continue
            vecs = table.vectors(i)
            exact = count_detections_def2_exact(c, fault, sig, vecs)
            forward = count_detections_def2(c, fault, sig, vecs)
            backward = count_detections_def2(
                c, fault, sig, list(reversed(vecs))
            )
            assert 1 <= forward <= exact
            assert 1 <= backward <= exact


class TestDef2Exact:
    def test_exact_at_least_greedy(self, example_universe):
        c = example_universe.circuit
        table = example_universe.target_table
        for i, fault in enumerate(table.faults):
            sig = table.signatures[i]
            if not sig:
                continue
            vecs = table.vectors(i)
            assert count_detections_def2_exact(
                c, fault, sig, vecs
            ) >= count_detections_def2(c, fault, sig, vecs)

    def test_guard_on_large_instances(self, example_universe):
        c = example_universe.circuit
        table = example_universe.target_table
        with pytest.raises(ValueError, match="max_tests"):
            count_detections_def2_exact(
                c, table.faults[0], table.signatures[0],
                list(range(16)), max_tests=1,
            )

    def test_trivial_cases(self, example_universe):
        c = example_universe.circuit
        table = example_universe.target_table
        fault = table.faults[0]
        sig = table.signatures[0]
        assert count_detections_def2_exact(c, fault, sig, []) == 0
        one = [table.vectors(0)[0]]
        assert count_detections_def2_exact(c, fault, sig, one) == 1
