"""Escape-probability analysis (Section 4's closing calculation)."""

from __future__ import annotations

import pytest

from repro.core.average_case import AverageCaseAnalysis
from repro.core.escape import EscapeAnalysis
from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def setup(example_universe):
    worst = WorstCaseAnalysis(
        example_universe.target_table, example_universe.untargeted_table
    )
    family = build_random_ndetection_sets(
        example_universe.target_table, n_max=5, num_sets=80, seed=6
    )
    avg = AverageCaseAnalysis(family, example_universe.untargeted_table)
    return EscapeAnalysis(worst, avg)


class TestEscapeReports:
    def test_expected_never_exceeds_population(self, setup):
        for rep in setup.curve():
            assert 0.0 <= rep.expected_escapes <= rep.analyzed_faults

    def test_expected_escapes_decrease_with_n(self, setup):
        values = [rep.expected_escapes for rep in setup.curve()]
        assert values == sorted(values, reverse=True)

    def test_worst_case_bounds_expected_direction(self, setup):
        """Once the worst case guarantees detection (nmin <= n), those
        faults contribute zero expectation, so at the guaranteed n the
        expected escapes hit zero together with the bound."""
        reports = setup.curve()
        for rep in reports:
            if rep.worst_case_escapes == 0:
                assert rep.expected_escapes == pytest.approx(0.0)

    def test_worst_case_counts_match_analysis(self, setup):
        for rep in setup.curve():
            assert rep.worst_case_escapes == setup.worst.count_at_least(
                rep.n + 1
            )

    def test_escape_rate(self, setup):
        rep = setup.report(1)
        assert rep.expected_escape_rate == pytest.approx(
            rep.expected_escapes / rep.analyzed_faults
        )

    def test_marginal_benefit_sums(self, setup):
        curve = setup.curve()
        marginal = setup.marginal_benefit()
        assert len(marginal) == len(curve) - 1
        assert sum(marginal) == pytest.approx(
            curve[0].expected_escapes - curve[-1].expected_escapes
        )

    def test_render(self, setup):
        text = setup.render()
        assert "worst-case escapes" in text
        assert text.count("\n") >= 5


class TestValidation:
    def test_mismatched_tables_rejected(self, example_universe, c17_circuit):
        from repro.faults.universe import FaultUniverse

        worst = WorstCaseAnalysis(
            example_universe.target_table, example_universe.untargeted_table
        )
        other = FaultUniverse(c17_circuit)
        family = build_random_ndetection_sets(
            other.target_table, n_max=2, num_sets=5, seed=1
        )
        avg = AverageCaseAnalysis(family, other.untargeted_table)
        with pytest.raises(AnalysisError, match="disagree"):
            EscapeAnalysis(worst, avg)
