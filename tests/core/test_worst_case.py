"""Worst-case analysis: definitional properties, not just anchors.

The key tightness checks:

* (guarantee) every n-detection test set with ``n >= nmin(g)`` detects g —
  verified against Procedure 1 families in test_average_case.py;
* (achievability) an ``(nmin(g) - 1)``-detection test set that misses g
  exists — constructed explicitly here from the ``T(f) - T(g)`` sets.
"""

from __future__ import annotations

import pytest

from repro.core.worst_case import WorstCaseAnalysis, nmin_for_untargeted_fault
from repro.errors import AnalysisError
from repro.faults.universe import FaultUniverse
from repro.logic.bitops import iter_set_bits


@pytest.fixture(scope="module")
def analyses():
    out = {}
    for name in ("example", "majority", "c17"):
        from repro.bench_suite.example import c17, majority, paper_example

        circuit = {"example": paper_example, "majority": majority, "c17": c17}[
            name
        ]()
        u = FaultUniverse(circuit)
        out[name] = (u, WorstCaseAnalysis(u.target_table, u.untargeted_table))
    return out


class TestNminDefinition:
    def test_example_values(self, analyses):
        _u, wc = analyses["example"]
        assert [r.nmin for r in wc.records] == [3, 3, 3, 3, 1, 4, 4, 1, 1, 1]

    def test_witness_is_argmin(self, analyses):
        u, wc = analyses["example"]
        counts = u.target_table.counts()
        for rec in wc.records:
            g_sig = u.untargeted_table.signatures[rec.fault_index]
            brute = min(
                counts[i] - (sig & g_sig).bit_count() + 1
                for i, sig in enumerate(u.target_table.signatures)
                if sig & g_sig
            )
            assert rec.nmin == brute
            w_sig = u.target_table.signatures[rec.witness]
            assert (
                counts[rec.witness] - (w_sig & g_sig).bit_count() + 1
                == rec.nmin
            )

    def test_early_exit_matches_bruteforce(self, analyses):
        """The sorted early-exit scan must equal the naive scan."""
        u, wc = analyses["c17"]
        counts = u.target_table.counts()
        for rec in wc.records:
            g_sig = u.untargeted_table.signatures[rec.fault_index]
            candidates = [
                counts[i] - (sig & g_sig).bit_count() + 1
                for i, sig in enumerate(u.target_table.signatures)
                if sig & g_sig
            ]
            assert rec.nmin == (min(candidates) if candidates else None)

    def test_undetectable_g_rejected(self, analyses):
        u, _wc = analyses["example"]
        with pytest.raises(AnalysisError):
            nmin_for_untargeted_fault(u.target_table, 0)


class TestAchievability:
    @pytest.mark.parametrize("name", ["example", "majority", "c17"])
    def test_adversarial_set_exists(self, analyses, name):
        """For each g, build an (nmin-1)-detection set avoiding T(g).

        Its existence is exactly what nmin(g) being the *minimum*
        guarantee means; if the construction ever failed, nmin would be
        overestimated.
        """
        u, wc = analyses[name]
        targets = u.target_table
        for rec in wc.records:
            if rec.nmin is None or rec.nmin <= 1:
                continue
            n = rec.nmin - 1
            g_sig = u.untargeted_table.signatures[rec.fault_index]
            test_sig = 0
            for f_sig in targets.signatures:
                available = f_sig & ~g_sig
                want = min(n, f_sig.bit_count())
                assert available.bit_count() >= want, (
                    "nmin overestimated: cannot avoid T(g)"
                )
                picked = 0
                for v in iter_set_bits(available):
                    if picked == want:
                        break
                    test_sig |= 1 << v
                    picked += 1
            # The set avoids g entirely...
            assert not (test_sig & g_sig)
            # ...and is an (nmin-1)-detection set for the targets.
            for f_sig in targets.signatures:
                want = min(n, f_sig.bit_count())
                assert (f_sig & test_sig).bit_count() >= want


class TestThresholdQueries:
    def test_counts_consistent(self, analyses):
        _u, wc = analyses["example"]
        total = len(wc)
        for n in range(1, 12):
            assert wc.count_within(n) + wc.count_at_least(n + 1) == total

    def test_fraction_monotone(self, analyses):
        _u, wc = analyses["example"]
        fractions = [wc.fraction_within(n) for n in range(1, 15)]
        assert fractions == sorted(fractions)

    def test_guaranteed_n(self, analyses):
        _u, wc = analyses["example"]
        g = wc.guaranteed_n()
        assert g == 4  # max nmin over the example's G
        assert wc.fraction_within(g) == 1.0
        assert wc.fraction_within(g - 1) < 1.0

    def test_indices_at_least(self, analyses):
        _u, wc = analyses["example"]
        assert wc.indices_at_least(4) == [5, 6]
        assert wc.indices_at_least(5) == []

    def test_coverage_curve(self, analyses):
        _u, wc = analyses["example"]
        curve = wc.coverage_curve([1, 2, 3, 4])
        assert curve[-1] == 100.0
        assert curve == sorted(curve)

    def test_rejects_undetectable_table(self, analyses):
        from repro.faultsim.detection import DetectionTable

        u, _wc = analyses["example"]
        bad = DetectionTable(
            u.circuit, list(u.untargeted_table.faults), [0] * len(u.untargeted_table)
        )
        with pytest.raises(AnalysisError, match="undetectable"):
            WorstCaseAnalysis(u.target_table, bad)


class TestExplicitEmptyCounts:
    """Regression: an explicit empty target_counts list used to be
    silently replaced by a recompute (falsy-list defaulting)."""

    def test_empty_counts_honored(self, analyses):
        u, _wc = analyses["example"]
        g_sig = u.untargeted_table.signatures[0]
        nmin, witness, overlap = nmin_for_untargeted_fault(
            u.target_table, g_sig, target_counts=[], sorted_order=None
        )
        # No target counts => no targets to scan => no guarantee.
        assert (nmin, witness, overlap) == (None, None, 0)

    def test_none_counts_still_recomputed(self, analyses):
        u, _wc = analyses["example"]
        g_sig = u.untargeted_table.signatures[0]
        with_none = nmin_for_untargeted_fault(u.target_table, g_sig)
        explicit = nmin_for_untargeted_fault(
            u.target_table, g_sig, target_counts=u.target_table.counts()
        )
        assert with_none == explicit
        assert with_none[0] is not None
