"""Average-case analysis: p(n, g), and the bridge to the worst case."""

from __future__ import annotations

import pytest

from repro.core.average_case import (
    TABLE5_THRESHOLDS,
    AverageCaseAnalysis,
    probability_histogram,
)
from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def setup(example_universe):
    family = build_random_ndetection_sets(
        example_universe.target_table, n_max=5, num_sets=50, seed=11
    )
    avg = AverageCaseAnalysis(family, example_universe.untargeted_table)
    wc = WorstCaseAnalysis(
        example_universe.target_table, example_universe.untargeted_table
    )
    return family, avg, wc


class TestProbabilities:
    def test_worst_case_guarantee_holds(self, setup):
        """p(n, g) must be exactly 1 for n >= nmin(g): the average case
        cannot contradict the worst-case guarantee."""
        _family, avg, wc = setup
        for rec in wc.records:
            for n in range(rec.nmin, 6):
                assert avg.detection_probability(n, rec.fault_index) == 1.0

    def test_monotone_in_n(self, setup):
        _family, avg, _wc = setup
        for j in avg.fault_indices:
            probs = [avg.detection_probability(n, j) for n in range(1, 6)]
            assert probs == sorted(probs)

    def test_probabilities_are_fractions_of_k(self, setup):
        family, avg, _wc = setup
        for p in avg.probabilities(3):
            assert 0.0 <= p <= 1.0
            assert abs(p * family.num_sets - round(p * family.num_sets)) < 1e-9

    def test_subset_selection(self, setup, example_universe):
        family, _avg, wc = setup
        hard = wc.indices_at_least(4)
        sub = AverageCaseAnalysis(
            family, example_universe.untargeted_table, fault_indices=hard
        )
        assert sub.probabilities(1) == [
            sub.detection_probability(1, j) for j in hard
        ]

    def test_minimum_probability(self, setup):
        _family, avg, _wc = setup
        result = avg.minimum_probability(1)
        assert result is not None
        p, j = result
        assert p == min(avg.probabilities(1))
        assert j in avg.fault_indices

    def test_empty_subset(self, setup, example_universe):
        family, _avg, _wc = setup
        sub = AverageCaseAnalysis(
            family, example_universe.untargeted_table, fault_indices=[]
        )
        assert sub.probabilities(1) == []
        assert sub.minimum_probability(1) is None

    def test_width_mismatch_rejected(self, setup, c17_circuit):
        family, _avg, _wc = setup
        from repro.faultsim.detection import DetectionTable

        other = DetectionTable.for_bridging(c17_circuit)
        with pytest.raises(AnalysisError):
            AverageCaseAnalysis(family, other)


class TestHistogram:
    def test_hand_computed(self):
        probs = [1.0, 0.95, 0.5, 0.05, 0.0]
        hist = probability_histogram(probs)
        # thresholds: 1, .9, .8, .7, .6, .5, .4, .3, .2, .1, 0
        assert hist == [1, 2, 2, 2, 2, 3, 3, 3, 3, 3, 5]

    def test_histogram_monotone(self, setup):
        _family, avg, _wc = setup
        hist = avg.histogram(5)
        assert hist == sorted(hist)
        assert hist[-1] == len(avg.fault_indices)

    def test_rounding_guard(self):
        # 0.7 is not exactly representable; the epsilon guard must count it.
        assert probability_histogram([0.7], thresholds=(0.7,)) == [1]

    def test_default_thresholds(self):
        assert TABLE5_THRESHOLDS[0] == 1.0
        assert TABLE5_THRESHOLDS[-1] == 0.0
        assert len(TABLE5_THRESHOLDS) == 11


class TestValidation:
    """Regression tests: argument validation added after PR 1."""

    def test_n_zero_rejected(self, setup):
        """n = 0 used to wrap to the *largest* n via negative indexing."""
        _family, avg, _wc = setup
        with pytest.raises(AnalysisError, match=r"n must be in \[1, 5\]"):
            avg.detection_probability(0, 0)
        with pytest.raises(AnalysisError, match=r"n must be in \[1, 5\]"):
            avg.probabilities(0)

    def test_negative_n_rejected(self, setup):
        _family, avg, _wc = setup
        with pytest.raises(AnalysisError, match="n must be"):
            avg.probabilities(-2)

    def test_n_beyond_nmax_rejected(self, setup):
        """n > n_max used to raise a bare IndexError."""
        _family, avg, _wc = setup
        with pytest.raises(AnalysisError, match="n must be"):
            avg.detection_probability(6, 0)
        with pytest.raises(AnalysisError, match="n must be"):
            avg.histogram(99)

    def test_valid_bounds_still_accepted(self, setup):
        _family, avg, _wc = setup
        assert avg.probabilities(1)
        assert avg.probabilities(5)

    def test_exhaustive_family_vs_sampled_table_rejected(self):
        """A family without an explicit universe is an exhaustive-space
        family; pairing it with a sampled table used to pass silently."""
        from repro.bench_suite.randlogic import random_circuit
        from repro.core.procedure1 import NDetectionFamily
        from repro.faults.universe import FaultUniverse
        from repro.faultsim.backends import SampledBackend

        circuit = random_circuit(17, num_inputs=6, num_gates=14)
        sampled = FaultUniverse(circuit, backend=SampledBackend(16, seed=1))
        family = NDetectionFamily(
            num_inputs=circuit.num_inputs,
            n_max=1,
            num_sets=2,
            counting="def1",
            snapshots=[[0b11, 0b101]],
            final_orders=[[0, 1], [0, 2]],
            universe=None,  # exhaustive by convention
        )
        with pytest.raises(AnalysisError, match="universe"):
            AverageCaseAnalysis(family, sampled.untargeted_table)

    def test_exhaustive_family_vs_exhaustive_table_accepted(
        self, example_universe
    ):
        from repro.core.procedure1 import NDetectionFamily

        family = NDetectionFamily(
            num_inputs=example_universe.circuit.num_inputs,
            n_max=1,
            num_sets=1,
            counting="def1",
            snapshots=[[0b1]],
            final_orders=[[0]],
            universe=None,
        )
        avg = AverageCaseAnalysis(family, example_universe.untargeted_table)
        assert len(avg.probabilities(1)) == len(
            example_universe.untargeted_table
        )
