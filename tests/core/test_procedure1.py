"""Procedure 1: every snapshot must actually be an n-detection test set."""

from __future__ import annotations

import pytest

from repro.core.procedure1 import build_random_ndetection_sets
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def family(example_universe):
    return build_random_ndetection_sets(
        example_universe.target_table, n_max=4, num_sets=20, seed=7
    )


class TestDef1Family:
    def test_snapshots_are_ndetection_sets(self, example_universe, family):
        """The defining invariant: after iteration n, every fault is
        detected min(n, N(f)) times by every Tk."""
        table = example_universe.target_table
        for n in range(1, family.n_max + 1):
            for k in range(family.num_sets):
                tk = family.signature(n, k)
                for sig in table.signatures:
                    want = min(n, sig.bit_count())
                    assert (sig & tk).bit_count() >= want

    def test_growth_is_monotone(self, family):
        for k in range(family.num_sets):
            for n in range(2, family.n_max + 1):
                prev = family.signature(n - 1, k)
                cur = family.signature(n, k)
                assert prev & ~cur == 0  # prev subset of cur

    def test_sizes_reasonable(self, example_universe, family):
        """|Tk| grows with n but never exceeds |U|."""
        for n in range(1, family.n_max + 1):
            for size in family.sizes(n):
                assert 0 < size <= 16

    def test_orders_match_final_snapshot(self, family):
        for k in range(family.num_sets):
            order = family.final_orders[k]
            assert len(set(order)) == len(order)  # no duplicates
            assert set(order) == set(family.test_set(family.n_max, k))

    def test_deterministic_given_seed(self, example_universe):
        a = build_random_ndetection_sets(
            example_universe.target_table, n_max=2, num_sets=5, seed=123
        )
        b = build_random_ndetection_sets(
            example_universe.target_table, n_max=2, num_sets=5, seed=123
        )
        assert a.snapshots == b.snapshots

    def test_seed_changes_family(self, example_universe):
        a = build_random_ndetection_sets(
            example_universe.target_table, n_max=2, num_sets=5, seed=1
        )
        b = build_random_ndetection_sets(
            example_universe.target_table, n_max=2, num_sets=5, seed=2
        )
        assert a.snapshots != b.snapshots

    def test_test_set_sorted(self, family):
        ts = family.test_set(1, 0)
        assert ts == sorted(ts)

    def test_bad_n_rejected(self, family):
        with pytest.raises(AnalysisError):
            family.signature(0, 0)
        with pytest.raises(AnalysisError):
            family.signature(family.n_max + 1, 0)

    def test_bad_params_rejected(self, example_universe):
        with pytest.raises(AnalysisError):
            build_random_ndetection_sets(
                example_universe.target_table, n_max=0, num_sets=1
            )
        with pytest.raises(AnalysisError):
            build_random_ndetection_sets(
                example_universe.target_table, n_max=1, num_sets=0
            )
        with pytest.raises(AnalysisError):
            build_random_ndetection_sets(
                example_universe.target_table, n_max=1, num_sets=1,
                counting="def3",
            )


class TestDef2Family:
    @pytest.fixture(scope="class")
    def def2_family(self, example_universe):
        return build_random_ndetection_sets(
            example_universe.target_table,
            n_max=3,
            num_sets=10,
            seed=7,
            counting="def2",
        )

    def test_def1_invariant_still_holds(self, example_universe, def2_family):
        """Definition 2 sets are at least Definition 1 n-detection sets
        (the fallback guarantees it)."""
        table = example_universe.target_table
        for n in range(1, def2_family.n_max + 1):
            for k in range(def2_family.num_sets):
                tk = def2_family.signature(n, k)
                for sig in table.signatures:
                    want = min(n, sig.bit_count())
                    assert (sig & tk).bit_count() >= want

    def test_def2_sets_comparable_size(self, example_universe, def2_family):
        """Stricter counting changes which tests are drawn, not primarily
        how many; per-set sizes must stay in the same ballpark (the
        quality gain of Definition 2 is in *which* vectors it keeps)."""
        def1 = build_random_ndetection_sets(
            example_universe.target_table, n_max=3, num_sets=10, seed=7
        )
        for n in range(1, 4):
            total1 = sum(def1.sizes(n))
            total2 = sum(def2_family.sizes(n))
            assert total2 >= 0.9 * total1

    def test_def2_counts_respected(self, example_universe, def2_family):
        """Greedy Definition 2 count of each fault reaches min(n, max
        achievable) — cross-checked with the standalone counter."""
        from repro.core.definitions import (
            count_detections_def2,
            count_detections_def2_exact,
        )

        table = example_universe.target_table
        n = def2_family.n_max
        for k in range(def2_family.num_sets):
            order = def2_family.final_orders[k]
            for i, fault in enumerate(table.faults):
                sig = table.signatures[i]
                if not sig:
                    continue
                greedy = count_detections_def2(
                    table.circuit, fault, sig, order
                )
                if greedy >= n:
                    continue
                # Could not reach n greedily: the exact bound over the
                # whole detection set must also be below n, or the
                # Definition 1 fallback must have filled the quota.
                exact_all = count_detections_def2_exact(
                    table.circuit, fault, sig, table.vectors(i)
                )
                tk = def2_family.signature(n, k)
                def1_count = (sig & tk).bit_count()
                assert exact_all < n or def1_count >= min(
                    n, sig.bit_count()
                )

    def test_deterministic(self, example_universe):
        a = build_random_ndetection_sets(
            example_universe.target_table, n_max=2, num_sets=4, seed=5,
            counting="def2",
        )
        b = build_random_ndetection_sets(
            example_universe.target_table, n_max=2, num_sets=4, seed=5,
            counting="def2",
        )
        assert a.snapshots == b.snapshots
