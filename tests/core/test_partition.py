"""Cone-partitioned analysis (Section 4)."""

from __future__ import annotations

import pytest

from repro.core.partition import PartitionedAnalysis
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse


class TestPartitionedExample:
    @pytest.fixture(scope="class")
    def parts(self, example_circuit):
        return PartitionedAnalysis(example_circuit, max_inputs=3)

    def test_cones_built(self, parts):
        # With a 3-input bound, outputs 9 (support 1,2) and 10 (support
        # 2,3) share a cone; single-gate cones have no bridging pairs and
        # are dropped.
        assert len(parts.cones) >= 1
        for cone in parts.cones:
            assert cone.circuit.num_inputs <= 3

    def test_single_gate_cones_skipped(self, example_circuit):
        tight = PartitionedAnalysis(example_circuit, max_inputs=2)
        # Every 2-input cone holds one gate: no bridging sites anywhere.
        assert tight.cones == []
        assert tight.fraction_within(1) == 1.0
        assert tight.guaranteed_n() == 0

    def test_fraction_within_monotone(self, parts):
        values = [parts.fraction_within(n) for n in range(1, 8)]
        assert values == sorted(values)

    def test_guaranteed_n_positive(self, parts):
        g = parts.guaranteed_n()
        assert g is not None and g >= 1
        assert parts.fraction_within(g) == 1.0

    def test_site_coverage_fraction(self, parts):
        assert 0.0 <= parts.coverage_of_fault_sites <= 1.0
        # Bridges between different cones (e.g. 9-11) are not analyzable:
        # coverage is strictly below 1 for the example circuit.
        assert parts.coverage_of_fault_sites < 1.0

    def test_summary_keys(self, parts):
        s = parts.summary()
        assert set(s) == {
            "cones", "analyzed_faults", "site_coverage", "guaranteed_n",
        }


class TestWideConeBackend:
    """Partition × sampled composition: wide cones stop being a wall."""

    def test_wide_output_raises_without_backend(self):
        from repro.bench_suite.registry import get_circuit
        from repro.errors import CircuitError

        with pytest.raises(CircuitError, match="cannot partition"):
            PartitionedAnalysis(get_circuit("wide28"), max_inputs=10)

    def test_wide_suite_circuit_smoke(self):
        from repro.bench_suite.registry import get_circuit
        from repro.faultsim.backends import SampledBackend

        parts = PartitionedAnalysis(
            get_circuit("wide28"),
            max_inputs=10,
            backend=SampledBackend(64, seed=1),
        )
        wide = [c for c in parts.cones if c.circuit.num_inputs > 10]
        narrow = [c for c in parts.cones if c.circuit.num_inputs <= 10]
        assert wide and narrow
        # Wide cones run on the sampled universe, narrow ones stay exact.
        assert all(not c.analysis.universe.exact for c in wide)
        assert all(c.universe.target_table.universe.size == 64 for c in wide)
        assert all(c.analysis.universe.exact for c in narrow)
        assert 0.0 <= parts.coverage_of_fault_sites <= 1.0
        summary = parts.summary()
        assert summary["cones"] == len(parts.cones)
        assert summary["analyzed_faults"] > 0

    def test_narrow_circuit_ignores_backend(self, example_circuit):
        from repro.faultsim.backends import SampledBackend

        exact = PartitionedAnalysis(example_circuit, max_inputs=4)
        with_backend = PartitionedAnalysis(
            example_circuit,
            max_inputs=4,
            backend=SampledBackend(8, seed=1),
        )
        # No cone exceeds the bound, so the sampled backend never engages
        # and the results are the exact ones.
        assert all(
            c.analysis.universe.exact for c in with_backend.cones
        )
        assert with_backend.guaranteed_n() == exact.guaranteed_n()

    def test_jobs_threaded_to_cone_builds(self, example_circuit, tmp_path,
                                          monkeypatch):
        from repro.parallel import ParallelBackend

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        parts = PartitionedAnalysis(example_circuit, max_inputs=3, jobs=2)
        assert parts.cones
        assert all(
            isinstance(c.universe.backend, ParallelBackend)
            for c in parts.cones
        )
        # jobs changes construction speed, never results.
        exact = PartitionedAnalysis(example_circuit, max_inputs=3)
        assert parts.guaranteed_n() == exact.guaranteed_n()

    def test_deterministic(self):
        from repro.bench_suite.registry import get_circuit
        from repro.faultsim.backends import SampledBackend

        def build():
            return PartitionedAnalysis(
                get_circuit("wide28"),
                max_inputs=10,
                backend=SampledBackend(32, seed=5),
            )

        a, b = build(), build()
        assert [c.analysis.guaranteed_n() for c in a.cones] == (
            [c.analysis.guaranteed_n() for c in b.cones]
        )


class TestWholeCircuitPartition:
    def test_single_cone_matches_direct_analysis(self, example_circuit):
        """With a bound covering all inputs, per-cone results must agree
        with the direct analysis on shared faults."""
        parts = PartitionedAnalysis(example_circuit, max_inputs=4)
        assert len(parts.cones) == 1
        cone = parts.cones[0]
        direct_u = FaultUniverse(example_circuit)
        direct = WorstCaseAnalysis(
            direct_u.target_table, direct_u.untargeted_table
        )
        # Same input space, same fault sites -> same guaranteed n.
        assert cone.analysis.guaranteed_n() == direct.guaranteed_n()

    def test_site_coverage_complete(self, example_circuit):
        parts = PartitionedAnalysis(example_circuit, max_inputs=4)
        assert parts.coverage_of_fault_sites == 1.0
