"""nmin distribution series and ASCII rendering (Figure 2 machinery)."""

from __future__ import annotations

from repro.core.distribution import nmin_distribution, render_ascii_histogram


class TestSeries:
    def test_counts_and_sorting(self):
        values = [120, 100, 120, None, 99, 500, 120]
        series = nmin_distribution(values, minimum=100)
        assert series == [(100, 1), (120, 3), (500, 1)]

    def test_none_and_below_threshold_excluded(self):
        assert nmin_distribution([None, 1, 99], minimum=100) == []

    def test_custom_minimum(self):
        series = nmin_distribution([5, 10, 10], minimum=10)
        assert series == [(10, 2)]


class TestRender:
    def test_empty(self):
        assert "empty" in render_ascii_histogram([])

    def test_contains_all_rows(self):
        out = render_ascii_histogram([(100, 5), (200, 50), (300, 500)])
        for token in ("100", "200", "300", "5", "50", "500"):
            assert token in out

    def test_log_scale_monotone_bars(self):
        out = render_ascii_histogram(
            [(1, 1), (2, 10), (3, 100)], width=30, log_scale=True
        )
        bars = [line.count("#") for line in out.splitlines()[2:]]
        assert bars == sorted(bars)
        assert bars[0] >= 1

    def test_linear_scale(self):
        out = render_ascii_histogram(
            [(1, 1), (2, 2)], width=10, log_scale=False
        )
        bars = [line.count("#") for line in out.splitlines()[2:]]
        assert bars[1] == 2 * bars[0]
