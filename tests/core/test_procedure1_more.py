"""Procedure 1 corner cases: exhaustion, tiny universes, huge n."""

from __future__ import annotations

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.core.procedure1 import build_random_ndetection_sets
from repro.faultsim.detection import DetectionTable


@pytest.fixture()
def tiny_table():
    """1-gate circuit: some faults have very small detection sets."""
    b = CircuitBuilder("tiny")
    b.input("a")
    b.input("b")
    b.gate("y", GateType.AND, ["a", "b"])
    b.output("y")
    return DetectionTable.for_stuck_at(b.build())


class TestExhaustion:
    def test_n_larger_than_any_detection_set(self, tiny_table):
        """When n exceeds N(f), all of T(f) is included — the paper's
        'If a fault has fewer than n different test vectors that detect
        it, all its test vectors are included.'"""
        family = build_random_ndetection_sets(
            tiny_table, n_max=10, num_sets=5, seed=0
        )
        final = family.snapshots[-1]
        for sig in tiny_table.signatures:
            if not sig:
                continue
            for tk in final:
                assert sig & tk == sig  # every test vector included

    def test_sets_stop_growing_after_saturation(self, tiny_table):
        family = build_random_ndetection_sets(
            tiny_table, n_max=10, num_sets=3, seed=1
        )
        # The whole useful space is 4 vectors; growth must stall.
        sizes = [max(family.sizes(n)) for n in range(1, 11)]
        assert sizes[-1] == sizes[-2]
        assert sizes[-1] <= 4

    def test_def2_with_exhaustion(self, tiny_table):
        family = build_random_ndetection_sets(
            tiny_table, n_max=6, num_sets=4, seed=2, counting="def2"
        )
        final = family.snapshots[-1]
        for sig in tiny_table.signatures:
            if not sig:
                continue
            for tk in final:
                assert sig & tk == sig


class TestUndetectableTargets:
    def test_undetectable_targets_ignored(self):
        b = CircuitBuilder("red")
        b.input("a")
        b.gate("k", GateType.CONST1, [])
        b.gate("y", GateType.OR, ["a", "k"])
        b.output("y")
        table = DetectionTable.for_stuck_at(b.build())
        assert any(sig == 0 for sig in table.signatures)
        family = build_random_ndetection_sets(
            table, n_max=3, num_sets=4, seed=3
        )
        # Detectable faults still reach their quotas.
        for sig in table.signatures:
            if not sig:
                continue
            for tk in family.snapshots[-1]:
                assert (sig & tk).bit_count() >= min(3, sig.bit_count())


class TestSingleSet:
    def test_k_equals_one(self, tiny_table):
        family = build_random_ndetection_sets(
            tiny_table, n_max=2, num_sets=1, seed=4
        )
        assert family.num_sets == 1
        assert len(family.snapshots) == 2

    def test_nmax_one_is_plain_detection_set(self, tiny_table):
        family = build_random_ndetection_sets(
            tiny_table, n_max=1, num_sets=8, seed=5
        )
        for k in range(8):
            tk = family.signature(1, k)
            for sig in tiny_table.signatures:
                if sig:
                    assert sig & tk
