"""End-to-end integration: KISS2 source → every analysis → consistency.

Runs the complete pipeline on one hand-written suite circuit (lion) and
asserts the cross-layer relationships that hold only when every stage —
parsing, synthesis, fault building, detection tables, worst case,
Procedure 1, average case, escape — composes correctly.
"""

from __future__ import annotations

import pytest

from repro.bench_suite.mcnc import kiss2_source
from repro.core.average_case import AverageCaseAnalysis
from repro.core.escape import EscapeAnalysis
from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse
from repro.fsm.simulate import trajectories_match
from repro.fsm.synthesis import synthesize_fsm
from repro.io_formats.bench import parse_bench, write_bench
from repro.io_formats.kiss2 import parse_kiss2
from repro.io_formats.verilog import parse_verilog, write_verilog
from repro.simulation.exhaustive import line_signatures

N_MAX = 6
K = 40


@pytest.fixture(scope="module")
def pipeline():
    fsm = parse_kiss2(kiss2_source("lion"), name="lion")
    circuit = synthesize_fsm(fsm)
    universe = FaultUniverse(circuit)
    worst = WorstCaseAnalysis(universe.target_table, universe.untargeted_table)
    family = build_random_ndetection_sets(
        universe.target_table, n_max=N_MAX, num_sets=K, seed=99
    )
    average = AverageCaseAnalysis(family, universe.untargeted_table)
    return fsm, circuit, universe, worst, family, average


class TestPipeline:
    def test_sequential_equivalence(self, pipeline):
        fsm, circuit, *_ = pipeline
        walk = [v % 4 for v in range(50)]
        assert trajectories_match(fsm, circuit, walk)

    def test_worst_average_consistency(self, pipeline):
        *_, worst, _family, average = pipeline
        for rec in worst.records:
            if rec.nmin is not None and rec.nmin <= N_MAX:
                assert average.detection_probability(
                    rec.nmin, rec.fault_index
                ) == 1.0

    def test_escape_closes_the_loop(self, pipeline):
        *_, worst, _family, average = pipeline
        escape = EscapeAnalysis(worst, average)
        final = escape.report(N_MAX)
        if worst.guaranteed_n() is not None and worst.guaranteed_n() <= N_MAX:
            assert final.worst_case_escapes == 0
            assert final.expected_escapes == pytest.approx(0.0)

    def test_serialization_round_trips_preserve_analysis(self, pipeline):
        """Writing to .bench / Verilog and re-reading yields a circuit
        whose guaranteed n is identical (function-level invariance)."""
        _fsm, circuit, _universe, worst, *_ = pipeline
        for writer, reader in (
            (write_bench, parse_bench),
            (write_verilog, parse_verilog),
        ):
            clone = reader(writer(circuit))
            # Same function on each output.
            orig = line_signatures(circuit)
            new = line_signatures(clone)
            for o1, o2 in zip(circuit.outputs, clone.outputs, strict=True):
                assert orig[o1] == new[o2]
            clone_universe = FaultUniverse(clone)
            clone_worst = WorstCaseAnalysis(
                clone_universe.target_table, clone_universe.untargeted_table
            )
            # Structure is identical (branches collapse and re-expand
            # one-to-one), so the whole analysis must agree.
            assert clone_worst.guaranteed_n() == worst.guaranteed_n()
            assert len(clone_worst) == len(worst)

    def test_greedy_test_set_detects_guaranteed_faults(self, pipeline):
        from repro.atpg.ndetect import greedy_ndetection_set

        _fsm, _circuit, universe, worst, *_ = pipeline
        n = 3
        tests = greedy_ndetection_set(universe.target_table, n)
        sig = sum(1 << t for t in tests)
        for rec in worst.records:
            if rec.nmin is not None and rec.nmin <= n:
                g_sig = universe.untargeted_table.signatures[rec.fault_index]
                assert sig & g_sig, (
                    "deterministic n-detection set missed a guaranteed fault"
                )
