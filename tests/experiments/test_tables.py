"""Experiment harness: every table/figure runs and has the paper's shape.

Suite-wide experiments run on a small circuit subset here (the full runs
live in benchmarks/); the structural assertions are the point.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure2 import run_figure2
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import N_COLUMNS, run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6

SMALL = ["lion", "train4", "modulo12", "bbtas"]
WITH_TAIL = ["bbara"]


class TestTable1:
    def test_exact_paper_reproduction(self):
        result = run_table1()
        assert result.g_vectors == [6, 7]
        assert result.nmin_g == 3
        rows = [(r.index, r.fault, r.vectors, r.nmin) for r in result.rows]
        assert rows == [
            (0, "1/1", [4, 5, 6, 7], 3),
            (1, "2/0", [6, 7, 12, 13, 14, 15], 5),
            (3, "3/0", [2, 6, 7, 10, 14, 15], 5),
            (9, "8/0", [2, 6, 10, 14], 4),
            (11, "9/1", [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11], 11),
            (12, "10/0", [6, 7, 14, 15], 3),
            (14, "11/0", [1, 2, 3, 5, 6, 7, 9, 10, 11, 13, 14, 15], 11),
        ]

    def test_render_contains_rows(self):
        out = run_table1().render()
        assert "nmin(g0) = 3" in out
        assert "9/1" in out

    def test_other_fault_index(self):
        result = run_table1(untargeted_index=6)
        assert result.g_vectors == [12]
        assert result.nmin_g == 4


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(SMALL)

    def test_rows_present(self, result):
        assert {r.circuit for r in result.rows} == set(SMALL)

    def test_percentages_monotone(self, result):
        for row in result.rows:
            assert row.percentages == sorted(row.percentages)
            assert all(0 <= p <= 100 for p in row.percentages)

    def test_blank_after_100_in_render(self, result):
        out = result.render()
        assert "Table 2" in out
        for row in result.rows:
            assert row.circuit in out

    def test_column_definition(self):
        assert N_COLUMNS == (1, 2, 3, 4, 5, 10)

    def test_render_never_rounds_up_to_100(self):
        from repro.experiments.table2 import Table2Result, Table2Row

        row = Table2Row(
            circuit="c", num_faults=100000,
            percentages=[99.998, 99.999, 100.0, 100.0, 100.0, 100.0],
        )
        out = Table2Result([row]).render()
        line = out.splitlines()[-1]  # the single data row
        cells = line.split()
        # 99.998 and 99.999 must not display as 100.00.
        assert cells[2] == "99.99"
        assert cells[3] == "99.99"
        assert cells[4] == "100.00"
        assert len(cells) == 5  # trailing columns blank after saturation


class TestTable3:
    def test_only_tail_circuits_reported(self):
        result = run_table3(SMALL + WITH_TAIL)
        names = {r.circuit for r in result.rows}
        # The small machines reach 100% well below n=11.
        assert names <= set(WITH_TAIL)

    def test_counts_ordered(self):
        result = run_table3(WITH_TAIL)
        for row in result.rows:
            ge100, ge20, ge11 = row.counts
            assert ge100 <= ge20 <= ge11
            assert "(" in result.render()


class TestTable4:
    def test_k_sets(self):
        result = run_table4(num_sets=10, seed=1)
        fam = result.family
        assert fam.num_sets == 10
        assert fam.n_max == 2

    def test_sets_grow(self):
        fam = run_table4(num_sets=5, seed=1).family
        for k in range(5):
            s1 = set(fam.test_set(1, k))
            s2 = set(fam.test_set(2, k))
            assert s1 <= s2

    def test_render(self):
        out = run_table4(num_sets=3, seed=1).render()
        assert "n=1" in out and "n=2" in out


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table5(WITH_TAIL, k=60, seed=3)

    def test_row_structure(self, result):
        assert result.num_sets == 60
        for row in result.rows:
            assert len(row.histogram) == 11
            assert row.histogram == sorted(row.histogram)
            assert row.histogram[-1] == row.num_faults

    def test_render_saturation_rule(self, result):
        for row in result.rows:
            cells = row.cells()
            # After the first saturated cell everything is blank.
            if str(row.num_faults) in cells:
                first = cells.index(str(row.num_faults))
                assert all(c == "" for c in cells[first + 1:])

    def test_circuits_without_tail_skipped(self):
        result = run_table5(["lion"], k=10)
        assert result.rows == []


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table6(WITH_TAIL, k=40, seed=3)

    def test_two_rows_per_circuit(self, result):
        for row in result.rows:
            assert row.def1.num_faults == row.def2.num_faults
            assert len(row.def1.histogram) == 11
            assert len(row.def2.histogram) == 11

    def test_def2_not_worse_overall(self, result):
        """Definition 2 should (weakly) dominate at the certain end."""
        for row in result.rows:
            assert row.def2.histogram[-1] == row.def1.histogram[-1]

    def test_render(self, result):
        out = result.render()
        assert "Definitions 1 and 2" in out


class TestFigure2:
    def test_small_circuit_has_no_tail(self):
        result = run_figure2("lion", minimum=100)
        assert result.series == []
        assert "no faults" in result.render()

    def test_threshold_parameter(self):
        result = run_figure2("bbara", minimum=1)
        assert sum(c for _v, c in result.series) > 0
        total = sum(c for _v, c in result.series) + result.unbounded
        assert total > 0
        assert "Figure 2" in result.render()
