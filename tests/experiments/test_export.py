"""CSV / Markdown exporters for experiment results."""

from __future__ import annotations

import csv
import io

import pytest

from repro.errors import ReproError
from repro.experiments.export import (
    render_markdown_table,
    result_rows,
    to_csv,
    to_markdown,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6


@pytest.fixture(scope="module")
def results():
    return {
        "table1": run_table1(),
        "table2": run_table2(["lion", "bbara"]),
        "table3": run_table3(["bbara"]),
        "table4": run_table4(num_sets=3, seed=1),
        "table5": run_table5(["bbara"], k=20, seed=1),
        "table6": run_table6(["bbara"], k=10, seed=1),
        "figure2": run_figure2("bbara", minimum=1),
    }


class TestCsv:
    @pytest.mark.parametrize(
        "key",
        ["table1", "table2", "table3", "table4", "table5", "table6", "figure2"],
    )
    def test_csv_parses_back(self, results, key):
        text = to_csv(results[key])
        rows = list(csv.reader(io.StringIO(text)))
        header, data = rows[0], rows[1:]
        assert len(header) >= 2
        for row in data:
            assert len(row) == len(header)

    def test_table1_values(self, results):
        rows = list(csv.reader(io.StringIO(to_csv(results["table1"]))))
        assert rows[0][:2] == ["index", "fault"]
        assert rows[1][:2] == ["0", "1/1"]
        assert rows[1][-1] == "3"

    def test_table2_percentages_full_precision(self, results):
        rows = list(csv.reader(io.StringIO(to_csv(results["table2"]))))
        for row in rows[1:]:
            for cell in row[2:]:
                assert 0.0 <= float(cell) <= 100.0

    def test_table6_has_two_rows_per_circuit(self, results):
        rows = list(csv.reader(io.StringIO(to_csv(results["table6"]))))
        data = rows[1:]
        assert len(data) % 2 == 0
        assert {row[2] for row in data} == {"1", "2"}


class TestMarkdown:
    def test_structure(self, results):
        text = to_markdown(results["table3"])
        lines = text.splitlines()
        assert lines[0].startswith("| circuit")
        assert set(lines[1].replace("|", "").split()) == {"---"}
        assert all(ln.startswith("|") for ln in lines)

    def test_pipe_escaping(self):
        out = render_markdown_table(["a|b"], [["x|y"]])
        assert "a\\|b" in out
        assert "x\\|y" in out

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError, match="no exporter"):
            result_rows(object())


class TestCliFormats:
    def test_table1_csv(self, capsys):
        from repro.cli import main

        assert main(["table1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "index,fault,vectors,nmin"

    def test_table2_markdown(self, capsys):
        from repro.cli import main

        assert main(
            ["table2", "--circuits", "lion", "--format", "markdown"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("| circuit")
