"""CLI smoke tests (fast paths only)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in (
            ["table1"],
            ["table2"],
            ["table3"],
            ["table4"],
            ["table5"],
            ["table6"],
            ["figure2"],
            ["suite"],
            ["show-example"],
            ["partition", "lion"],
        ):
            args = parser.parse_args(cmd)
            assert args.command == cmd[0]


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "nmin(g0) = 3" in out

    def test_table4(self, capsys):
        assert main(["table4", "--k", "3", "--seed", "1"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_show_example(self, capsys):
        assert main(["show-example"]) == 0
        out = capsys.readouterr().out
        assert "9" in out and "11" in out

    def test_table2_subset(self, capsys):
        assert main(["table2", "--circuits", "lion,train4"]) == 0
        out = capsys.readouterr().out
        assert "lion" in out and "train4" in out

    def test_table3_subset(self, capsys):
        assert main(["table3", "--circuits", "lion"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_figure2_small(self, capsys):
        assert main(["figure2", "--circuit", "lion", "--min", "100"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_partition(self, capsys):
        assert main(["partition", "paper_example", "--max-inputs", "3"]) == 0
        out = capsys.readouterr().out
        assert "Cone-partitioned" in out

    def test_escape(self, capsys):
        assert main(
            ["escape", "lion", "--k", "30", "--nmax", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "worst-case escapes" in out
        # Final row: everything guaranteed on this easy circuit.
        last = out.strip().splitlines()[-1].split()
        assert last[0] == "4"

    def test_gen_tests_podem_method(self, capsys):
        assert main(
            ["gen-tests", "paper_example", "--n", "1", "--method", "podem"]
        ) == 0
        out = capsys.readouterr().out
        assert "podem" in out.splitlines()[0]
        rows = [ln for ln in out.splitlines() if ln and not ln.startswith("#")]
        assert all(set(r) <= {"0", "1"} for r in rows)
